#!/usr/bin/env python3
"""Slack tuning: trade bounded tail degradation for batch throughput.

Ubik's slack parameter (paper Section 5.2, Figure 12) relaxes the
tail-latency requirement by a controlled fraction and converts the
headroom into cache space for batch apps.  This script sweeps the
slack for one workload and prints the tradeoff curve, including the
de-boost and watermark interrupt counts that show the mechanism at
work.

Run:  python examples/slack_tuning.py [app] [load]
"""

import sys

from repro import MixRunner, UbikPolicy, make_mix_specs

SLACKS = (0.0, 0.01, 0.05, 0.10)


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "moses"
    load = float(sys.argv[2]) if len(sys.argv) > 2 else 0.2

    spec = make_mix_specs(lc_names=[app], loads=[load], mixes_per_combo=1)[7]
    runner = MixRunner(requests=200)

    print(f"Ubik slack sweep: 3x {app} at {load:.0%} load, mix {spec.mix_id}\n")
    header = (
        f"{'slack':>6} {'tail degradation':>17} {'weighted speedup':>17} "
        f"{'deboosts':>9} {'watermarks':>11}"
    )
    print(header)
    print("-" * len(header))

    for slack in SLACKS:
        result = runner.run_mix(spec, UbikPolicy(slack=slack))
        deboosts = sum(i.deboosts for i in result.lc_instances)
        watermarks = sum(i.watermarks for i in result.lc_instances)
        print(
            f"{slack:>5.0%} {result.tail_degradation():>16.3f}x "
            f"{result.weighted_speedup():>16.3f}x "
            f"{deboosts:>9d} {watermarks:>11d}"
        )

    print(
        "\nReading: batch speedup grows with slack while tail degradation "
        "stays\nwithin ~(1 + slack); the watermark interrupts catch "
        "requests that\nwould suffer catastrophically and fall back to "
        "conservative sizing."
    )


if __name__ == "__main__":
    main()
