#!/usr/bin/env python3
"""Slack tuning: trade bounded tail degradation for batch throughput.

Ubik's slack parameter (paper Section 5.2, Figure 12) relaxes the
tail-latency requirement by a controlled fraction and converts the
headroom into cache space for batch apps.  This script sweeps the
slack for one workload and prints the tradeoff curve, including the
de-boost and watermark interrupt counts that show the mechanism at
work.

Each point is one declarative ``RunSpec`` — the same mix under
``PolicySpec.of("ubik", slack=...)`` — evaluated by the runtime
``Session``, so re-runs come straight from the persistent store.

Run:  python examples/slack_tuning.py [app] [load]
"""

import sys

from repro import MixRef, PolicySpec, RunSpec, Session

SLACKS = (0.0, 0.01, 0.05, 0.10)


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "moses"
    load = float(sys.argv[2]) if len(sys.argv) > 2 else 0.2

    # Mix #7 of the 20-combo grid: an (n, t, t) batch trio.
    mix = MixRef(lc_name=app, load=load, combo="ntt")
    session = Session()

    print(f"Ubik slack sweep: 3x {app} at {load:.0%} load, mix {mix.mix_id}\n")
    header = (
        f"{'slack':>6} {'tail degradation':>17} {'weighted speedup':>17} "
        f"{'deboosts':>9} {'watermarks':>11}"
    )
    print(header)
    print("-" * len(header))

    for slack in SLACKS:
        record = session.run(
            RunSpec(
                mix=mix,
                policy=PolicySpec.of("ubik", slack=slack),
                requests=200,
            )
        )
        print(
            f"{slack:>5.0%} {record.tail_degradation:>16.3f}x "
            f"{record.weighted_speedup:>16.3f}x "
            f"{record.deboosts:>9d} {record.watermarks:>11d}"
        )

    print(
        "\nReading: batch speedup grows with slack while tail degradation "
        "stays\nwithin ~(1 + slack); the watermark interrupts catch "
        "requests that\nwould suffer catastrophically and fall back to "
        "conservative sizing."
    )


if __name__ == "__main__":
    main()
