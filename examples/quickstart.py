#!/usr/bin/env python3
"""Quickstart: run one latency-critical + batch mix under two policies.

This is the paper's headline experiment in miniature: three instances
of an OLTP-style latency-critical workload (shore, TPC-C) colocated
with three batch apps on a six-core CMP with a shared 12 MB LLC.

StaticLC pins each LC app at its 2 MB target — safe but wasteful.
Ubik downsizes LC partitions while they are idle and boosts them on
wakeup, repaying the refill transient before the tail-latency deadline.

Everything below goes through the declarative runtime API: a
``MixRef`` names the mix, ``PolicySpec`` names each policy by registry
key, and the ``Session`` evaluates the specs — hitting the persistent
result store on repeat runs, so the second invocation is instant.

Run:  python examples/quickstart.py
"""

from repro import MixRef, PolicySpec, RunSpec, Session
from repro.units import cycles_to_ms


def main() -> None:
    # One mix: shore at 20% load + a (n, f, t) batch trio.
    mix = MixRef(lc_name="shore", load=0.2, combo="nft")
    built = mix.build()
    print(f"Mix: {mix.mix_id}")
    print(f"  LC app : 3x {built.lc_workload.name} at {mix.load:.0%} load")
    print(
        "  batch  : "
        + ", ".join(f"{b.name} ({b.class_name})" for b in built.batch_apps)
    )

    session = Session()
    baseline = session.baseline("shore", 0.2, requests=200)
    print(
        f"\nIsolated baseline (2 MB private LLC): "
        f"tail95 = {cycles_to_ms(baseline.tail95_cycles):.2f} ms"
    )

    print(f"\n{'policy':<10} {'tail degradation':>18} {'weighted speedup':>18}")
    print("-" * 48)
    for policy in (
        PolicySpec.of("static_lc", label="StaticLC"),
        PolicySpec.of("ubik", label="Ubik", slack=0.05),
    ):
        record = session.run(RunSpec(mix=mix, policy=policy, requests=200))
        print(
            f"{record.policy:<10} {record.tail_degradation:>17.3f}x "
            f"{record.weighted_speedup:>17.3f}x"
        )

    print(
        "\nExpected: both policies hold tail degradation near 1.0x, and "
        "Ubik's\nweighted speedup beats StaticLC's by exploiting idle "
        "periods."
    )


if __name__ == "__main__":
    main()
