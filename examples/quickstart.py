#!/usr/bin/env python3
"""Quickstart: run one latency-critical + batch mix under two policies.

This is the paper's headline experiment in miniature: three instances
of an OLTP-style latency-critical workload (shore, TPC-C) colocated
with three batch apps on a six-core CMP with a shared 12 MB LLC.

StaticLC pins each LC app at its 2 MB target — safe but wasteful.
Ubik downsizes LC partitions while they are idle and boosts them on
wakeup, repaying the refill transient before the tail-latency deadline.

Run:  python examples/quickstart.py
"""

from repro import MixRunner, StaticLCPolicy, UbikPolicy, make_mix_specs
from repro.units import cycles_to_ms


def main() -> None:
    # One mix: shore at 20% load + a (n, f, t) batch trio.
    spec = make_mix_specs(
        lc_names=["shore"], loads=[0.2], mixes_per_combo=1
    )[5]
    print(f"Mix: {spec.mix_id}")
    print(f"  LC app : 3x {spec.lc_workload.name} at {spec.load:.0%} load")
    print(
        "  batch  : "
        + ", ".join(f"{b.name} ({b.class_name})" for b in spec.batch_apps)
    )

    runner = MixRunner(requests=200)
    baseline = runner.baseline(spec.lc_workload, spec.load)
    print(
        f"\nIsolated baseline (2 MB private LLC): "
        f"tail95 = {cycles_to_ms(baseline.tail95_cycles):.2f} ms"
    )

    print(f"\n{'policy':<10} {'tail degradation':>18} {'weighted speedup':>18}")
    print("-" * 48)
    for policy in (StaticLCPolicy(), UbikPolicy(slack=0.05)):
        result = runner.run_mix(spec, policy)
        print(
            f"{policy.name:<10} {result.tail_degradation():>17.3f}x "
            f"{result.weighted_speedup():>17.3f}x"
        )

    print(
        "\nExpected: both policies hold tail degradation near 1.0x, and "
        "Ubik's\nweighted speedup beats StaticLC's by exploiting idle "
        "periods."
    )


if __name__ == "__main__":
    main()
