"""Trace sharding: parallelize *inside* a single mix run.

Evaluates one (mix, policy) spec three ways — unsharded, explicitly
sharded, and ``shards="auto"`` — and verifies the records are
identical, then peeks into a throwaway store to show what sharding
leaves behind: exactly the same two documents as an unsharded run (the
per-shard documents live only until their merged baseline is
persisted), which is why a resharded rerun is a pure store hit.

Usage::

    PYTHONPATH=src python examples/sharded_run.py
"""

import tempfile

from repro.runtime import (
    MixRef,
    PolicySpec,
    ResultStore,
    RunSpec,
    Session,
    plan_shards,
)

SPEC = RunSpec(
    mix=MixRef(lc_name="masstree", load=0.2, combo="nft"),
    policy=PolicySpec.of("ubik", slack=0.05),
    requests=120,
)


def main() -> None:
    print(f"spec fingerprint: {SPEC.fingerprint()}")
    print("shard plan at --shards 2:",
          [s.instances for s in plan_shards(SPEC, 2)])

    # Three sessions, three execution shapes, one answer.  The sharded
    # sessions get disk-backed throwaway stores: the store is the
    # channel through which merged baselines reach the replay workers
    # (with a memory-only store and a process pool, the session
    # detects that sharding could not help and falls back).
    unsharded = Session(store=ResultStore(None), jobs=1).run(SPEC)
    with tempfile.TemporaryDirectory() as root:
        pinned = Session(store=ResultStore(root), jobs=4, shards=3).run(SPEC)
    with tempfile.TemporaryDirectory() as root:
        auto = Session(store=ResultStore(root), jobs=4, shards="auto").run(SPEC)

    assert pinned == unsharded and auto == unsharded
    print(f"tail degradation {unsharded.tail_degradation:.4f}, "
          f"weighted speedup {unsharded.weighted_speedup:.4f} "
          "— identical at every shard count")

    with tempfile.TemporaryDirectory() as root:
        store = ResultStore(root)
        Session(store=store, jobs=4, shards=3).run(SPEC)
        # Shard documents are reclaimed once merged: what persists is
        # byte-identical to an unsharded store — topology never enters
        # the logical fingerprints, so a resharded rerun is a pure hit.
        print(f"store documents by kind: {store.stats()['by_kind']}")
        again = Session(store=store, jobs=1, shards=2).run(SPEC)
        assert again == unsharded
        print("resharded rerun served from the store — no simulation")

        # A shard document exists while its phase runs; execute one by
        # hand to see the topology it records.
        shard = plan_shards(SPEC, 3)[0]
        result = shard.execute(store)
        print("first shard topology:",
              {k: result[k] for k in ("shard_index", "num_shards",
                                      "instances")})


if __name__ == "__main__":
    main()
