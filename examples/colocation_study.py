#!/usr/bin/env python3
"""Colocation study: can this latency-critical app share a machine?

A datacenter operator wants to colocate batch work next to a
latency-critical service without violating its tail-latency SLO.  This
script compares all five LLC management schemes on a chosen app and
load, across several batch mixes, and reports which schemes keep the
tail within an acceptable bound — reproducing the decision the paper's
Section 7.1 utilization argument formalizes.

The whole grid is one declarative sweep on the runtime ``Session``:
the five default ``PolicySpec`` entries times four batch-pressure
combos, served from the persistent result store on repeat runs and
fanned across cores with ``REPRO_JOBS``.

Run:  python examples/colocation_study.py [app] [load]
      python examples/colocation_study.py specjbb 0.6
"""

import sys

from repro import Session
from repro.experiments import ExperimentScale

#: Tail degradation the operator tolerates.
SLO_BOUND = 1.10

#: A spread of batch pressure: insensitive-heavy through
#: streaming-heavy trios.
COMBOS = ("nnn", "nft", "fts", "sss")


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "specjbb"
    load = float(sys.argv[2]) if len(sys.argv) > 2 else 0.2

    session = Session()
    sweep = session.sweep(
        ExperimentScale(
            requests=150,
            lc_names=(app,),
            loads=(load,),
            combos=COMBOS,
            mixes_per_combo=1,
        )
    )

    print(f"Colocating 3x {app} at {load:.0%} load with batch work")
    print(f"SLO: tail latency within {SLO_BOUND:.2f}x of isolated baseline\n")
    header = f"{'policy':<10} {'worst tail':>11} {'avg speedup':>12}  verdict"
    print(header)
    print("-" * len(header))

    for name in sweep.policies():
        # The grid has a single load, so no load_label filter needed.
        records = sweep.for_policy(name)
        worst = max(r.tail_degradation for r in records)
        avg_speedup = sum(r.weighted_speedup for r in records) / len(records)
        verdict = "SAFE" if worst <= SLO_BOUND else "violates SLO"
        print(f"{name:<10} {worst:>10.3f}x {avg_speedup:>11.3f}x  {verdict}")

    print(
        "\nReading: StaticLC and Ubik respect the SLO on every mix; "
        "Ubik gets\nclose to UCP/OnOff batch throughput without their "
        "tail violations."
    )


if __name__ == "__main__":
    main()
