#!/usr/bin/env python3
"""Colocation study: can this latency-critical app share a machine?

A datacenter operator wants to colocate batch work next to a
latency-critical service without violating its tail-latency SLO.  This
script compares all five LLC management schemes on a chosen app and
load, across several batch mixes, and reports which schemes keep the
tail within an acceptable bound — reproducing the decision the paper's
Section 7.1 utilization argument formalizes.

Run:  python examples/colocation_study.py [app] [load]
      python examples/colocation_study.py specjbb 0.6
"""

import sys

from repro import (
    LRUPolicy,
    MixRunner,
    OnOffPolicy,
    StaticLCPolicy,
    UbikPolicy,
    UCPPolicy,
    make_mix_specs,
)

#: Tail degradation the operator tolerates.
SLO_BOUND = 1.10


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "specjbb"
    load = float(sys.argv[2]) if len(sys.argv) > 2 else 0.2

    specs = make_mix_specs(lc_names=[app], loads=[load], mixes_per_combo=1)
    # A spread of batch pressure: insensitive-heavy through
    # streaming-heavy trios.
    chosen = [s for s in specs if s.batch_combo.split(".")[0] in ("nnn", "nft", "fts", "sss")]
    runner = MixRunner(requests=150)

    policies = [
        ("LRU", LRUPolicy),
        ("UCP", UCPPolicy),
        ("OnOff", OnOffPolicy),
        ("StaticLC", StaticLCPolicy),
        ("Ubik", lambda: UbikPolicy(slack=0.05)),
    ]

    print(f"Colocating 3x {app} at {load:.0%} load with batch work")
    print(f"SLO: tail latency within {SLO_BOUND:.2f}x of isolated baseline\n")
    header = f"{'policy':<10} {'worst tail':>11} {'avg speedup':>12}  verdict"
    print(header)
    print("-" * len(header))

    for name, factory in policies:
        degradations = []
        speedups = []
        for spec in chosen:
            result = runner.run_mix(spec, factory())
            degradations.append(result.tail_degradation())
            speedups.append(result.weighted_speedup())
        worst = max(degradations)
        avg_speedup = sum(speedups) / len(speedups)
        verdict = "SAFE" if worst <= SLO_BOUND else "violates SLO"
        print(f"{name:<10} {worst:>10.3f}x {avg_speedup:>11.3f}x  {verdict}")

    print(
        "\nReading: StaticLC and Ubik respect the SLO on every mix; "
        "Ubik gets\nclose to UCP/OnOff batch throughput without their "
        "tail violations."
    )


if __name__ == "__main__":
    main()
