#!/usr/bin/env python3
"""Characterize a latency-critical workload (paper Section 3).

For one of the five workload models, print:

1. the load-latency curve (Figure 1a): mean and tail-mean latency
   versus offered load, showing tail >> mean and superlinear blow-up;
2. the service-time distribution (Figure 1b): key percentiles;
3. the cross-request reuse breakdown (Figure 2): how much of the LLC
   hit stream lands on lines last touched by *earlier* requests — the
   performance inertia that motivates Ubik.

Run:  python examples/characterize_workload.py [app]
"""

import sys

from repro.experiments.fig1_load_latency import load_latency_curve
from repro.experiments.fig1b_service_cdf import service_time_cdf
from repro.experiments.fig2_reuse import reuse_breakdown
from repro.workloads.latency_critical import LC_NAMES


def bar(fraction: float, width: int = 40) -> str:
    return "#" * int(round(fraction * width))


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "shore"
    if app not in LC_NAMES:
        raise SystemExit(f"unknown app {app!r}; choose from {', '.join(LC_NAMES)}")

    print(f"=== {app}: load-latency (Figure 1a) ===")
    print(f"{'load':>6} {'mean ms':>9} {'tail95 ms':>10}")
    for point in load_latency_curve(app, loads=(0.1, 0.3, 0.5, 0.7), requests=120):
        print(f"{point.load:>5.0%} {point.mean_ms:>9.3f} {point.tail95_ms:>10.3f}")

    print(f"\n=== {app}: service-time distribution (Figure 1b) ===")
    cdf = service_time_cdf(app)
    print(f"mean = {cdf.mean_ms:.3f} ms, p95 = {cdf.p95_ms:.3f} ms")
    for q_ms in cdf.grid_ms[:: max(1, len(cdf.grid_ms) // 10)]:
        print(f"  {q_ms:>7.3f} ms |{bar(cdf.value_at(q_ms))}")

    print(f"\n=== {app}: LLC reuse breakdown (Figure 2) ===")
    for mb in (2.0, 8.0):
        r = reuse_breakdown(app, mb)
        print(
            f"{mb:.0f} MB: miss {r.miss_fraction:.0%}, "
            f"cross-request share of hits {r.cross_request_hit_fraction:.0%}"
        )
        labels = ["same req"] + [f"{k} ago" for k in range(1, 8)] + ["8+ ago"]
        for label, frac in zip(labels, r.hit_fractions):
            if frac > 0.005:
                print(f"    {label:>8}: {frac:>5.1%} |{bar(frac)}")

    print(
        "\nReading: most hits come from lines touched by earlier requests, "
        "and\nreuse deepens with cache size — evicting an idle app's lines "
        "is not free."
    )


if __name__ == "__main__":
    main()
