#!/usr/bin/env python3
"""Hardware-in-the-loop: UMONs + Lookahead + Vantage on real streams.

The mix engine is analytic; this example runs the same control loop the
paper builds in hardware (Figure 3) over *actual address traces*: two
applications share a Vantage-partitioned cache, per-app utility
monitors sample their streams, and every window the controller reads
the measured miss curves and repartitions with Lookahead.

Watch the loop (1) starve the streaming app that gains nothing from
cache, and (2) re-adapt when the other app's working set changes phase.

Run:  python examples/trace_driven_loop.py
"""

from repro.analysis.ascii_plot import hbar
from repro.sim.trace_sim import (
    PhasedGenerator,
    ScanGenerator,
    TraceApp,
    TraceDrivenSimulator,
    ZipfWorkingSetGenerator,
)

CACHE_LINES = 4096


def main() -> None:
    apps = [
        TraceApp(
            "phased",
            PhasedGenerator(
                ZipfWorkingSetGenerator(300, alpha=0.4),
                ZipfWorkingSetGenerator(6000, alpha=0.4, base=50_000_000),
                switch_after=20_000,  # flips around window 4 of 10
            ),
        ),
        TraceApp("zipf", ZipfWorkingSetGenerator(3000, alpha=0.6, base=10_000_000)),
        TraceApp("scan", ScanGenerator(base=90_000_000)),
    ]
    sim = TraceDrivenSimulator(
        cache_lines=CACHE_LINES,
        apps=apps,
        reconfig_accesses=15_000,
        seed=7,
    )
    result = sim.run(windows=10)

    print("Per-window allocations and miss ratios (closed control loop)\n")
    print(f"{'win':>4} " + "".join(f"{a.name:>28}" for a in apps))
    for window in range(10):
        cells = []
        for app in apps:
            stats = [
                w
                for w in result.windows
                if w.window == window and w.app == app.name
            ][0]
            share = stats.allocation_lines / CACHE_LINES
            cells.append(
                f"  {stats.allocation_lines:>5} ln |{hbar(share, 8)}| m={stats.miss_ratio:.2f}"
            )
        print(f"{window:>4} " + "".join(cells))

    final = result.final_allocations()
    print(
        "\nReading: the scan app ends with almost nothing "
        f"({final['scan']} lines); the phased app's allocation grows after "
        "its working set expands mid-run — the same UMON -> Lookahead -> "
        "Vantage loop Ubik builds on."
    )


if __name__ == "__main__":
    main()
