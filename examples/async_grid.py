"""Stream a large spec grid through the async batched scheduler.

Builds a multi-figure grid (the Table 3 policies plus a slack sweep
and both extension studies), then drains it through
``Session.run_many(..., scheduler="async")`` with a progress printer.
Run it twice: the second pass is served entirely from the persistent
result store — watch the ``cached`` counter.

Usage::

    PYTHONPATH=src python examples/async_grid.py
"""

from repro.experiments.bandwidth_study import BandwidthSpec
from repro.experiments.common import ExperimentScale
from repro.experiments.scaleout import ScaleoutSpec
from repro.runtime import PolicySpec, Session
from repro.runtime.session import DEFAULT_POLICIES


def main() -> None:
    scale = ExperimentScale(
        requests=60,
        lc_names=("masstree", "shore"),
        loads=(0.2, 0.6),
        combos=("nft", "sss"),
    )
    session = Session(jobs=4, scheduler="async", progress=_print_every_tenth)

    specs = []
    specs += session.sweep_specs(scale, policies=DEFAULT_POLICIES)
    specs += session.sweep_specs(
        scale,
        policies=tuple(
            PolicySpec.of("ubik", label=f"Ubik-{s:.0%}", slack=s)
            for s in (0.0, 0.01, 0.10)
        ),
    )
    specs += [
        ScaleoutSpec(cores=cores, policy=PolicySpec.of("ubik", slack=0.05), requests=60)
        for cores in (6, 12)
    ]
    specs += [
        BandwidthSpec(
            peak_misses_per_kilocycle=peak,
            policy=PolicySpec.of("ubik", slack=0.05),
            requests=60,
        )
        for peak in (1e9, 100.0)
    ]

    print(f"draining {len(specs)} specs through the async scheduler…")
    results = session.run_many(specs)
    print(f"done: {len(results)} results (mix of RunRecords and task points)")


def _print_every_tenth(event) -> None:
    if event.phase in ("done", "cancelled") or event.done % 10 == 0:
        print(f"  [{event.phase:>9}] {event}")


if __name__ == "__main__":
    main()
