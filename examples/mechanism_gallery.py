#!/usr/bin/env python3
"""Mechanism gallery: the paper's concept figures, regenerated live.

* **Figure 6** — a boost transient: one LC app's partition target and
  actual (resident) size around an idle -> active -> de-boost cycle,
  traced from a real engine run.
* **Figure 7** — the sizing option table: every candidate idle size
  with its cost/benefit accounting, including the INFEASIBLE row where
  the search stops.
* **Figure 8** — the repartitioning table: batch allocations at each
  possible batch-space level, walked incrementally.

Run:  python examples/mechanism_gallery.py
"""

import numpy as np

from repro.core.boost import evaluate_options
from repro.core.repartition import RepartitionTable
from repro.core.ubik import UbikPolicy
from repro.monitor.miss_curve import MissCurve
from repro.sim.config import CMPConfig
from repro.sim.engine import LCInstanceSpec, MixEngine
from repro.units import cycles_to_ms, mb_to_lines
from repro.workloads.batch import make_batch_workload
from repro.workloads.latency_critical import make_lc_workload


def figure6_transient_timeline() -> None:
    print("=== Figure 6: target vs actual size around a boost ===\n")
    workload = make_lc_workload("shore")
    rng = np.random.default_rng(5)
    requests = 80
    works = np.asarray([workload.work.sample(rng) for _ in range(requests)])
    mean_service = workload.mean_service_cycles()
    arrivals = np.cumsum(rng.exponential(mean_service / 0.2, size=requests))
    spec = LCInstanceSpec(
        workload=workload,
        arrivals=arrivals,
        works=works,
        deadline_cycles=8 * mean_service,
        target_tail_cycles=6 * mean_service,
        load=0.2,
    )
    engine = MixEngine(
        lc_specs=[spec],
        batch_workloads=[make_batch_workload("f", seed=1)],
        policy=UbikPolicy(slack=0.05),
        config=CMPConfig(),
        seed=2,
        trace_partitions=True,
    )
    result = engine.run()
    trace = engine.partition_trace[0]
    target_2mb = float(workload.target_lines)
    # Find a window showing idle -> boost -> deboost.
    print(f"{'t (ms)':>8} {'target':>8} {'resident':>9}  phase")
    last_target = None
    shown = 0
    for t, target, resident in trace:
        if last_target is not None and target == last_target:
            continue
        last_target = target
        if target > target_2mb * 1.01:
            phase = "BOOST"
        elif target < target_2mb * 0.6:
            phase = "idle (downsized)"
        else:
            phase = "active"
        print(f"{cycles_to_ms(t):>8.2f} {target:>8.0f} {resident:>9.0f}  {phase}")
        shown += 1
        if shown >= 14:
            break
    print(f"\n(de-boost interrupts fired: {result.lc_instances[0].deboosts})\n")


def figure7_option_table() -> None:
    print("=== Figure 7: sizing a latency-critical partition ===\n")
    curve = MissCurve(
        [0, mb_to_lines(0.5), mb_to_lines(1), mb_to_lines(2), mb_to_lines(4)],
        [0.8, 0.45, 0.25, 0.12, 0.04],
    )
    options = evaluate_options(
        curve=curve,
        c=20.0,
        M=100.0,
        active_lines=mb_to_lines(2),
        deadline_cycles=2.5e7,
        boost_max_lines=mb_to_lines(4),
        batch_delta_hit_rate=lambda d: d * 1e-6,
        idle_fraction=0.85,
        activation_rate=2e-8,
        num_options=4,
    )
    print(f"{'s_idle':>10} {'s_boost':>10} {'cost':>9} {'benefit':>9} {'gain':>9}")
    best = max((o for o in options if o.feasible), key=lambda o: o.net_gain)
    for o in options:
        if not o.feasible:
            print(f"{o.idle_lines:>10.0f} {'I N F E A S I B L E':^40}")
            continue
        marker = "  <-- maximizes gain" if o is best else ""
        print(
            f"{o.idle_lines:>10.0f} {o.boost_lines:>10.0f} "
            f"{o.cost:>9.2e} {o.benefit:>9.2e} {o.net_gain:>9.2e}{marker}"
        )
    print()


def figure8_repartition_table() -> None:
    print("=== Figure 8: the repartitioning table ===\n")
    batch1 = make_batch_workload("f", seed=4)
    batch2 = make_batch_workload("t", seed=5)
    llc = mb_to_lines(12)
    table = RepartitionTable(
        [batch1.miss_curve, batch2.miss_curve],
        [1.0, 1.0],
        llc,
        avg_batch_lines=llc * 0.55,
        buckets=16,
    )
    print(f"{'batch buckets':>14} {batch1.name:>14} {batch2.name:>14}")
    for level in range(0, 17, 2):
        row = table.row(level)
        print(f"{level:>14} {row[0]:>14} {row[1]:>14}")
    print(
        "\nResizing an LC partition walks this table from the current to\n"
        "the target row — each step moves exactly one bucket, so event-\n"
        "time repartitions cost O(distance) instead of a full Lookahead."
    )


def main() -> None:
    figure6_transient_timeline()
    figure7_option_table()
    figure8_repartition_table()


if __name__ == "__main__":
    main()
