#!/usr/bin/env python3
"""Transient analysis: the Section 5.1 math, step by step.

Reproduces the paper's worked example and then applies the same
machinery to a real workload model: given a miss curve and core
parameters, compute how long a partition fill takes, how many cycles
the transient costs, and what boost size repays it by the deadline.
This is the analytical heart of Ubik, usable standalone.

Run:  python examples/transient_analysis.py
"""

from repro.core.boost import choose_sizes
from repro.core.transient import (
    gain_rate_per_cycle,
    lost_cycles_bound,
    lost_cycles_exact,
    transient_length_bound,
    transient_length_exact,
)
from repro.monitor.miss_curve import MissCurve
from repro.units import cycles_to_ms, mb_to_lines
from repro.workloads.latency_critical import make_lc_workload


def paper_worked_example() -> None:
    print("Paper worked example (Section 5.1)")
    print("  core: c = 123 cycles between hits, M = 100 cycles/miss")
    print("  transient: 1 MB -> 2 MB, p(1MB) = 0.2, p(2MB) = 0.1")
    curve = MissCurve([0, mb_to_lines(1), mb_to_lines(2)], [0.2, 0.2, 0.1])
    s1, s2 = mb_to_lines(1), mb_to_lines(2)
    bound_t = transient_length_bound(curve, s1, s2, c=123.0, M=100.0)
    bound_l = lost_cycles_bound(curve, s1, s2, M=100.0)
    print(f"  transient length bound: {bound_t/1e6:.1f}M cycles (paper: 21.8M)")
    print(f"  lost cycles bound:      {bound_l/1e3:.0f}k cycles (paper: 819k)")
    exact_t = transient_length_exact(curve, s1, s2, c=123.0, M=100.0)
    print(
        f"  exact transient:        {exact_t/1e6:.1f}M cycles "
        f"({bound_t/exact_t:.2f}x safety margin)\n"
    )


def real_workload_sizing() -> None:
    workload = make_lc_workload("specjbb")
    curve = workload.miss_curve
    target = float(workload.target_lines)
    c = workload.profile.instructions_per_access * workload.profile.base_cpi
    M = 200.0 / workload.profile.mlp
    deadline = 3.0 * workload.mean_service_cycles()

    print(f"Sizing {workload.name}: target 2 MB, c = {c:.0f}, M = {M:.0f}")
    print(f"  deadline = {cycles_to_ms(deadline):.2f} ms (3x mean service)\n")

    print(f"  {'idle size':>12} {'lost cycles':>12} {'fill bound':>12} {'gain@1.5x':>10}")
    for frac in (0.75, 0.5, 0.25, 0.0):
        idle = target * frac
        lost = lost_cycles_bound(curve, idle, target, M)
        fill = transient_length_bound(curve, idle, target * 1.5, c, M)
        gain = gain_rate_per_cycle(curve, target, target * 1.5, c, M)
        print(
            f"  {frac:>10.0%}   {lost/1e3:>9.0f}k   {fill/1e6:>9.2f}M   "
            f"{gain*1e3:>8.2f}m"
        )

    option = choose_sizes(
        curve=curve,
        c=c,
        M=M,
        active_lines=target,
        deadline_cycles=deadline,
        boost_max_lines=mb_to_lines(4),
        batch_delta_hit_rate=lambda delta: delta * 2e-8,
        idle_fraction=0.8,
        activation_rate=1e-7,
    )
    print(
        f"\n  Ubik's pick: idle = {option.idle_lines/target:.0%} of target, "
        f"boost = {option.boost_lines/target:.2f}x target"
    )
    print(
        f"  worst-case lost cycles {option.lost_cycles/1e3:.0f}k repaid "
        f"within the deadline;\n  fill transient bound "
        f"{cycles_to_ms(option.transient_cycles):.3f} ms"
    )


def main() -> None:
    paper_worked_example()
    real_workload_sizing()


if __name__ == "__main__":
    main()
