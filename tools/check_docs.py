"""Docs quality gate: intra-repo links and runnable code fences.

Checks every tracked Markdown page (README plus ``docs/``) for two
classes of rot:

* **Broken intra-repo links** — every relative ``[text](target)`` must
  resolve to a real file or directory, and a ``#fragment`` pointing
  into a Markdown file must match one of its headings
  (GitHub-style slugs).  External ``http(s)``/``mailto`` links are not
  fetched.
* **Stale code fences** — every fenced ```` ```python ```` block must
  at least compile; blocks written as doctest sessions (``>>>`` lines)
  are *executed* with :mod:`doctest`, so the documented behaviour is
  re-verified on every CI run.  Fences annotated ```` ```python
  no-run ```` are compile-checked only.

Run from the repository root (CI does)::

    python tools/check_docs.py

Exit status is non-zero on any failure; findings are printed one per
line as ``file:line: message``.  The same checks run inside the tier-1
suite via ``tests/test_docs.py``.
"""

from __future__ import annotations

import doctest
import io
import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

ROOT = Path(__file__).resolve().parents[1]

#: Markdown pages under the gate.  README is the front door; docs/ is
#: the architecture/reproduction set.  (PAPER/PAPERS/SNIPPETS are
#: generated inputs, CHANGES/ROADMAP are process logs — not gated.)
DOC_GLOBS = ("README.md", "docs/*.md")

_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^```python([^\n]*)\n(.*?)^```", re.MULTILINE | re.DOTALL)
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def doc_files() -> List[Path]:
    """The Markdown files the gate applies to, in stable order."""
    files: List[Path] = []
    for pattern in DOC_GLOBS:
        files.extend(sorted(ROOT.glob(pattern)))
    return files


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (lowercase, hyphenated).

    >>> github_slug("Trace sharding: parallelism *inside* one run")
    'trace-sharding-parallelism-inside-one-run'
    """
    text = re.sub(r"[`*_~]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return re.sub(r" ", "-", text)


def heading_slugs(path: Path) -> List[str]:
    """All anchor slugs a Markdown file exposes."""
    return [github_slug(m.group(1)) for m in _HEADING.finditer(path.read_text())]


def _line_of(text: str, position: int) -> int:
    return text.count("\n", 0, position) + 1


def check_links(path: Path) -> List[Tuple[int, str]]:
    """(line, message) for every broken relative link in one file."""
    text = path.read_text()
    problems: List[Tuple[int, str]] = []
    for match in _LINK.finditer(text):
        target = match.group(1)
        line = _line_of(text, match.start())
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, fragment = target.partition("#")
        dest = path if not file_part else (path.parent / file_part).resolve()
        if not dest.exists():
            problems.append((line, f"broken link target: {target}"))
            continue
        if fragment and dest.suffix == ".md":
            if github_slug(fragment) not in heading_slugs(dest):
                problems.append(
                    (line, f"missing anchor #{fragment} in {dest.name}")
                )
    return problems


def check_code_fences(path: Path) -> List[Tuple[int, str]]:
    """(line, message) for every failing ```python fence in one file.

    Doctest-style blocks run for real; plain blocks are compiled.
    """
    text = path.read_text()
    problems: List[Tuple[int, str]] = []
    for index, match in enumerate(_FENCE.finditer(text)):
        info, block = match.group(1).strip(), match.group(2)
        line = _line_of(text, match.start())
        name = f"{path.name}[fence {index} @ line {line}]"
        if ">>>" in block:
            if "no-run" in info:
                source = "".join(
                    example.source
                    for example in doctest.DocTestParser().get_examples(block)
                )
                try:
                    compile(source, name, "exec")
                except SyntaxError as exc:
                    problems.append((line, f"fence does not compile: {exc}"))
            else:
                failures = _run_doctest(block, name)
                problems.extend((line, message) for message in failures)
        else:
            try:
                compile(block, name, "exec")
            except SyntaxError as exc:
                problems.append((line, f"fence does not compile: {exc}"))
    return problems


def _run_doctest(block: str, name: str) -> List[str]:
    """Execute one doctest-style fence; return failure descriptions."""
    parser = doctest.DocTestParser()
    try:
        test = parser.get_doctest(
            block, {"__name__": "__docs__"}, name, name, 0
        )
    except ValueError as exc:
        return [f"unparseable doctest block: {exc}"]
    out = io.StringIO()
    runner = doctest.DocTestRunner(
        verbose=False, optionflags=doctest.ELLIPSIS
    )
    results = runner.run(test, out=out.write)
    if results.failed:
        return [f"doctest failed ({results.failed} example(s)):\n{out.getvalue()}"]
    return []


def run(paths: Iterable[Path] = ()) -> List[str]:
    """Run every check; return findings as ``file:line: message``."""
    findings: List[str] = []
    for path in paths or doc_files():
        rel = path.relative_to(ROOT)
        for line, message in check_links(path) + check_code_fences(path):
            findings.append(f"{rel}:{line}: {message}")
    return findings


def main() -> int:
    """CLI entry point: print findings, exit non-zero on any."""
    sys.path.insert(0, str(ROOT / "src"))  # fences import repro
    findings = run()
    for finding in findings:
        print(finding)
    checked = len(doc_files())
    if findings:
        print(f"docs check FAILED: {len(findings)} finding(s) in {checked} file(s)")
        return 1
    print(f"docs check passed: {checked} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
