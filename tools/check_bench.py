#!/usr/bin/env python
"""CI gate: validate ``BENCH_*.json`` documents against the bench schema.

Usage::

    python tools/check_bench.py bench.json [more.json ...]
    python tools/check_bench.py            # every benchmarks/perf/BENCH_*.json

Fails (exit 1) on **schema drift** — missing kernels, missing or
mistyped fields, a stale schema tag — and never on timing values, so
the CI bench smoke job is immune to machine noise.  The actual rules
live in :func:`repro.bench.validate_bench`; this wrapper just feeds it
files, exactly like ``tools/check_docs.py`` wraps the docs gate.

Validation is generation-aware: ``repro-bench/7`` documents (the
current schema) must carry all ten kernels — including the
``lockstep_replay`` entry comparing the lockstep SoA replay engine
against the grouped per-cell event loop (with its
baseline/speedup/``verified_identical`` fields; the committed PR-10
floor is a ≥2× speedup on the pinned fixed-allocation grid), the
``cluster_roundtrip`` entry timing a real 3-node/R=2 ``cluster://``
fabric (replicated put, healthy get, and ``degraded_get`` percentiles
measured with one node's socket closed, so the failover tail is a
tracked number), the ``joint_replay_grid`` entry comparing the
batched replay-group path against the per-cell oracle, the
sweep-level ``warm_sweep_grid``/``stream_synthesis`` comparison
entries, and the per-backend ``store_backend_roundtrip`` entry with
p50/p90/p99 put/get percentiles for every storage engine, http
included (timed against a live served store, so the number prices the
network hop) — while committed ``repro-bench/6`` (nine-kernel,
pre-lockstep), ``repro-bench/5`` (eight-kernel, pre-cluster),
``repro-bench/4`` (three-backend store kernel, pre-http),
``repro-bench/3`` (seven-kernel), ``repro-bench/2`` (six-kernel) and
``repro-bench/1`` (four-kernel) documents are held to their own
generations — the trajectory's history never rots out of CI.
Quick-mode documents (``repro bench --quick``) carry the identical
schema, so the CI smoke validates the new kernels on every push.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import validate_bench  # noqa: E402


def check_file(path: Path) -> list:
    """Problems found in one bench document (empty list = valid)."""
    return inspect_file(path)[0]


def inspect_file(path: Path):
    """(problems, schema tag) for one bench document, parsed once."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable: {exc}"], None
    schema = payload.get("schema") if isinstance(payload, dict) else None
    return validate_bench(payload), schema


def main(argv: list) -> int:
    """Validate the given files (default: the committed trajectory)."""
    if argv:
        paths = [Path(arg) for arg in argv]
    else:
        paths = sorted((REPO_ROOT / "benchmarks" / "perf").glob("BENCH_*.json"))
    if not paths:
        print("no bench documents to check", file=sys.stderr)
        return 1
    failures = 0
    for path in paths:
        problems, generation = inspect_file(path)
        if problems:
            failures += 1
            print(f"FAIL {path}", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
        else:
            print(f"ok   {path} ({generation})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
