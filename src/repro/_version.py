"""Single source of the package version.

Lives in its own leaf module so low-level code (e.g. the result store,
which stamps every record it writes) can read the version without
importing the full :mod:`repro` package and risking import cycles.
"""

__version__ = "1.2.0"
