"""Command-line interface: regenerate paper experiments from a shell.

Usage::

    python -m repro list
    python -m repro fig1a --lc shore
    python -m repro fig2
    python -m repro fig9 --requests 100 --lc shore,specjbb
    python -m repro table3 --jobs 4
    python -m repro table3 --scheduler async --jobs 4
    python -m repro fig12
    python -m repro run --lc masstree --load 0.2 --policy ubik --shards 4
    python -m repro scaleout --cores 6,12
    python -m repro cache
    python -m repro cache --prune
    python -m repro cache --clear
    python -m repro table3 --stats
    python -m repro table3 --store sqlite:///tmp/corpus/store.db
    python -m repro cache --migrate ~/.cache/repro-ubik sqlite:///tmp/store.db
    python -m repro cache --export /tmp/corpus-export
    python -m repro store-serve --store sqlite:///tmp/store.db --port 8377
    python -m repro table3 --store http://127.0.0.1:8377
    python -m repro bench --quick

``bench`` times the hot-path kernels (mix run, isolated baseline,
1M-access trace replay vs the naive reference, store round-trip) and
writes a schema-stable ``BENCH_<rev>.json`` under ``benchmarks/perf/``
— the performance trajectory future PRs must not regress.  ``bench
--compare OLD.json NEW.json`` diffs two committed documents (per-kernel
p50 deltas plus acceptance-floor status) without running any kernel.

Each command prints the same report its pytest benchmark writes to
``benchmarks/results/``.  ``--jobs N`` fans sweep grids over N worker
processes and ``--scheduler async`` streams them through the batched
asyncio engine with a live progress ticker on stderr (results are
bit-identical to ``--jobs 1`` either way); completed runs persist in
the result store (``repro cache`` inspects, ``--prune`` garbage-collects
stale schema generations), so repeat invocations are served from disk.

The store itself is pluggable (:mod:`repro.runtime.backends`):
``--store`` (or ``REPRO_STORE``) selects a backend by URL —
``sqlite:///path/store.db`` for the single-file WAL-mode engine,
``directory:///path`` (or a bare path) for the sharded JSON tree,
``memory://`` for no persistence.  ``repro cache --migrate SRC DST``
moves a corpus between backends byte-faithfully, and ``--export DIR``
writes the canonical directory-layout tree any backend's corpus
reduces to.  ``store-serve`` fronts any of those engines with the
stdlib HTTP shard service; other processes (or machines) then select
the served corpus with ``--store http://host:port``.

``run`` evaluates a single (mix, policy) spec; ``--shards N`` (or
``auto``) additionally parallelizes *inside* the run by fanning its
per-instance baseline simulations across the workers
(:mod:`repro.runtime.sharding`) — the stored result is byte-identical
at any shard count.  ``--shards`` applies to the sweep commands too,
where ``auto`` shards only when the grid is narrower than ``--jobs``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .analysis.ascii_plot import distribution_plot
from .experiments import (
    ExperimentScale,
    default_scale,
    format_table,
    run_ablations,
    run_bandwidth_study,
    run_fig1a,
    run_fig1b,
    run_fig2,
    run_fig9,
    run_fig12,
    run_fig13,
    run_scaleout,
    run_table3,
    run_utilization,
)
from .experiments.table3_speedups import format_table3
from .runtime.executors import EXECUTOR_KINDS
from .runtime.scheduler import ProgressEvent
from .runtime.session import Session
from .workloads.latency_critical import LC_NAMES

__all__ = ["main"]

COMMANDS = (
    "list",
    "run",
    "fig1a",
    "fig1b",
    "fig2",
    "fig9",
    "table3",
    "fig12",
    "fig13",
    "ablations",
    "utilization",
    "scaleout",
    "bandwidth",
    "cache",
    "store-serve",
    "cluster-status",
    "bench",
)


def _scale_from_args(args) -> ExperimentScale:
    base = default_scale()
    lc_names = (
        tuple(x for x in args.lc.split(",") if x) if args.lc else base.lc_names
    )
    return ExperimentScale(
        requests=args.requests or base.requests,
        lc_names=lc_names,
        loads=base.loads,
        combos=base.combos,
        mixes_per_combo=base.mixes_per_combo,
    )


def _shards_arg(value: str):
    """argparse type for ``--shards``: a positive integer or ``auto``."""
    text = value.strip().lower()
    if text == "auto":
        return text
    try:
        count = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--shards must be a positive integer or 'auto', got {value!r}"
        ) from None
    if count < 1:
        raise argparse.ArgumentTypeError("--shards must be at least 1")
    return count


def _progress_ticker(stream=None):
    """A live one-line progress ticker consuming scheduler events."""
    stream = stream if stream is not None else sys.stderr

    def tick(event: ProgressEvent) -> None:
        stream.write(f"\r[repro] {event}\x1b[K")
        if event.phase in ("done", "cancelled"):
            stream.write("\n")
        stream.flush()

    return tick


def _session_from_args(args) -> Session:
    store = getattr(args, "store", None)
    scheduler = getattr(args, "scheduler", "auto")
    shards = getattr(args, "shards", None)
    if scheduler == "auto":
        return Session(store=store, jobs=args.jobs, shards=shards)
    return Session(
        store=store,
        jobs=args.jobs,
        scheduler=scheduler,
        shards=shards,
        progress=_progress_ticker() if scheduler == "async" else None,
    )


def _cmd_list(args) -> None:
    rows = [
        ["run", "one (mix, policy) spec; --shards parallelizes inside it"],
        ["fig1a", "load-latency curves (Figure 1a)"],
        ["fig1b", "service-time CDFs (Figure 1b)"],
        ["fig2", "cross-request reuse breakdown (Figure 2)"],
        ["fig9", "scheme distributions (Figure 9)"],
        ["table3", "average weighted speedups (Table 3)"],
        ["fig12", "Ubik slack sensitivity (Figure 12)"],
        ["fig13", "partitioning-scheme sensitivity (Figure 13)"],
        ["ablations", "Ubik design-choice ablations"],
        ["utilization", "Section 7.1 utilization estimate"],
        ["scaleout", "larger-CMP extension"],
        ["bandwidth", "memory-bandwidth contention extension"],
        ["cache", "inspect (--clear/--prune) the store (--store selects a "
         "backend); --migrate/--export move corpora; --stats: artifact cache"],
        ["store-serve", "serve a store over HTTP (--store picks the engine; "
         "clients connect with --store http://host:port)"],
        ["cluster-status", "per-node health/circuit/repair view of a "
         "cluster:// fabric (--repair replays queued write-behinds)"],
        ["bench", "time the hot-path kernels, write BENCH_<rev>.json"],
    ]
    print(format_table(["Command", "Regenerates"], rows))


def _cmd_run(args) -> None:
    from .runtime import MixRef, PolicySpec, RunSpec, SchemeSpec

    lc = (args.lc or "masstree").split(",")[0].strip()
    policy_kwargs = {}
    if args.slack is not None:
        policy_kwargs["slack"] = args.slack
    spec = RunSpec(
        mix=MixRef(
            lc_name=lc,
            load=args.load,
            combo=args.combo,
            rep=args.rep,
            seed=args.seed,
        ),
        policy=PolicySpec.of(args.policy, **policy_kwargs),
        scheme=SchemeSpec.of(args.scheme) if args.scheme else None,
        requests=args.requests or 60,
        seed=args.seed,
    )
    session = _session_from_args(args)
    record = session.run(spec)
    doc = session.store.document_path(spec.fingerprint())
    # Report what actually happened: the session default (REPRO_SHARDS)
    # applies when the flag is absent, "auto" resolves against the
    # worker budget, and requests beyond the instance count are
    # clamped.
    from .runtime.sharding import resolve_shards

    requested = session.shards
    effective = resolve_shards(
        requested, jobs=getattr(session.executor, "jobs", 1), grid_size=1
    )
    shards_text = (
        str(effective)
        if str(requested) == str(effective)
        else f"{effective} (requested {requested})"
    )
    rows = [
        ["mix", record.mix_id],
        ["policy", record.policy],
        ["tail degradation", f"{record.tail_degradation:.6f}"],
        ["weighted speedup", f"{record.weighted_speedup:.6f}"],
        ["deboosts", record.deboosts],
        ["watermarks", record.watermarks],
        ["shards", shards_text],
        ["fingerprint", spec.fingerprint()],
        [
            "store document",
            str(doc)
            if doc
            else (
                session.store.url
                if session.store.persistent
                else "(memory-only store)"
            ),
        ],
    ]
    print(format_table(["Field", "Value"], rows, title="Run"))


def _cmd_fig1a(args) -> None:
    names = args.lc.split(",") if args.lc else list(LC_NAMES)
    curves = run_fig1a(names, requests=args.requests or 120)
    rows = [
        [name, f"{p.load:.0%}", f"{p.mean_ms:.3f}", f"{p.tail95_ms:.3f}"]
        for name, points in curves.items()
        for p in points
    ]
    print(format_table(["Workload", "Load", "Mean (ms)", "Tail95 (ms)"], rows))


def _cmd_fig1b(args) -> None:
    names = args.lc.split(",") if args.lc else list(LC_NAMES)
    cdfs = run_fig1b(names)
    rows = [
        [n, f"{c.mean_ms:.3f}", f"{c.p95_ms:.3f}", f"{c.p95_ms/c.mean_ms:.2f}x"]
        for n, c in cdfs.items()
    ]
    print(format_table(["Workload", "Mean (ms)", "p95 (ms)", "p95/mean"], rows))


def _cmd_fig2(args) -> None:
    names = args.lc.split(",") if args.lc else list(LC_NAMES)
    breakdowns = run_fig2(names)
    rows = [
        [
            name,
            f"{mb:.0f}MB",
            f"{r.miss_fraction:.1%}",
            f"{r.cross_request_hit_fraction:.1%}",
        ]
        for (name, mb), r in breakdowns.items()
    ]
    print(
        format_table(["Workload", "LLC", "Misses", "Cross-req hit share"], rows)
    )


def _cmd_fig9(args) -> None:
    data = run_fig9(_scale_from_args(args), session=_session_from_args(args))
    seen = {r.load_label for r in data.sweep.records}
    for load in ("lo", "hi"):
        if load not in seen:
            continue
        print(f"\n=== {'Low' if load == 'lo' else 'High'} load: tail degradation ===")
        print(distribution_plot(
            {p: data.sweep.sorted_degradations(p, load) for p in data.policies}
        ))
        print(f"\n=== {'Low' if load == 'lo' else 'High'} load: weighted speedup ===")
        print(distribution_plot(
            {p: data.sweep.sorted_speedups(p, load) for p in data.policies}
        ))


def _cmd_table3(args) -> None:
    print(
        format_table3(
            run_table3(_scale_from_args(args), session=_session_from_args(args))
        )
    )


def _cmd_fig12(args) -> None:
    entries = run_fig12(_scale_from_args(args), session=_session_from_args(args))
    rows = [
        [
            f"{e.slack:.0%}",
            e.load_label,
            f"{e.average_speedup_pct:.1f}%",
            f"{e.worst_degradation:.3f}",
        ]
        for e in entries
    ]
    print(format_table(["Slack", "Load", "Avg speedup", "Worst tail"], rows))


def _cmd_fig13(args) -> None:
    entries = run_fig13(_scale_from_args(args), session=_session_from_args(args))
    rows = [
        [e.scheme, e.load_label, f"{e.worst_degradation:.3f}", f"{e.average_speedup_pct:.1f}%"]
        for e in entries
    ]
    print(format_table(["Scheme", "Load", "Worst tail", "Avg speedup"], rows))


def _cmd_ablations(args) -> None:
    entries = run_ablations(
        _scale_from_args(args), session=_session_from_args(args)
    )
    rows = [
        [e.variant, e.load_label, f"{e.worst_degradation:.3f}", f"{e.average_speedup_pct:.1f}%"]
        for e in entries
    ]
    print(format_table(["Variant", "Load", "Worst tail", "Avg speedup"], rows))


def _cmd_utilization(args) -> None:
    estimates = run_utilization(
        _scale_from_args(args), session=_session_from_args(args)
    )
    rows = [
        [e.policy, f"{e.safe_fraction:.0%}", f"{e.utilization:.0%}"]
        for e in estimates.values()
    ]
    print(format_table(["Scheme", "Safe colocations", "Utilization"], rows))


def _cmd_scaleout(args) -> None:
    cores = tuple(int(c) for c in (args.cores or "6,12").split(","))
    results = run_scaleout(
        core_counts=cores,
        requests=args.requests or 80,
        session=_session_from_args(args),
    )
    rows = [
        [r.cores, r.policy, f"{r.tail_degradation:.3f}", f"{r.weighted_speedup:.3f}"]
        for r in results
    ]
    print(format_table(["Cores", "Policy", "Tail", "Speedup"], rows))


def _cmd_bandwidth(args) -> None:
    points = run_bandwidth_study(
        requests=args.requests or 100, session=_session_from_args(args)
    )
    rows = [
        [
            "inf" if p.peak_misses_per_kilocycle > 1e6 else f"{p.peak_misses_per_kilocycle:.0f}",
            p.policy,
            f"{p.tail_degradation:.3f}",
            f"{p.weighted_speedup:.3f}",
        ]
        for p in points
    ]
    print(format_table(["Peak (miss/kcyc)", "Policy", "Tail", "Speedup"], rows))


def _print_artifact_stats() -> None:
    """Render the per-process artifact-cache counters.

    The cache lives for one process, so the counters reflect whatever
    the *current* command simulated — append ``--stats`` to a sweep
    command (``repro table3 --stats``) to see its hit/miss profile; a
    bare ``repro cache --stats`` reports a fresh, empty cache.
    """
    from .runtime.artifacts import get_artifacts

    stats = get_artifacts().stats()
    rows = [
        ["enabled", str(stats["enabled"]).lower() + "  (REPRO_ARTIFACTS)"],
        ["entries", stats["entries"]],
    ]
    for kind, counts in stats["kinds"].items():
        rows.append(
            [
                f"  kind: {kind}",
                f"{counts['hits']} hit / {counts['misses']} miss"
                f" / {counts['entries']} cached",
            ]
        )
    if not stats["kinds"]:
        rows.append(
            ["  (empty)", "add --stats to a sweep command to see activity"]
        )
    tier2 = stats["tier2"]
    rows.append(
        [
            "tier 2",
            (tier2["url"] or "off") + "  (REPRO_ARTIFACTS_TIER2)",
        ]
    )
    for kind, counts in tier2["kinds"].items():
        rows.append(
            [
                f"  tier2: {kind}",
                f"{counts['hits']} hit / {counts['misses']} miss",
            ]
        )
    print(
        format_table(
            ["Artifact cache (this process)", "Value"],
            rows,
            title="Artifact cache",
        )
    )


def _cmd_cache(args) -> None:
    from .runtime.store import migrate_store

    store = Session(jobs=1, store=getattr(args, "store", None)).store
    # Corpus movement and maintenance actions first, so combinations
    # like `cache --clear --stats` clear and then report rather than
    # silently skipping the clear.
    acted = False
    if args.migrate:
        source, destination = args.migrate
        counts = migrate_store(source, destination)
        print(
            f"migrated {counts['documents']} document(s) and "
            f"{counts['blobs']} blob(s): {source} -> {destination}"
        )
        acted = True
    if args.export:
        exported = store.export_canonical(args.export)
        print(
            f"exported {exported} document(s) from {store.url} "
            f"to {args.export}"
        )
        acted = True
    if args.clear:
        removed = store.clear()
        print(f"cleared {removed} stored result(s)")
        acted = True
    if args.prune:
        counts = store.prune()
        print(
            f"pruned {counts['pruned']} stale result(s), "
            f"kept {counts['kept']} current"
        )
        acted = True
    if args.stats:
        _print_store_stats(store)
        _print_artifact_stats()
        acted = True
    if acted:
        return
    _print_store_stats(store)


def _print_store_stats(store) -> None:
    """Render the result store's backend, counts, and footprint."""
    stats = store.stats()
    rows = [
        ["backend", stats["backend"]],
        [
            "location",
            stats["url"]
            if stats["backend"] != "memory"
            else "(in-memory only; set REPRO_STORE or REPRO_CACHE_DIR)",
        ],
        ["documents", stats["documents"]],
        ["blobs", stats["blobs"]],
        ["disk bytes", stats["disk_bytes"]],
    ]
    for kind, count in sorted(stats["by_kind"].items()):
        rows.append([f"  kind: {kind}", count])
    print(format_table(["Store", "Value"], rows, title="Result store"))


def _cmd_store_serve(args) -> None:
    """Front a local engine with the HTTP shard service, until killed."""
    from .runtime.backends import serve_store
    from .runtime.store import default_store_url

    from .runtime.backends import install_graceful_shutdown

    target = getattr(args, "store", None)
    if target is None:
        target = default_store_url()
    server = serve_store(target, host=args.host, port=args.port)
    # SIGTERM/SIGINT stop the accept loop and mark the server draining;
    # in-flight requests then finish with complete responses before the
    # process exits, so a retrying fleet never sees teardown as faults.
    restore = install_graceful_shutdown(server)
    print(f"serving {server.engine.url} at {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.draining = True
    finally:
        restore()
        drained = server.drain(timeout=10.0)
        server.server_close()
        if not drained:  # pragma: no cover - pathological slow request
            print("warning: exited with requests still in flight", flush=True)
        else:
            print("drained; store service closed", flush=True)


def _cmd_cluster_status(args) -> None:
    """Render per-node health for a cluster:// fabric."""
    from .runtime.backends import make_backend
    from .runtime.backends.cluster import ClusterBackend
    from .runtime.store import default_store_url

    target = getattr(args, "store", None)
    if target is None:
        target = default_store_url()
    backend = make_backend(target)
    if not isinstance(backend, ClusterBackend):
        raise SystemExit(
            f"cluster-status needs a cluster:// store, got {backend.url!r} "
            "(pass --store cluster://… or set REPRO_STORE/REPRO_STORE_CLUSTER)"
        )
    if args.repair:
        outcome = backend.repair()
        print(
            f"repair: replayed {outcome['drained']} queued write(s), "
            f"{outcome['pending']} still pending"
        )
    status = backend.status()
    rows = []
    for node in status["nodes"]:
        rows.append(
            [
                node["url"],
                "up" if node["healthy"] else "DOWN",
                node["circuit"],
                "-" if node["documents"] is None else node["documents"],
                "-" if node["blobs"] is None else node["blobs"],
                node["pending_repairs"],
            ]
        )
    print(
        format_table(
            ["Node", "Health", "Circuit", "Docs", "Blobs", "Repairs"],
            rows,
            title=(
                f"Cluster fabric: {len(status['nodes'])} node(s), "
                f"R={status['replicas']}, write quorum {status['quorum']}"
            ),
        )
    )
    counters = status["counters"]
    print(
        f"counters: {counters['write_acks']} write ack(s), "
        f"{counters['write_stragglers']} straggler(s) queued, "
        f"{counters['read_failovers']} read failover(s), "
        f"{counters['read_repairs']} read repair(s), "
        f"{counters['repairs_drained']} repair(s) drained"
    )
    backend.close()


def _cmd_bench(args) -> None:
    from .bench import format_bench, run_bench, write_bench

    if args.compare:
        import json

        from .bench import compare_bench, format_compare

        old_path, new_path = args.compare
        old = json.loads(Path(old_path).read_text())
        new = json.loads(Path(new_path).read_text())
        print(format_compare(compare_bench(old, new)))
        return
    payload = run_bench(quick=args.quick)
    path = write_bench(payload, out=args.out)
    print(format_bench(payload))
    print(f"wrote {path}")


_HANDLERS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "fig1a": _cmd_fig1a,
    "fig1b": _cmd_fig1b,
    "fig2": _cmd_fig2,
    "fig9": _cmd_fig9,
    "table3": _cmd_table3,
    "fig12": _cmd_fig12,
    "fig13": _cmd_fig13,
    "ablations": _cmd_ablations,
    "utilization": _cmd_utilization,
    "scaleout": _cmd_scaleout,
    "bandwidth": _cmd_bandwidth,
    "cache": _cmd_cache,
    "store-serve": _cmd_store_serve,
    "cluster-status": _cmd_cluster_status,
    "bench": _cmd_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and dispatch to an experiment command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate experiments from the Ubik reproduction.",
    )
    parser.add_argument("command", choices=COMMANDS)
    parser.add_argument("--lc", help="comma-separated LC workload subset")
    parser.add_argument("--requests", type=int, help="requests per LC instance")
    parser.add_argument("--cores", help="scaleout core counts, e.g. 6,12,24")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for sweep grids (default REPRO_JOBS or 1; "
        "0 = all cores)",
    )
    parser.add_argument(
        "--scheduler",
        choices=EXECUTOR_KINDS,
        default="auto",
        help="batch engine: auto (serial/parallel by --jobs), serial, "
        "parallel, or async (bounded streaming pool with a live "
        "progress ticker)",
    )
    parser.add_argument(
        "--shards",
        type=_shards_arg,
        default=None,
        help="intra-run trace sharding: split each run's per-instance "
        "baseline streams into N shards fanned across the workers "
        "(auto = shard only when the grid leaves workers idle; "
        "results are byte-identical at any value)",
    )
    parser.add_argument(
        "--load", type=float, default=0.2, help="run: LC offered load"
    )
    parser.add_argument(
        "--combo", default="nft", help="run: three batch-type letters"
    )
    parser.add_argument(
        "--rep", type=int, default=0, help="run: mix replicate index"
    )
    parser.add_argument(
        "--policy", default="ubik", help="run: policy registry name"
    )
    parser.add_argument(
        "--slack", type=float, default=None, help="run: Ubik slack kwarg"
    )
    parser.add_argument(
        "--scheme", default=None, help="run: partitioning-scheme registry name"
    )
    parser.add_argument(
        "--seed", type=int, default=2014, help="run: spec seed"
    )
    parser.add_argument(
        "--store",
        default=None,
        help="result-store location: a backend URL "
        "(sqlite:///path/store.db, directory:///path, memory://, "
        "http://host:port for a served store, "
        "cluster://replicas=R;http://a;http://b for a replicated "
        "fabric) or a bare directory path "
        "(default: REPRO_STORE, then REPRO_CACHE_DIR, then "
        "~/.cache/repro-ubik)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="with the store-serve command: interface to bind",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8377,
        help="with the store-serve command: TCP port (0 = ephemeral)",
    )
    parser.add_argument(
        "--migrate",
        nargs=2,
        metavar=("SRC", "DST"),
        default=None,
        help="with the cache command: copy a result corpus between "
        "backends, byte-faithfully (each side is a URL or path)",
    )
    parser.add_argument(
        "--export",
        metavar="DIR",
        default=None,
        help="with the cache command: write the store's canonical "
        "directory-layout export (byte-identical across backends "
        "holding the same corpus)",
    )
    parser.add_argument(
        "--clear",
        action="store_true",
        help="with the cache command: delete every stored result",
    )
    parser.add_argument(
        "--prune",
        action="store_true",
        help="with the cache command: drop results from stale schema "
        "generations",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print the per-process artifact-cache hit/miss counters "
        "(streams, baselines, workload objects) after the command "
        "finishes — e.g. 'repro table3 --stats' shows what the sweep "
        "reused in-process; with --jobs > 1 the reuse happens inside "
        "the worker processes, so run serially to inspect it "
        "(REPRO_ARTIFACTS=0 disables the layer)",
    )
    parser.add_argument(
        "--repair",
        action="store_true",
        help="with the cluster-status command: replay every queued "
        "write-behind repair (forcing probes on open circuits) before "
        "reporting",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="with the bench command: CI-sized workloads (same schema)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="with the bench command: output path "
        "(default benchmarks/perf/BENCH_<rev>.json)",
    )
    parser.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD.json", "NEW.json"),
        default=None,
        help="with the bench command: compare two bench documents "
        "(per-kernel p50 deltas + acceptance-floor status; runs no "
        "kernels; schema-generation aware)",
    )
    args = parser.parse_args(argv)
    _HANDLERS[args.command](args)
    if args.stats and args.command != "cache":
        # Report what this process actually reused while the command
        # ran; the cache command handled the flag itself above.
        _print_artifact_stats()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
