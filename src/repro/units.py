"""Common unit definitions and conversions.

The engine's master units are **cache lines** for capacity and **core
cycles** for time (the paper's CMP runs at 3.2 GHz; Table 2).  Helpers
here convert to the human-facing units used in reports (MB, ms, us).
"""

from __future__ import annotations

__all__ = [
    "LINE_BYTES",
    "KILO",
    "MEGA",
    "mb_to_lines",
    "kb_to_lines",
    "lines_to_mb",
    "cycles_to_ms",
    "cycles_to_us",
    "ms_to_cycles",
    "us_to_cycles",
]

LINE_BYTES = 64
KILO = 1024
MEGA = 1024 * 1024

#: Default core frequency in Hz (Table 2: 3.2 GHz Westmere-like cores).
DEFAULT_FREQ_HZ = 3.2e9


def mb_to_lines(megabytes: float) -> int:
    """Cache lines in ``megabytes`` MB of capacity (64 B lines)."""
    return int(round(megabytes * MEGA / LINE_BYTES))


def kb_to_lines(kilobytes: float) -> int:
    """Cache lines in ``kilobytes`` KB of capacity (64 B lines)."""
    return int(round(kilobytes * KILO / LINE_BYTES))


def lines_to_mb(lines: float) -> float:
    """Capacity in MB represented by ``lines`` cache lines."""
    return lines * LINE_BYTES / MEGA


def cycles_to_ms(cycles: float, freq_hz: float = DEFAULT_FREQ_HZ) -> float:
    """Convert core cycles to milliseconds."""
    return cycles / freq_hz * 1e3


def cycles_to_us(cycles: float, freq_hz: float = DEFAULT_FREQ_HZ) -> float:
    """Convert core cycles to microseconds."""
    return cycles / freq_hz * 1e6


def ms_to_cycles(ms: float, freq_hz: float = DEFAULT_FREQ_HZ) -> float:
    """Convert milliseconds to core cycles."""
    return ms * 1e-3 * freq_hz


def us_to_cycles(us: float, freq_hz: float = DEFAULT_FREQ_HZ) -> float:
    """Convert microseconds to core cycles."""
    return us * 1e-6 * freq_hz
