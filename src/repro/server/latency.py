"""Tail-latency metrics (paper Section 3.2).

The paper reports tail latency as **the mean of all requests beyond a
percentile** (default the 95th), not the percentile itself: adaptive
schemes could game a pure percentile by sacrificing only requests past
the measurement point, whereas the tail mean includes the entire tail.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "tail_mean",
    "percentile_latency",
    "tail_degradation",
    "LatencySummary",
    "summarize_latencies",
]

from dataclasses import dataclass

DEFAULT_TAIL_PCT = 95.0


def _as_array(latencies: Sequence[float]) -> np.ndarray:
    arr = np.asarray(latencies, dtype=float)
    if arr.size == 0:
        raise ValueError("no latencies to summarize")
    if np.any(arr < 0):
        raise ValueError("latencies must be non-negative")
    return arr


def percentile_latency(latencies: Sequence[float], pct: float = DEFAULT_TAIL_PCT) -> float:
    """The ``pct``-th percentile latency."""
    if not 0 < pct < 100:
        raise ValueError("pct must be in (0, 100)")
    return float(np.percentile(_as_array(latencies), pct))


def tail_mean(latencies: Sequence[float], pct: float = DEFAULT_TAIL_PCT) -> float:
    """Mean latency of all requests at or beyond the ``pct`` percentile.

    This is the paper's tail metric: it cannot be gamed by degrading
    only the requests beyond the measured percentile.
    """
    arr = _as_array(latencies)
    threshold = np.percentile(arr, pct)
    tail = arr[arr >= threshold]
    return float(tail.mean())


def tail_degradation(
    latencies: Sequence[float],
    baseline_latencies: Sequence[float],
    pct: float = DEFAULT_TAIL_PCT,
) -> float:
    """Tail latency normalized to a baseline run (1.0 = unchanged)."""
    return tail_mean(latencies, pct) / tail_mean(baseline_latencies, pct)


@dataclass(frozen=True)
class LatencySummary:
    """Mean / percentile / tail-mean summary of one run."""

    count: int
    mean: float
    p50: float
    p95: float
    tail95: float
    max: float

    def scaled(self, factor: float) -> "LatencySummary":
        """Unit conversion helper (e.g. cycles -> ms)."""
        return LatencySummary(
            count=self.count,
            mean=self.mean * factor,
            p50=self.p50 * factor,
            p95=self.p95 * factor,
            tail95=self.tail95 * factor,
            max=self.max * factor,
        )


def summarize_latencies(latencies: Sequence[float]) -> LatencySummary:
    """Build a :class:`LatencySummary` from raw latencies."""
    arr = _as_array(latencies)
    return LatencySummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        tail95=tail_mean(arr, DEFAULT_TAIL_PCT),
        max=float(arr.max()),
    )
