"""Request lifecycle records for latency-critical servers."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Request", "CompletedRequest"]


@dataclass
class Request:
    """One client request: arrival (visible) time and work to do."""

    index: int
    arrival: float  # cycles, after interrupt coalescing
    work: float  # instructions

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError("arrival time must be non-negative")
        if self.work <= 0:
            raise ValueError("work must be positive")


@dataclass(frozen=True)
class CompletedRequest:
    """A finished request with its measured timings (all in cycles)."""

    index: int
    arrival: float
    start: float
    completion: float

    def __post_init__(self) -> None:
        if not self.arrival <= self.start <= self.completion:
            raise ValueError("request timings must be ordered")

    @property
    def latency(self) -> float:
        """End-to-end latency: queueing delay plus service."""
        return self.completion - self.arrival

    @property
    def queueing_delay(self) -> float:
        return self.start - self.arrival

    @property
    def service_time(self) -> float:
        return self.completion - self.start
