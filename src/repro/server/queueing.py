"""Single-worker FIFO queueing simulation.

The paper's servers process one request at a time in FIFO order
(Section 3.3).  This module provides the standalone queueing simulator
used for the characterization experiments (Figure 1) and for computing
per-app baseline (target) tail latencies; the mix engine embeds the
same FIFO discipline but computes service times from live cache state.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from .request import CompletedRequest, Request

__all__ = ["run_fifo_server", "simulate_fixed_service", "build_requests"]

ServiceFn = Callable[[Request, float], float]


def build_requests(
    arrivals: Sequence[float], works: Sequence[float]
) -> List[Request]:
    """Pair sorted arrival times with per-request work."""
    if len(arrivals) != len(works):
        raise ValueError("arrivals and works must have equal length")
    arr = np.asarray(arrivals, dtype=float)
    if arr.size and np.any(np.diff(arr) < 0):
        raise ValueError("arrivals must be sorted")
    return [
        Request(index=i, arrival=float(a), work=float(w))
        for i, (a, w) in enumerate(zip(arrivals, works))
    ]


def run_fifo_server(
    requests: Sequence[Request],
    service_fn: ServiceFn,
) -> List[CompletedRequest]:
    """Serve requests FIFO on one worker.

    ``service_fn(request, start_time)`` returns the request's service
    duration in cycles; it may depend on the start time (e.g. through
    cache state in a stateful service model).
    """
    completed: List[CompletedRequest] = []
    server_free_at = 0.0
    for request in requests:
        start = max(request.arrival, server_free_at)
        duration = service_fn(request, start)
        if duration <= 0:
            raise ValueError("service durations must be positive")
        finish = start + duration
        completed.append(
            CompletedRequest(
                index=request.index,
                arrival=request.arrival,
                start=start,
                completion=finish,
            )
        )
        server_free_at = finish
    return completed


def simulate_fixed_service(
    arrivals: Sequence[float],
    service_times: Sequence[float],
) -> List[CompletedRequest]:
    """FIFO simulation where each request's service time is fixed."""
    if len(arrivals) != len(service_times):
        raise ValueError("arrivals and service_times must have equal length")
    requests = build_requests(arrivals, np.ones(len(arrivals)))
    times = list(map(float, service_times))
    return run_fifo_server(requests, lambda req, start: times[req.index])
