"""Latency-critical server substrate: requests, FIFO queueing, tail metrics."""

from .latency import (
    LatencySummary,
    percentile_latency,
    summarize_latencies,
    tail_degradation,
    tail_mean,
)
from .queueing import build_requests, run_fifo_server, simulate_fixed_service
from .request import CompletedRequest, Request

__all__ = [
    "Request",
    "CompletedRequest",
    "run_fifo_server",
    "simulate_fixed_service",
    "build_requests",
    "tail_mean",
    "percentile_latency",
    "tail_degradation",
    "LatencySummary",
    "summarize_latencies",
]
