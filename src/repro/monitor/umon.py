"""Utility monitors (UMONs) — sampled miss-curve profilers.

A UMON (Qureshi & Patt, MICRO 2006) is a small auxiliary tag array that
samples the address stream and maintains an LRU stack per monitored
set.  A hit at LRU stack depth ``d`` means the access *would have hit*
in any allocation of more than ``d`` ways, so per-depth hit counters
directly yield the miss curve.  The paper's configuration is 32 ways x
256 total tags (8 sets), sampling roughly one in 768 accesses
(Section 5.1.3); curves are linearly interpolated from 32 points to 256
for allocation decisions (Section 6).

Ubik extends UMONs with a comparator used for *accurate de-boosting*
(Section 5.1.1): UMON tags are not flushed while the app is idle, so
the monitor can report how many misses the current request would have
incurred at the undisturbed target size; :meth:`would_have_missed`
exposes that count via the mark/report interface the de-boost circuit
uses.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .miss_curve import MissCurve

__all__ = ["UtilityMonitor"]

_HASH_MULT = 2654435761  # Knuth multiplicative hash
_HASH_MOD = 1 << 32


class UtilityMonitor:
    """Sampled LRU-stack miss-curve monitor.

    Parameters
    ----------
    ways:
        Monitored associativity: the resolution of the miss curve.
    sets:
        Number of monitored LRU stacks (ways * sets total tags).
    sample_shift:
        An address is sampled if ``hash(addr) % 2^sample_shift == 0``;
        the paper's 1-in-768 rate corresponds roughly to shift 10 with
        8 sets (we default to sampling 1/64 of the line address space
        into 8 stacks, i.e. 1/512 of accesses per stack).
    lines_per_way:
        Cache lines each monitored way stands for, i.e. cache capacity
        divided by UMON ways.
    """

    def __init__(
        self,
        ways: int = 32,
        sets: int = 8,
        sample_shift: int = 6,
        lines_per_way: float = 1.0,
    ):
        if ways < 1 or sets < 1:
            raise ValueError("ways and sets must be positive")
        if sample_shift < 0:
            raise ValueError("sample_shift must be non-negative")
        if lines_per_way <= 0:
            raise ValueError("lines_per_way must be positive")
        self.ways = ways
        self.sets = sets
        self.sample_mask = (1 << sample_shift) - 1
        self.lines_per_way = float(lines_per_way)
        self._stacks: List[List[int]] = [[] for _ in range(sets)]
        self.way_hits = np.zeros(ways, dtype=np.int64)
        self.miss_count = 0
        self.sampled = 0
        # Mark support for the de-boost comparator.
        self._mark_way_hits = np.zeros(ways, dtype=np.int64)
        self._mark_misses = 0

    @classmethod
    def for_cache(
        cls, cache_lines: int, ways: int = 32, sets: int = 8
    ) -> "UtilityMonitor":
        """Geometry-consistent UMON for a cache of ``cache_lines``.

        One monitored way must stand for ``cache_lines / ways`` lines,
        and the sampled address space spread over ``sets`` stacks must
        cover exactly that: ``lines_per_way = sets * 2^sample_shift``.
        This picks the sampling shift accordingly (the paper's 32x256
        UMON on a 12 MB LLC samples roughly one access in 768).
        """
        if cache_lines < ways * sets:
            raise ValueError("cache too small for this UMON geometry")
        lines_per_way = cache_lines / ways
        shift = max(0, int(round(np.log2(lines_per_way / sets))))
        return cls(
            ways=ways,
            sets=sets,
            sample_shift=shift,
            lines_per_way=sets * (1 << shift),
        )

    # ------------------------------------------------------------------
    # Sampling path
    # ------------------------------------------------------------------
    def _hash(self, addr: int) -> int:
        return (addr * _HASH_MULT) % _HASH_MOD

    def observe(self, addr: int) -> None:
        """Feed one access; only sampled addresses touch the stacks."""
        hashed = self._hash(addr)
        if hashed & self.sample_mask:
            return
        self.sampled += 1
        stack = self._stacks[(hashed >> 16) % self.sets]
        try:
            depth = stack.index(addr)
        except ValueError:
            depth = -1
        if depth >= 0:
            self.way_hits[depth] += 1
            del stack[depth]
            stack.insert(0, addr)
            return
        self.miss_count += 1
        stack.insert(0, addr)
        if len(stack) > self.ways:
            stack.pop()

    def observe_many(self, addrs: np.ndarray) -> None:
        """Feed a batch of accesses, hashing the sampling filter in bulk.

        Identical to calling :meth:`observe` per element in order, but
        the multiplicative hash and the ``1 in 2^sample_shift``
        sampling test run vectorized over the whole batch, so the
        Python-level LRU-stack work touches only the sampled addresses
        (a ~``2^sample_shift``-fold reduction on the trace hot path).
        """
        arr = np.asarray(addrs, dtype=np.int64)
        if arr.size == 0:
            return
        # (addr * MULT) % 2^32, exactly as _hash, via uint64 wraparound.
        hashed = (arr.astype(np.uint64) * np.uint64(_HASH_MULT)) & np.uint64(
            _HASH_MOD - 1
        )
        mask = (hashed & np.uint64(self.sample_mask)) == 0
        if not mask.any():
            return
        sampled = arr[mask].tolist()
        stack_ids = ((hashed[mask] >> np.uint64(16)) % np.uint64(self.sets)).tolist()
        stacks = self._stacks
        way_hits = self.way_hits
        ways = self.ways
        miss_count = 0
        for addr, sid in zip(sampled, stack_ids):
            stack = stacks[sid]
            try:
                depth = stack.index(addr)
            except ValueError:
                depth = -1
            if depth >= 0:
                way_hits[depth] += 1
                del stack[depth]
                stack.insert(0, addr)
                continue
            miss_count += 1
            stack.insert(0, addr)
            if len(stack) > ways:
                stack.pop()
        self.sampled += len(sampled)
        self.miss_count += miss_count

    # ------------------------------------------------------------------
    # Miss-curve readout
    # ------------------------------------------------------------------
    def miss_curve(self, points: int = 257) -> MissCurve:
        """Current measured miss curve, interpolated to ``points``."""
        if self.sampled == 0:
            raise RuntimeError("no sampled accesses yet")
        curve = MissCurve.from_hit_counters(
            self.way_hits, self.miss_count, self.lines_per_way
        )
        return curve.resample(points)

    def reset(self) -> None:
        """Clear counters (tags are preserved, as in hardware)."""
        self.way_hits[:] = 0
        self.miss_count = 0
        self.sampled = 0

    # ------------------------------------------------------------------
    # De-boost comparator support (Ubik hardware extension)
    # ------------------------------------------------------------------
    def mark(self) -> None:
        """Snapshot counters at an idle->active transition."""
        self._mark_way_hits = self.way_hits.copy()
        self._mark_misses = self.miss_count

    def would_have_missed(self, allocation_lines: float) -> int:
        """Misses since :meth:`mark` if the app had ``allocation_lines``.

        Counts sampled accesses whose stack depth exceeded the given
        allocation — the quantity Ubik's de-boost comparator tracks.
        """
        ways_held = int(allocation_lines // self.lines_per_way)
        ways_held = min(ways_held, self.ways)
        delta_hits = self.way_hits - self._mark_way_hits
        deep_hits = int(delta_hits[ways_held:].sum())
        return deep_hits + (self.miss_count - self._mark_misses)

    def misses_since_mark(self) -> int:
        """Actual sampled misses since :meth:`mark`."""
        return self.miss_count - self._mark_misses
