"""Miss curves: miss ratio as a function of allocated cache capacity.

A miss curve maps a cache allocation, measured in cache lines, to the
fraction of accesses that miss at that allocation.  Miss curves are the
common currency of every partitioning policy in this package: UMONs
produce them, UCP's Lookahead consumes them, and Ubik's transient
analysis (Section 5.1 of the paper) is an integral over one.

Curves are stored as sampled points and evaluated with linear
interpolation, mirroring how the paper linearly interpolates 32-point
UMON curves to 256 points (Section 6).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["MissCurve", "combine_curves"]


def _as_float_array(values: Iterable[float]) -> np.ndarray:
    array = np.asarray(list(values), dtype=float)
    if array.ndim != 1:
        raise ValueError("expected a 1-D sequence")
    return array


class MissCurve:
    """Piecewise-linear miss ratio versus allocated lines.

    Parameters
    ----------
    sizes:
        Allocation sample points in cache lines, strictly increasing,
        starting at 0.
    miss_ratios:
        Miss ratio (misses / accesses, in [0, 1]) at each sample point.
        Enforced to be non-increasing: a larger allocation can never
        miss more, which holds for the stack-property replacement
        (LRU) that UMONs model.
    """

    __slots__ = ("_sizes", "_ratios", "_sizes_view", "_ratios_view")

    def __init__(self, sizes: Iterable[float], miss_ratios: Iterable[float]):
        sizes_arr = _as_float_array(sizes)
        ratios_arr = _as_float_array(miss_ratios)
        if sizes_arr.size != ratios_arr.size:
            raise ValueError("sizes and miss_ratios must have equal length")
        if sizes_arr.size < 2:
            raise ValueError("a miss curve needs at least two points")
        if sizes_arr[0] != 0:
            raise ValueError("miss curves must start at size 0")
        if np.any(np.diff(sizes_arr) <= 0):
            raise ValueError("sizes must be strictly increasing")
        if np.any(ratios_arr < 0) or np.any(ratios_arr > 1):
            raise ValueError("miss ratios must lie in [0, 1]")
        # Enforce monotonicity (non-increasing) without rejecting noisy
        # UMON samples: take the running minimum.
        ratios_arr = np.minimum.accumulate(ratios_arr)
        self._sizes = sizes_arr
        self._ratios = ratios_arr
        # Read-only views are built once: `sizes`/`miss_ratios` sit on
        # the engine's fill-transient hot path, and materializing a
        # fresh view per property call measurably added up there.
        sizes_view = sizes_arr.view()
        sizes_view.flags.writeable = False
        ratios_view = ratios_arr.view()
        ratios_view.flags.writeable = False
        self._sizes_view = sizes_view
        self._ratios_view = ratios_view

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, miss_ratio: float, max_size: float) -> "MissCurve":
        """A size-insensitive curve (streaming or fully-resident app)."""
        return cls([0.0, float(max_size)], [miss_ratio, miss_ratio])

    @classmethod
    def from_hit_counters(
        cls,
        way_hits: Sequence[float],
        misses: float,
        lines_per_way: float,
    ) -> "MissCurve":
        """Build a curve from UMON-style per-way hit counters.

        ``way_hits[i]`` counts hits whose LRU stack depth was ``i`` ways;
        an allocation of ``k`` ways captures ``sum(way_hits[:k])`` hits.
        This is exactly the UCP UMON construction (Qureshi & Patt).
        """
        hits = _as_float_array(way_hits)
        if np.any(hits < 0) or misses < 0:
            raise ValueError("counters must be non-negative")
        total = float(hits.sum() + misses)
        if total <= 0:
            raise ValueError("no accesses recorded")
        cumulative_hits = np.concatenate([[0.0], np.cumsum(hits)])
        sizes = np.arange(hits.size + 1) * float(lines_per_way)
        ratios = (total - cumulative_hits) / total
        return cls(sizes, ratios)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    @property
    def sizes(self) -> np.ndarray:
        """Sample allocations, in lines (read-only view)."""
        return self._sizes_view

    @property
    def miss_ratios(self) -> np.ndarray:
        """Miss ratio at each sample allocation (read-only view)."""
        return self._ratios_view

    @property
    def max_size(self) -> float:
        """Largest sampled allocation; the curve is flat beyond it."""
        return float(self._sizes[-1])

    def __call__(self, size):
        """Miss ratio at ``size`` lines (clamped to the sampled range)."""
        return np.interp(size, self._sizes, self._ratios)

    def lookup_many(self, sizes) -> np.ndarray:
        """Miss ratios at a whole allocation vector, in one call.

        ``np.interp`` evaluates elementwise, so
        ``curve.lookup_many(a)[i]`` is bit-identical to ``curve(a[i])``
        — batching changes the cost, never the numbers.  This is the
        batched lookup used wherever many allocations are evaluated at
        once (:meth:`resample`, :func:`combine_curves`); the *scalar*
        hot paths are instead served by the value-keyed memos in
        :class:`repro.sim.fill.FillState`.
        """
        return np.interp(np.asarray(sizes, dtype=float), self._sizes, self._ratios)

    def misses(self, size: float, accesses: float) -> float:
        """Expected misses over ``accesses`` at a fixed allocation."""
        return float(self(size)) * accesses

    def hits(self, size: float, accesses: float) -> float:
        """Expected hits over ``accesses`` at a fixed allocation."""
        return (1.0 - float(self(size))) * accesses

    def utility(self, from_size: float, to_size: float) -> float:
        """Hit-ratio gain from growing ``from_size`` to ``to_size``.

        This is UCP's utility ``U(a, b) = miss(a) - miss(b)`` expressed
        per access; non-negative whenever ``to_size >= from_size``.
        """
        return float(self(from_size)) - float(self(to_size))

    def marginal_utility(self, from_size: float, to_size: float) -> float:
        """Utility per extra line over ``[from_size, to_size]``."""
        span = to_size - from_size
        if span <= 0:
            raise ValueError("to_size must exceed from_size")
        return self.utility(from_size, to_size) / span

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def resample(self, num_points: int, max_size: float | None = None) -> "MissCurve":
        """Linearly interpolate onto ``num_points`` evenly spaced sizes.

        Mirrors the paper's interpolation of 32-point UMON curves to
        256 points for finer-grained allocation decisions.
        """
        if num_points < 2:
            raise ValueError("need at least two points")
        top = self.max_size if max_size is None else float(max_size)
        sizes = np.linspace(0.0, top, num_points)
        return MissCurve(sizes, self.lookup_many(sizes))

    def scaled(self, ratio_scale: float) -> "MissCurve":
        """Scale all miss ratios by ``ratio_scale`` (clamped to [0,1])."""
        return MissCurve(self._sizes, np.clip(self._ratios * ratio_scale, 0.0, 1.0))

    def with_noise(self, rng: np.random.Generator, relative_std: float) -> "MissCurve":
        """Model UMON sampling error: multiplicative Gaussian noise.

        The constructor re-imposes monotonicity, as real UMON curves are
        post-processed before use.
        """
        noise = rng.normal(1.0, relative_std, size=self._ratios.size)
        noisy = np.clip(self._ratios * noise, 0.0, 1.0)
        return MissCurve(self._sizes, noisy)

    # ------------------------------------------------------------------
    # Dunder support
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Pickle only the backing arrays (views rebuilt on load).

        Letting the default slot pickling ship the cached views would
        resurrect them as *writable copies* detached from the backing
        arrays, silently dropping the read-only contract for curves
        shipped to process-pool workers.
        """
        return (self._sizes, self._ratios)

    def __setstate__(self, state) -> None:
        """Restore the arrays and rebuild the read-only views."""
        sizes_arr, ratios_arr = state
        self._sizes = sizes_arr
        self._ratios = ratios_arr
        sizes_view = sizes_arr.view()
        sizes_view.flags.writeable = False
        ratios_view = ratios_arr.view()
        ratios_view.flags.writeable = False
        self._sizes_view = sizes_view
        self._ratios_view = ratios_view

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MissCurve):
            return NotImplemented
        return bool(
            np.array_equal(self._sizes, other._sizes)
            and np.array_equal(self._ratios, other._ratios)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    def __repr__(self) -> str:
        return (
            f"MissCurve({self._sizes.size} pts, "
            f"m(0)={self._ratios[0]:.3f}, "
            f"m({self._sizes[-1]:.0f})={self._ratios[-1]:.3f})"
        )


def combine_curves(curves: Sequence[MissCurve], weights: Sequence[float]) -> MissCurve:
    """Access-weighted aggregate miss curve of co-resident partitions.

    Used to reason about a *group* of applications occupying one shared
    pool (e.g., the batch side of the cache): the aggregate miss ratio
    at total size ``s`` assumes the pool is split in proportion to the
    weights, which is the equal-pressure approximation of shared LRU.
    """
    if len(curves) != len(weights):
        raise ValueError("one weight per curve required")
    if not curves:
        raise ValueError("need at least one curve")
    weight_arr = _as_float_array(weights)
    if np.any(weight_arr < 0) or weight_arr.sum() <= 0:
        raise ValueError("weights must be non-negative and not all zero")
    shares = weight_arr / weight_arr.sum()
    top = max(curve.max_size for curve in curves)
    sizes = np.linspace(0.0, top, 257)
    ratios = np.zeros_like(sizes)
    for curve, share in zip(curves, shares):
        ratios += share * curve.lookup_many(sizes * share)
    return MissCurve(sizes, np.clip(ratios, 0.0, 1.0))
