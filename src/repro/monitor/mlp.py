"""Long-miss memory-level-parallelism (MLP) profiler.

The paper attaches the simple performance-counter architecture of
Eyerman et al. (ASPLOS 2006) to each core: it measures the average
number of cycles the core stalls per long (LLC) miss, accounting for
overlap among concurrent misses.  Ubik consumes a single scalar from
it — the effective miss penalty ``M`` — to derive transient durations
and lost cycles (Section 5.1).

In the analytic engine the profiler is fed aggregate (stall, miss)
observations; in trace mode it can be fed per-miss overlap samples.
Either way it maintains an exponentially-weighted estimate, modelling
the periodic readout of a hardware counter.
"""

from __future__ import annotations

__all__ = ["MLPProfiler"]


class MLPProfiler:
    """Estimates the effective stall cycles per LLC miss."""

    def __init__(self, smoothing: float = 0.25, initial_penalty: float = 200.0):
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if initial_penalty <= 0:
            raise ValueError("initial penalty must be positive")
        self.smoothing = smoothing
        self._estimate = float(initial_penalty)
        self._window_stall = 0.0
        self._window_misses = 0.0

    def observe(self, stall_cycles: float, misses: float) -> None:
        """Accumulate stall cycles attributed to ``misses`` long misses."""
        if stall_cycles < 0 or misses < 0:
            raise ValueError("observations must be non-negative")
        self._window_stall += stall_cycles
        self._window_misses += misses

    def observe_overlap(self, raw_latency: float, concurrent: float) -> None:
        """Record one miss that overlapped with ``concurrent`` others."""
        if concurrent < 1:
            raise ValueError("a miss overlaps with at least itself")
        self.observe(raw_latency / concurrent, 1.0)

    def end_interval(self) -> float:
        """Fold the window into the estimate and return it.

        Called at each reconfiguration interval, mirroring the software
        runtime's periodic read of the profiler (Section 5.1.3).
        """
        if self._window_misses > 0:
            sample = self._window_stall / self._window_misses
            self._estimate += self.smoothing * (sample - self._estimate)
        self._window_stall = 0.0
        self._window_misses = 0.0
        return self._estimate

    @property
    def effective_penalty(self) -> float:
        """Current estimate of stall cycles per miss (the paper's M)."""
        return self._estimate
