"""Basic per-core performance counters.

The Ubik runtime derives its model inputs (the paper's ``c``, ``p`` and
``Taccess``) from ordinary performance counters plus the UMON and MLP
profiler.  This module provides the counter bundle and those derived
quantities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PerfCounters"]


@dataclass
class PerfCounters:
    """Accumulated cycles / instructions / LLC accesses / LLC misses."""

    cycles: float = 0.0
    instructions: float = 0.0
    accesses: float = 0.0
    misses: float = 0.0

    def add(
        self,
        cycles: float = 0.0,
        instructions: float = 0.0,
        accesses: float = 0.0,
        misses: float = 0.0,
    ) -> None:
        """Accumulate one observation window."""
        if min(cycles, instructions, accesses, misses) < 0:
            raise ValueError("counter increments must be non-negative")
        if misses > accesses + 1e-9:
            raise ValueError("misses cannot exceed accesses")
        self.cycles += cycles
        self.instructions += instructions
        self.accesses += accesses
        self.misses += misses

    def merge(self, other: "PerfCounters") -> "PerfCounters":
        """Sum of two counter bundles (returns a new bundle)."""
        return PerfCounters(
            cycles=self.cycles + other.cycles,
            instructions=self.instructions + other.instructions,
            accesses=self.accesses + other.accesses,
            misses=self.misses + other.misses,
        )

    def reset(self) -> None:
        """Zero all counters (end of a reconfiguration interval)."""
        self.cycles = 0.0
        self.instructions = 0.0
        self.accesses = 0.0
        self.misses = 0.0

    # ------------------------------------------------------------------
    # Derived quantities (paper Section 5.1 worked example)
    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def apki(self) -> float:
        if not self.instructions:
            return 0.0
        return self.accesses / self.instructions * 1000.0

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def access_interval(self) -> float:
        """Average cycles between LLC accesses (``Taccess``)."""
        return self.cycles / self.accesses if self.accesses else float("inf")

    def hit_interval(self, miss_penalty: float) -> float:
        """The paper's ``c``: ``Taccess - p*M`` from raw counters."""
        if miss_penalty < 0:
            raise ValueError("penalty must be non-negative")
        if not self.accesses:
            return float("inf")
        return max(0.0, self.access_interval() - self.miss_ratio * miss_penalty)
