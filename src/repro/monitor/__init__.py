"""Monitoring hardware models: miss curves, UMONs, MLP profiler, counters."""

from .counters import PerfCounters
from .miss_curve import MissCurve, combine_curves
from .mlp import MLPProfiler
from .umon import UtilityMonitor

__all__ = [
    "MissCurve",
    "combine_curves",
    "UtilityMonitor",
    "MLPProfiler",
    "PerfCounters",
]
