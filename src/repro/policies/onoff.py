"""OnOff: full allocation while active, nothing while idle (Section 4).

Whenever a latency-critical app is active it receives its full target
allocation; when it goes idle its space is handed to the batch apps.
Running Lookahead at every transition would be too expensive, so at
each periodic reconfiguration the policy *precomputes* batch partition
sizes for every possible number of active LC apps (N+1 cases), and
transitions just look up the precomputed row — exactly the paper's
construction.

OnOff is space-efficient but unsafe: idle LC apps lose their warm
working set (the cross-request reuse of Figure 2), so the next request
pays the refill transient, degrading tail latency.
"""

from __future__ import annotations

from typing import Dict, List

from .base import Decision, Policy, PolicyContext
from .lookahead import lookahead_partition

__all__ = ["OnOffPolicy"]


class OnOffPolicy(Policy):
    """Event-driven on/off allocations with precomputed batch rows."""

    name = "OnOff"

    def __init__(self, buckets: int = 256):
        if buckets < 1:
            raise ValueError("need at least one bucket")
        self.buckets = buckets
        self._rows: Dict[int, List[float]] = {}
        self._batch_order: List[int] = []

    # ------------------------------------------------------------------
    # Periodic: precompute batch allocations for each activity level
    # ------------------------------------------------------------------
    def _precompute(self, ctx: PolicyContext) -> None:
        batch = ctx.batch_apps
        lc = ctx.lc_apps
        self._batch_order = [a.index for a in batch]
        self._rows = {}
        curves = [a.curve for a in batch]
        weights = [max(a.access_rate, 1e-12) for a in batch]
        # Active LC apps hold their full targets; idle ones hold zero.
        # Batch rows are indexed by the number of active LC apps, which
        # suffices because each mix runs instances of one LC workload
        # with identical targets (paper Section 6).
        for active_count in range(len(lc) + 1):
            reserved = sum(a.target_lines for a in lc[:active_count])
            available = max(0.0, ctx.llc_lines - reserved)
            if batch:
                self._rows[active_count] = lookahead_partition(
                    curves, weights, available, buckets=self.buckets
                )
            else:
                self._rows[active_count] = []

    def _decision(self, ctx: PolicyContext) -> Decision:
        active_count = sum(1 for a in ctx.lc_apps if ctx.lc_active.get(a.index, False))
        row = self._rows[active_count]
        targets: Dict[int, float] = {}
        for app in ctx.lc_apps:
            is_active = ctx.lc_active.get(app.index, False)
            targets[app.index] = app.target_lines if is_active else 0.0
        for index, alloc in zip(self._batch_order, row):
            targets[index] = alloc
        return Decision(targets=targets)

    # ------------------------------------------------------------------
    # Policy hooks
    # ------------------------------------------------------------------
    def initialize(self, ctx: PolicyContext) -> Decision:
        self._precompute(ctx)
        return self._decision(ctx)

    def on_interval(self, ctx: PolicyContext) -> Decision:
        self._precompute(ctx)
        return self._decision(ctx)

    def on_lc_idle(self, ctx: PolicyContext, app_index: int) -> Decision:
        return self._decision(ctx)

    def on_lc_active(self, ctx: PolicyContext, app_index: int) -> Decision:
        return self._decision(ctx)
