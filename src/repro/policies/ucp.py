"""Utility-based cache partitioning (UCP) with MLP weighting.

The paper's conventional-QoS representative (Section 4): every 50 ms,
read each core's UMON and MLP profiler, build miss-per-cycle curves,
and run Lookahead to minimize total expected misses per cycle.

UCP's two failure modes for latency-critical apps both emerge from
this implementation unmodified: it has no notion of a performance
*bound* (it will shrink an LC app whenever that helps throughput), and
it weighs apps by average access intensity, so an LC app idling at low
load looks like a low-utility app and loses its working set.
"""

from __future__ import annotations

from .base import Decision, Policy, PolicyContext
from .lookahead import lookahead_partition

__all__ = ["UCPPolicy"]


class UCPPolicy(Policy):
    """Periodic Lookahead over all applications."""

    name = "UCP"

    def __init__(self, buckets: int = 256):
        if buckets < 1:
            raise ValueError("need at least one bucket")
        self.buckets = buckets

    def _repartition(self, ctx: PolicyContext) -> Decision:
        curves = [a.curve for a in ctx.apps]
        # Misses-per-cycle weighting: access rate scales each curve,
        # which is UCP enhanced with the MLP/intensity information
        # (the paper's footnote 1 setup).  Idle LC apps measured over a
        # whole interval have a low access rate -- exactly the bias the
        # paper criticizes.
        weights = [max(a.access_rate, 1e-12) for a in ctx.apps]
        allocs = lookahead_partition(
            curves, weights, ctx.llc_lines, buckets=self.buckets
        )
        return Decision(
            targets={a.index: alloc for a, alloc in zip(ctx.apps, allocs)}
        )

    def initialize(self, ctx: PolicyContext) -> Decision:
        return self._repartition(ctx)

    def on_interval(self, ctx: PolicyContext) -> Decision:
        return self._repartition(ctx)
