"""UCP's Lookahead partitioning algorithm (Qureshi & Patt, MICRO 2006).

Lookahead greedily assigns cache space in bucket quanta: at each step
it finds, over all applications, the allocation increment with the
highest *marginal utility* (expected miss-reduction per unit of space,
scaled by each app's access intensity) and grants it.  Considering
multi-bucket increments lets it see past plateaus in non-convex miss
curves, which plain hill-climbing cannot.

Both UCP and Ubik use this routine: UCP over all apps, Ubik and
StaticLC/OnOff over the batch apps only (paper Sections 4 and 5.1.2).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..monitor.miss_curve import MissCurve

__all__ = ["lookahead_partition"]


def lookahead_partition(
    curves: Sequence[MissCurve],
    weights: Sequence[float],
    total_lines: float,
    buckets: int = 256,
    min_buckets: Sequence[int] | None = None,
) -> List[float]:
    """Partition ``total_lines`` among apps to minimize weighted misses.

    Parameters
    ----------
    curves:
        Per-app miss curves (miss ratio vs lines).
    weights:
        Per-app access intensities (accesses per cycle).  Weighting by
        intensity makes the objective *misses per cycle*, the paper's
        MLP-enhanced UCP objective.
    total_lines:
        Space to distribute.
    buckets:
        Allocation quanta (the paper uses 256).
    min_buckets:
        Optional per-app lower bounds (already-reserved space).

    Returns
    -------
    Per-app allocations in lines, summing to ``total_lines`` (up to
    bucket rounding).
    """
    num_apps = len(curves)
    if num_apps == 0:
        return []
    if len(weights) != num_apps:
        raise ValueError("one weight per curve required")
    if total_lines < 0:
        raise ValueError("total_lines must be non-negative")
    if buckets < 1:
        raise ValueError("need at least one bucket")
    weight_arr = np.asarray(weights, dtype=float)
    if np.any(weight_arr < 0):
        raise ValueError("weights must be non-negative")

    bucket_lines = total_lines / buckets
    if bucket_lines == 0:
        return [0.0] * num_apps

    # Precompute each app's weighted miss rate at every bucket count.
    grid = np.arange(buckets + 1) * bucket_lines
    miss_tables = [w * np.asarray(c(grid)) for c, w in zip(curves, weight_arr)]

    alloc = np.zeros(num_apps, dtype=int)
    if min_buckets is not None:
        if len(min_buckets) != num_apps:
            raise ValueError("one minimum per app required")
        alloc = np.asarray(min_buckets, dtype=int).copy()
        if np.any(alloc < 0):
            raise ValueError("minimums must be non-negative")
        if alloc.sum() > buckets:
            raise ValueError("minimum allocations exceed the budget")

    remaining = buckets - int(alloc.sum())
    while remaining > 0:
        best_app = -1
        best_mu = 0.0
        best_delta = 0
        for i in range(num_apps):
            table = miss_tables[i]
            here = alloc[i]
            max_delta = min(remaining, buckets - here)
            if max_delta <= 0:
                continue
            # Marginal utility of each feasible increment, vectorized.
            deltas = np.arange(1, max_delta + 1)
            gains = table[here] - table[here + 1 : here + max_delta + 1]
            mus = gains / deltas
            j = int(np.argmax(mus))
            if mus[j] > best_mu:
                best_mu = float(mus[j])
                best_app = i
                best_delta = int(deltas[j])
        if best_app < 0:
            # No one benefits from more space: spread the remainder
            # round-robin so the budget is fully assigned.
            order = np.argsort(-weight_arr)
            k = 0
            while remaining > 0:
                candidate = int(order[k % num_apps])
                if alloc[candidate] < buckets:
                    alloc[candidate] += 1
                    remaining -= 1
                k += 1
            break
        alloc[best_app] += best_delta
        remaining -= best_delta

    return [float(a * bucket_lines) for a in alloc]
