"""LLC partitioning policies: LRU, UCP, StaticLC, OnOff, Fixed (+ base API)."""

from .base import AppView, BoostPlan, Decision, Policy, PolicyContext
from .fixed import FixedPolicy
from .lookahead import lookahead_partition
from .lru import LRUPolicy
from .onoff import OnOffPolicy
from .static_lc import StaticLCPolicy
from .ucp import UCPPolicy

__all__ = [
    "Policy",
    "PolicyContext",
    "AppView",
    "Decision",
    "BoostPlan",
    "lookahead_partition",
    "LRUPolicy",
    "UCPPolicy",
    "StaticLCPolicy",
    "OnOffPolicy",
    "FixedPolicy",
]
