"""Unmanaged shared LRU (the conventional-CMP baseline).

No partitions: applications compete for LLC capacity through the
replacement policy.  The engine models this with the shared-occupancy
fluid model (:mod:`repro.cache.sharing`): idle latency-critical apps
see their working sets evicted by batch co-runners, and high-APKI
batch apps grab space regardless of utility — both effects the paper
shows destroy tail latency (Figure 9).
"""

from __future__ import annotations

from .base import Decision, Policy, PolicyContext

__all__ = ["LRUPolicy"]


class LRUPolicy(Policy):
    """Placeholder policy: the engine runs its occupancy model instead."""

    name = "LRU"
    uses_partitioning = False

    def initialize(self, ctx: PolicyContext) -> Decision:
        # Targets are meaningless without partitioning; report an even
        # split so downstream tooling has something sensible to show.
        share = ctx.llc_lines / max(1, len(ctx.apps))
        return Decision(targets={a.index: share for a in ctx.apps})
