"""StaticLC: fixed partitions for LC apps, UCP for the rest (Section 4).

Each latency-critical app permanently holds its full target allocation
(2 MB by default); batch apps share the remainder via Lookahead at the
periodic reconfigurations.  Safe — tail latencies match the private
baseline — but wasteful: LC apps hold their space even while idle,
which is most of the time at datacenter loads.
"""

from __future__ import annotations

from .base import Decision, Policy, PolicyContext
from .lookahead import lookahead_partition

__all__ = ["StaticLCPolicy"]


class StaticLCPolicy(Policy):
    """LC apps pinned at target size; batch apps get UCP on the rest."""

    name = "StaticLC"

    def __init__(self, buckets: int = 256):
        if buckets < 1:
            raise ValueError("need at least one bucket")
        self.buckets = buckets

    def _repartition(self, ctx: PolicyContext) -> Decision:
        targets = {}
        reserved = 0.0
        for app in ctx.lc_apps:
            targets[app.index] = app.target_lines
            reserved += app.target_lines
        batch = ctx.batch_apps
        available = max(0.0, ctx.llc_lines - reserved)
        if batch:
            allocs = lookahead_partition(
                [a.curve for a in batch],
                [max(a.access_rate, 1e-12) for a in batch],
                available,
                buckets=self.buckets,
            )
            for app, alloc in zip(batch, allocs):
                targets[app.index] = alloc
        return Decision(targets=targets)

    def initialize(self, ctx: PolicyContext) -> Decision:
        return self._repartition(ctx)

    def on_interval(self, ctx: PolicyContext) -> Decision:
        return self._repartition(ctx)
