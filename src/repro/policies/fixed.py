"""Fixed allocations: the private-LLC baseline as a policy.

Used to measure each LC app's isolated behaviour (target tail latency,
Figure 1) and as a building block in tests: every app keeps a constant
partition forever, like statically partitioned private caches.
"""

from __future__ import annotations

from typing import Dict, Optional

from .base import Decision, Policy, PolicyContext

__all__ = ["FixedPolicy"]


class FixedPolicy(Policy):
    """Constant partition sizes; optionally an explicit map."""

    name = "Fixed"

    def __init__(self, targets: Optional[Dict[int, float]] = None):
        self._explicit = dict(targets) if targets else None

    def initialize(self, ctx: PolicyContext) -> Decision:
        if self._explicit is not None:
            unknown = set(self._explicit) - {a.index for a in ctx.apps}
            if unknown:
                raise ValueError(f"targets for unknown apps: {sorted(unknown)}")
            return Decision(targets=dict(self._explicit))
        # Default: LC apps at their QoS targets, batch split evenly.
        targets: Dict[int, float] = {}
        reserved = 0.0
        for app in ctx.lc_apps:
            targets[app.index] = app.target_lines
            reserved += app.target_lines
        batch = ctx.batch_apps
        if batch:
            share = max(0.0, ctx.llc_lines - reserved) / len(batch)
            for app in batch:
                targets[app.index] = share
        return Decision(targets=targets)
