"""Partitioning-policy interface shared by UCP, StaticLC, OnOff and Ubik.

A policy is the software controller of paper Figure 3: it reads
monitors (UMON miss curves, MLP profiler, performance counters) through
a :class:`PolicyContext` and returns partition-size :class:`Decision`
objects.  The engine invokes it at coarse-grained reconfiguration
intervals and, for event-driven policies, at latency-critical apps'
idle/active transitions and Ubik's de-boost/watermark interrupts.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..monitor.miss_curve import MissCurve

__all__ = ["AppView", "BoostPlan", "Decision", "PolicyContext", "Policy"]


@dataclass
class AppView:
    """What the policy can observe about one application.

    Everything here is *measured* state: the miss curve comes from the
    app's UMON (with sampling noise), ``hit_interval`` (the paper's
    ``c``) from performance counters, and ``miss_penalty`` (``M``) from
    the MLP profiler.
    """

    index: int
    name: str
    kind: str  # "lc" or "batch"
    curve: MissCurve
    apki: float
    hit_interval: float
    miss_penalty: float
    access_rate: float  # accesses per cycle, averaged over the last interval
    target_lines: float = 0.0  # LC QoS target allocation (s_active baseline)
    deadline_cycles: float = 0.0  # LC deadline (95p latency at target size)
    idle_fraction: float = 0.0  # LC fraction of time idle, last interval
    activation_rate: float = 0.0  # LC idle->active transitions per cycle
    recent_latencies: Tuple[float, ...] = ()
    target_tail_cycles: float = 0.0  # LC baseline tail-latency target
    accesses_per_request: float = 0.0  # LC average LLC accesses per request
    tail_accesses_per_request: float = 0.0  # LC p95 accesses per request

    def __post_init__(self) -> None:
        if self.kind not in ("lc", "batch"):
            raise ValueError(f"unknown app kind {self.kind!r}")

    @property
    def is_lc(self) -> bool:
        return self.kind == "lc"


@dataclass(frozen=True)
class BoostPlan:
    """Ubik's per-activation sizing plan, enforced by the engine.

    While the plan is armed, the engine's de-boost circuit compares the
    misses the request *would have* incurred at ``active_lines`` (the
    UMON-projected count) against actual misses; when the projection
    exceeds actuals by the guard, the transient's cost is repaid and
    the partition drops from ``boost_lines`` to ``active_lines``.

    ``watermark_factor`` arms the slack variant's low-watermark check:
    once the partition has filled to the boost size, actual misses
    exceeding the projection by this factor trigger a fallback to the
    conservative (no-slack) plan.
    """

    boost_lines: float
    active_lines: float
    guard_fraction: float = 0.02
    watermark_factor: Optional[float] = None

    def __post_init__(self) -> None:
        if self.boost_lines < self.active_lines:
            raise ValueError("boost size must be at least the active size")
        if self.guard_fraction < 0:
            raise ValueError("guard must be non-negative")
        if self.watermark_factor is not None and self.watermark_factor < 1.0:
            raise ValueError("watermark factor must be at least 1")


@dataclass
class Decision:
    """New partition targets (lines) and optional boost plans."""

    targets: Dict[int, float] = field(default_factory=dict)
    boost_plans: Dict[int, BoostPlan] = field(default_factory=dict)

    def merged_over(self, current: Dict[int, float]) -> Dict[int, float]:
        """Full target map: this decision overlaid on current targets."""
        merged = dict(current)
        merged.update(self.targets)
        return merged


@dataclass
class PolicyContext:
    """Snapshot of system state handed to every policy callback."""

    llc_lines: int
    apps: List[AppView]
    current_targets: Dict[int, float]
    now: float
    avg_batch_lines: float
    lc_active: Dict[int, bool]
    rng: np.random.Generator
    lc_boosted: Dict[int, bool] = field(default_factory=dict)

    @property
    def lc_apps(self) -> List[AppView]:
        return [a for a in self.apps if a.is_lc]

    @property
    def batch_apps(self) -> List[AppView]:
        return [a for a in self.apps if not a.is_lc]

    def app(self, index: int) -> AppView:
        for a in self.apps:
            if a.index == index:
                return a
        raise KeyError(f"no app with index {index}")


class Policy(abc.ABC):
    """Base class for LLC partitioning policies."""

    #: Human-readable policy name used in reports.
    name: str = "abstract"

    #: False for unmanaged LRU: the engine then models shared-cache
    #: occupancy competition instead of enforcing partitions.
    uses_partitioning: bool = True

    @abc.abstractmethod
    def initialize(self, ctx: PolicyContext) -> Decision:
        """Initial partition targets before the simulation starts."""

    def on_interval(self, ctx: PolicyContext) -> Optional[Decision]:
        """Coarse-grained periodic reconfiguration (every ~50 ms)."""
        return None

    def on_lc_idle(self, ctx: PolicyContext, app_index: int) -> Optional[Decision]:
        """A latency-critical app ran out of requests."""
        return None

    def on_lc_active(self, ctx: PolicyContext, app_index: int) -> Optional[Decision]:
        """A latency-critical app received work after being idle."""
        return None

    def on_deboost(self, ctx: PolicyContext, app_index: int) -> Optional[Decision]:
        """The de-boost circuit fired: transient cost repaid."""
        return None

    def on_watermark(self, ctx: PolicyContext, app_index: int) -> Optional[Decision]:
        """The slack low-watermark fired: request suffering excessively."""
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"
