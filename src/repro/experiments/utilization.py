"""Section 7.1's utilization argument: colocations raise server use 6x.

The paper's back-of-envelope: with LRU, a datacenter running
latency-critical apps at 20% load cannot colocate batch work without
destroying tails, so at best half the cores do useful work at 20% load
-> ~10% utilization (matching industry reports).  StaticLC and Ubik
make colocation safe on all six cores: three cores at 20% load plus
three batch cores at 100% -> 60% utilization.

This module recomputes those numbers from sweep data, gating the
"safe" label on measured tail degradation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..runtime.session import Session
from ..sim.config import CoreKind
from .common import ExperimentScale, default_scale
from .sweep import run_policy_sweep

__all__ = ["UtilizationEstimate", "run_utilization"]

#: Degradation beyond which a colocation is deemed unsafe for LC apps.
SAFE_DEGRADATION = 1.10

#: The paper's LC operating load for this argument.
LC_LOAD = 0.2


@dataclass(frozen=True)
class UtilizationEstimate:
    """Utilization achievable with one scheme."""

    policy: str
    safe_fraction: float  # fraction of mixes with acceptable tails
    utilization: float  # cluster utilization under the paper's model


def run_utilization(
    scale: ExperimentScale | None = None,
    session: Session | None = None,
) -> Dict[str, UtilizationEstimate]:
    """Estimate per-scheme utilization from low-load sweep data."""
    scale = scale or default_scale()
    sweep = run_policy_sweep(scale, core_kind=CoreKind.OOO, session=session)
    out: Dict[str, UtilizationEstimate] = {}
    for policy in sweep.policies():
        records = sweep.for_policy(policy, "lo")
        if not records:
            continue
        safe = float(
            np.mean([r.tail_degradation <= SAFE_DEGRADATION for r in records])
        )
        if policy == "LRU":
            # Conventional approach: no colocation at all; half the
            # cores idle to protect tails (paper's assumption).
            utilization = 0.5 * LC_LOAD
        else:
            # Colocation allowed only on mixes with safe tails: three
            # LC cores at 20% load, three batch cores fully busy.
            utilization = safe * (0.5 * LC_LOAD + 0.5) + (1 - safe) * 0.5 * LC_LOAD
        out[policy] = UtilizationEstimate(
            policy=policy, safe_fraction=safe, utilization=utilization
        )
    return out
