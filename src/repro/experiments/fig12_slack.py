"""Figure 12: Ubik's slack sensitivity (0%, 1%, 5%, 10%).

With no slack Ubik strictly maintains tail latency at a modest batch
speedup; growing the slack trades bounded tail degradation for more
batch throughput.  Expected shape: speedup increases monotonically
with slack, and tail degradation stays within (roughly) 1 + slack.
Paper averages: 9.9% (0%), 13.1% (1%), 16.0% (5%), 17.0% (10%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..runtime.session import Session
from ..runtime.spec import PolicySpec
from ..sim.config import CoreKind
from .common import ExperimentScale, default_scale
from .sweep import run_policy_sweep

__all__ = ["DEFAULT_SLACKS", "PAPER_SLACK_SPEEDUPS", "run_fig12"]

DEFAULT_SLACKS = (0.0, 0.01, 0.05, 0.10)

#: Paper Figure 12 average weighted speedups, percent.
PAPER_SLACK_SPEEDUPS = {0.0: 9.9, 0.01: 13.1, 0.05: 16.0, 0.10: 17.0}


@dataclass(frozen=True)
class SlackEntry:
    """Aggregate metrics for one slack setting at one load."""

    slack: float
    load_label: str
    average_speedup_pct: float
    worst_degradation: float
    average_degradation: float


def run_fig12(
    scale: ExperimentScale | None = None,
    slacks: Sequence[float] = DEFAULT_SLACKS,
    session: Session | None = None,
) -> List[SlackEntry]:
    """Sweep Ubik's slack parameter over the scaled mix grid."""
    scale = scale or default_scale()
    policies = tuple(
        PolicySpec.of(
            "ubik", label=f"Ubik-{int(round(s * 100))}%", slack=s
        )
        for s in slacks
    )
    sweep = run_policy_sweep(
        scale,
        core_kind=CoreKind.OOO,
        policies=policies,
        session=session,
    )
    entries: List[SlackEntry] = []
    for slack, name in zip(slacks, (p.display for p in policies)):
        for load_label in ("lo", "hi"):
            records = sweep.for_policy(name, load_label)
            if not records:
                continue
            entries.append(
                SlackEntry(
                    slack=slack,
                    load_label=load_label,
                    average_speedup_pct=(
                        float(np.mean([r.weighted_speedup for r in records])) - 1.0
                    )
                    * 100.0,
                    worst_degradation=max(r.tail_degradation for r in records),
                    average_degradation=float(
                        np.mean([r.tail_degradation for r in records])
                    ),
                )
            )
    return entries
