"""Figure 13: Ubik's sensitivity to the partitioning scheme and array.

Ubik (5% slack) runs over the mix grid under five scheme/array models:
way-partitioning on 16- and 64-way set-associative caches, Vantage on
the same arrays, and Vantage on the default 4-way 52-candidate zcache.
Expected shapes (paper Section 7.3):

* way-partitioning breaks Ubik's deadlines — transients are slower and
  pattern-dependent, so tails degrade well beyond the slack (worst on
  16 ways, where granularity and associativity also suffer);
* Vantage on SA16 leaks lines (soft partitioning) and hurts tails;
* Vantage on SA64 approaches the zcache's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..cache.schemes import (
    SchemeModel,
    vantage_setassoc,
    vantage_zcache,
    way_partitioning,
)
from ..core.ubik import UbikPolicy
from ..sim.config import CMPConfig, CoreKind
from .common import ExperimentScale, default_scale
from .sweep import SweepResult, run_policy_sweep

__all__ = ["SchemeEntry", "run_fig13"]


@dataclass(frozen=True)
class SchemeEntry:
    """Aggregate metrics for one scheme at one load."""

    scheme: str
    load_label: str
    worst_degradation: float
    average_degradation: float
    average_speedup_pct: float


def run_fig13(
    scale: ExperimentScale | None = None,
    slack: float = 0.05,
) -> List[SchemeEntry]:
    """Run Ubik under each of the five scheme models."""
    scale = scale or default_scale()
    llc_lines = CMPConfig().llc_lines
    schemes: List[SchemeModel] = [
        way_partitioning(llc_lines, 16),
        way_partitioning(llc_lines, 64),
        vantage_setassoc(llc_lines, 16),
        vantage_setassoc(llc_lines, 64),
        vantage_zcache(llc_lines),
    ]
    entries: List[SchemeEntry] = []
    for scheme in schemes:
        sweep = run_policy_sweep(
            scale,
            core_kind=CoreKind.OOO,
            policy_factories=(("Ubik", lambda: UbikPolicy(slack=slack)),),
            scheme=scheme,
            cache_key_extra="fig13",
        )
        for load_label in ("lo", "hi"):
            records = sweep.for_policy("Ubik", load_label)
            if not records:
                continue
            entries.append(
                SchemeEntry(
                    scheme=scheme.name,
                    load_label=load_label,
                    worst_degradation=max(r.tail_degradation for r in records),
                    average_degradation=float(
                        np.mean([r.tail_degradation for r in records])
                    ),
                    average_speedup_pct=(
                        float(np.mean([r.weighted_speedup for r in records]))
                        - 1.0
                    )
                    * 100.0,
                )
            )
    return entries
