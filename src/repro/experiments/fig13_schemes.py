"""Figure 13: Ubik's sensitivity to the partitioning scheme and array.

Ubik (5% slack) runs over the mix grid under five scheme/array models:
way-partitioning on 16- and 64-way set-associative caches, Vantage on
the same arrays, and Vantage on the default 4-way 52-candidate zcache.
Expected shapes (paper Section 7.3):

* way-partitioning breaks Ubik's deadlines — transients are slower and
  pattern-dependent, so tails degrade well beyond the slack (worst on
  16 ways, where granularity and associativity also suffer);
* Vantage on SA16 leaks lines (soft partitioning) and hurts tails;
* Vantage on SA64 approaches the zcache's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..runtime.registry import make_scheme
from ..runtime.session import Session
from ..runtime.spec import PolicySpec, SchemeSpec
from ..sim.config import CMPConfig, CoreKind
from .common import ExperimentScale, default_scale
from .sweep import run_policy_sweep

__all__ = ["SchemeEntry", "run_fig13"]


@dataclass(frozen=True)
class SchemeEntry:
    """Aggregate metrics for one scheme at one load."""

    scheme: str
    load_label: str
    worst_degradation: float
    average_degradation: float
    average_speedup_pct: float


#: Registry keys of the five scheme/array configurations of Figure 13.
FIG13_SCHEME_NAMES = (
    "waypart_sa16",
    "waypart_sa64",
    "vantage_sa16",
    "vantage_sa64",
    "vantage_zcache",
)


def run_fig13(
    scale: ExperimentScale | None = None,
    slack: float = 0.05,
    session: Session | None = None,
) -> List[SchemeEntry]:
    """Run Ubik under each of the five scheme models."""
    scale = scale or default_scale()
    llc_lines = CMPConfig().llc_lines
    policies = (PolicySpec.of("ubik", label="Ubik", slack=slack),)
    entries: List[SchemeEntry] = []
    for scheme_name in FIG13_SCHEME_NAMES:
        sweep = run_policy_sweep(
            scale,
            core_kind=CoreKind.OOO,
            policies=policies,
            scheme=SchemeSpec.of(scheme_name),
            session=session,
        )
        display = make_scheme(scheme_name, llc_lines).name
        for load_label in ("lo", "hi"):
            records = sweep.for_policy("Ubik", load_label)
            if not records:
                continue
            entries.append(
                SchemeEntry(
                    scheme=display,
                    load_label=load_label,
                    worst_degradation=max(r.tail_degradation for r in records),
                    average_degradation=float(
                        np.mean([r.tail_degradation for r in records])
                    ),
                    average_speedup_pct=(
                        float(np.mean([r.weighted_speedup for r in records]))
                        - 1.0
                    )
                    * 100.0,
                )
            )
    return entries
