"""Figure 1b: CDFs of request service time (no queueing delay).

Service times are evaluated at the paper's characterization point: the
app alone with a warm 2 MB LLC, so service time is work times the CPI
at the steady miss ratio.  Expected shapes: near-constant for masstree
and moses; long-tailed for xapian; multi-modal for shore and specjbb.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..cpu import OutOfOrderCore
from ..sim.config import CMPConfig
from ..units import cycles_to_ms
from ..workloads.latency_critical import make_lc_workload

__all__ = ["ServiceCDF", "service_time_cdf", "run_fig1b"]


@dataclass(frozen=True)
class ServiceCDF:
    """Sampled service-time CDF plus key percentiles (ms)."""

    name: str
    grid_ms: Tuple[float, ...]
    cdf: Tuple[float, ...]
    mean_ms: float
    p95_ms: float

    def value_at(self, ms: float) -> float:
        return float(np.interp(ms, self.grid_ms, self.cdf))


def service_time_cdf(
    lc_name: str,
    points: int = 64,
    config: CMPConfig | None = None,
) -> ServiceCDF:
    """Analytic service-time CDF for one app at the 2 MB baseline."""
    config = config or CMPConfig()
    workload = make_lc_workload(lc_name)
    core = OutOfOrderCore(config.mem_latency_cycles)
    miss_ratio = float(workload.miss_curve(workload.target_lines))
    cpi = core.cpi(workload.profile, miss_ratio)
    # Service time = work * cpi; the CDF is the work CDF rescaled.
    to_ms = lambda work: cycles_to_ms(work * cpi, config.freq_hz)
    mean_ms = to_ms(workload.work.mean())
    p95_ms = to_ms(workload.work.percentile(0.95))
    top_ms = to_ms(workload.work.percentile(0.999))
    grid_ms = np.linspace(0.0, top_ms, points)
    cdf = [
        workload.work.cdf(ms / cpi / cycles_to_ms(1.0, config.freq_hz))
        for ms in grid_ms
    ]
    return ServiceCDF(
        name=lc_name,
        grid_ms=tuple(float(x) for x in grid_ms),
        cdf=tuple(float(x) for x in cdf),
        mean_ms=mean_ms,
        p95_ms=p95_ms,
    )


def run_fig1b(lc_names: Sequence[str]) -> Dict[str, ServiceCDF]:
    """Service-time CDFs for several apps (the full Figure 1b)."""
    return {name: service_time_cdf(name) for name in lc_names}
