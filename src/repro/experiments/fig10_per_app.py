"""Figures 10 and 11: per-app tail degradation and weighted speedup.

For each latency-critical app and load, the *overall* tail degradation
pools response times across all that app's mixes (the paper's
40-machine-cluster interpretation), and the whisker is the
worst-performing single mix.  The speedup panel averages weighted
speedups over the same mixes.  Figure 11 is the same experiment with
in-order cores, which amplifies both effects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..runtime.session import Session
from ..sim.config import CoreKind
from .common import ExperimentScale, default_scale
from .sweep import SweepResult, run_policy_sweep

__all__ = ["PerAppEntry", "run_fig10", "run_fig11"]


@dataclass(frozen=True)
class PerAppEntry:
    """One bar + whisker of Figure 10/11."""

    lc_name: str
    load_label: str
    policy: str
    overall_degradation: float
    worst_degradation: float
    average_speedup: float


def _per_app_entries(sweep: SweepResult) -> List[PerAppEntry]:
    entries: List[PerAppEntry] = []
    lc_names = sorted({r.lc_name for r in sweep.records})
    for lc_name in lc_names:
        for load_label in ("lo", "hi"):
            for policy in sweep.policies():
                records = sweep.per_app(policy, lc_name, load_label)
                if not records:
                    continue
                # Pooled tail over all mixes ~ tail-weighted aggregate;
                # approximated by the mean of per-mix tails (each mix
                # contributes the same request population).
                pooled = float(
                    np.mean([r.lc_tail_cycles for r in records])
                ) / float(np.mean([r.baseline_tail_cycles for r in records]))
                worst = max(r.tail_degradation for r in records)
                speedup = float(
                    np.mean([r.weighted_speedup for r in records])
                )
                entries.append(
                    PerAppEntry(
                        lc_name=lc_name,
                        load_label=load_label,
                        policy=policy,
                        overall_degradation=pooled,
                        worst_degradation=worst,
                        average_speedup=speedup,
                    )
                )
    return entries


def run_fig10(
    scale: ExperimentScale | None = None,
    session: Session | None = None,
) -> List[PerAppEntry]:
    """Per-app results with OOO cores (Figure 10)."""
    scale = scale or default_scale()
    sweep = run_policy_sweep(scale, core_kind=CoreKind.OOO, session=session)
    return _per_app_entries(sweep)


def run_fig11(
    scale: ExperimentScale | None = None,
    session: Session | None = None,
) -> List[PerAppEntry]:
    """Per-app results with in-order cores (Figure 11)."""
    scale = scale or default_scale()
    sweep = run_policy_sweep(
        scale, core_kind=CoreKind.IN_ORDER, session=session
    )
    return _per_app_entries(sweep)
