"""Experiment modules: one per paper table/figure.

==========  ================================  ==============================
Experiment  Module                            Regenerates
==========  ================================  ==============================
Table 1     workloads.latency_critical        LC workload parameters
Table 2     sim.config                        simulated CMP configuration
Fig 1a      fig1_load_latency                 load-latency curves
Fig 1b      fig1b_service_cdf                 service-time CDFs
Fig 2       fig2_reuse                        cross-request reuse breakdown
Fig 9       fig9_distributions                scheme distributions
Table 3     table3_speedups                   average weighted speedups
Fig 10      fig10_per_app (run_fig10)         per-app results, OOO cores
Fig 11      fig10_per_app (run_fig11)         per-app results, in-order
Fig 12      fig12_slack                       slack sensitivity
Fig 13      fig13_schemes                     partitioning-scheme sensitivity
Sec 7.1     utilization                       utilization estimate
(ablation)  ablations                         Ubik design-choice ablations
(extension) scaleout                          larger CMPs (deferred future work)
==========  ================================  ==============================
"""

from .ablations import AblationEntry, run_ablations
from .bandwidth_study import BandwidthPoint, run_bandwidth_study
from .common import (
    REPRESENTATIVE_COMBOS,
    ExperimentScale,
    default_scale,
    format_table,
    scaled_mix_specs,
)
from .scaleout import ScaleOutResult, run_scaleout
from .fig1_load_latency import LoadLatencyPoint, load_latency_curve, run_fig1a
from .fig1b_service_cdf import ServiceCDF, run_fig1b, service_time_cdf
from .fig2_reuse import ReuseBreakdown, reuse_breakdown, run_fig2
from .fig9_distributions import Fig9Data, run_fig9
from .fig10_per_app import PerAppEntry, run_fig10, run_fig11
from .fig12_slack import DEFAULT_SLACKS, run_fig12
from .fig13_schemes import SchemeEntry, run_fig13
from .sweep import (
    DEFAULT_POLICIES,
    DEFAULT_POLICY_FACTORIES,
    RunRecord,
    SweepResult,
    run_policy_sweep,
)
from .table3_speedups import PAPER_TABLE3, format_table3, run_table3
from .utilization import UtilizationEstimate, run_utilization

__all__ = [
    "ExperimentScale",
    "default_scale",
    "scaled_mix_specs",
    "format_table",
    "REPRESENTATIVE_COMBOS",
    "LoadLatencyPoint",
    "load_latency_curve",
    "run_fig1a",
    "ServiceCDF",
    "service_time_cdf",
    "run_fig1b",
    "ReuseBreakdown",
    "reuse_breakdown",
    "run_fig2",
    "Fig9Data",
    "run_fig9",
    "PerAppEntry",
    "run_fig10",
    "run_fig11",
    "DEFAULT_SLACKS",
    "run_fig12",
    "SchemeEntry",
    "run_fig13",
    "RunRecord",
    "SweepResult",
    "run_policy_sweep",
    "DEFAULT_POLICIES",
    "DEFAULT_POLICY_FACTORIES",
    "PAPER_TABLE3",
    "run_table3",
    "format_table3",
    "UtilizationEstimate",
    "run_utilization",
    "AblationEntry",
    "run_ablations",
    "ScaleOutResult",
    "run_scaleout",
    "BandwidthPoint",
    "run_bandwidth_study",
]
