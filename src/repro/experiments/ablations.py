"""Ablation study: isolating Ubik's design choices.

DESIGN.md calls out three load-bearing choices; each variant removes
one:

* ``Ubik-noboost`` — idle downsizing without wake-up boosting: the
  refill transient's lost cycles are never repaid, so tails drift
  beyond the slack bound (the OnOff failure mode, softened).
* ``Ubik-nodeboost`` — boosts held for the whole active period instead
  of being released when repaid: tails stay safe, but batch apps lose
  the space the de-boost circuit would have returned early.
* ``Ubik-exact`` — the controller uses exact transient integrals
  instead of the paper's conservative bounds: at least as aggressive,
  still safe in this engine (whose transients the bounds dominate),
  showing how much headroom the conservatism costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..runtime.session import Session
from ..runtime.spec import PolicySpec
from ..sim.config import CoreKind
from .common import ExperimentScale, default_scale
from .sweep import run_policy_sweep

__all__ = ["AblationEntry", "run_ablations"]


@dataclass(frozen=True)
class AblationEntry:
    """Aggregate metrics for one Ubik variant at one load."""

    variant: str
    load_label: str
    average_degradation: float
    worst_degradation: float
    average_speedup_pct: float


def run_ablations(
    scale: ExperimentScale | None = None,
    slack: float = 0.05,
    session: Session | None = None,
) -> List[AblationEntry]:
    """Run full Ubik and the three ablated variants over the grid."""
    scale = scale or default_scale()
    policies = (
        PolicySpec.of("ubik", label="Ubik", slack=slack),
        PolicySpec.of(
            "ubik", label="Ubik-noboost", slack=slack, boost_enabled=False
        ),
        PolicySpec.of(
            "ubik", label="Ubik-nodeboost", slack=slack, deboost_enabled=False
        ),
        PolicySpec.of(
            "ubik", label="Ubik-exact", slack=slack, use_exact_bounds=True
        ),
    )
    sweep = run_policy_sweep(
        scale,
        core_kind=CoreKind.OOO,
        policies=policies,
        session=session,
    )
    entries: List[AblationEntry] = []
    for name in (p.display for p in policies):
        for load_label in ("lo", "hi"):
            records = sweep.for_policy(name, load_label)
            if not records:
                continue
            entries.append(
                AblationEntry(
                    variant=name,
                    load_label=load_label,
                    average_degradation=float(
                        np.mean([r.tail_degradation for r in records])
                    ),
                    worst_degradation=max(r.tail_degradation for r in records),
                    average_speedup_pct=(
                        float(np.mean([r.weighted_speedup for r in records])) - 1.0
                    )
                    * 100.0,
                )
            )
    return entries
