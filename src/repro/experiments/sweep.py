"""Policy-comparison sweeps shared by Figures 9-11 and Table 3.

A sweep runs every scaled mix under every scheme and records the two
paper metrics per run: tail-latency degradation and weighted speedup.
Sweeps execute on the :mod:`repro.runtime` session — declarative
:class:`~repro.runtime.spec.RunSpec` grids served from the persistent
result store and fanned across cores by the session's executor — so
the several benchmarks reading the same data (Fig 9, Fig 10, Table 3)
trigger a single computation *across processes*, not just within one.

:func:`run_policy_sweep` remains the load-bearing entry point.  New
callers pass ``policies`` (a sequence of
:class:`~repro.runtime.spec.PolicySpec`); the historical
``policy_factories`` tuples of ``(name, callable)`` still work and run
through an in-process legacy path (callables cannot be fingerprinted,
so only their baselines hit the store).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..cache.schemes import SchemeModel
from ..policies.base import Policy
from ..sim.config import CMPConfig, CoreKind
from ..sim.grid_replay import grid_replay_enabled
from ..sim.mix_runner import MixRunner
from ..runtime.session import (
    DEFAULT_POLICIES,
    Session,
    get_session,
    record_from_result,
)
from ..runtime.spec import PolicySpec, RunRecord, SchemeSpec, SweepResult
from .common import ExperimentScale, scaled_mix_specs

__all__ = [
    "PolicyFactory",
    "DEFAULT_POLICY_FACTORIES",
    "DEFAULT_POLICIES",
    "RunRecord",
    "SweepResult",
    "run_policy_sweep",
]

PolicyFactory = Tuple[str, Callable[[], Policy]]


def _legacy_default_factories() -> Tuple[PolicyFactory, ...]:
    """The historical (name, callable) tuples, built via the registry."""
    return tuple((p.display, p.build) for p in DEFAULT_POLICIES)


#: Backwards-compatible alias of the five paper schemes as factories.
DEFAULT_POLICY_FACTORIES: Tuple[PolicyFactory, ...] = _legacy_default_factories()

#: Process-local identity memo so repeated calls (and tests asserting
#: ``again is sweep``) get the same object back without re-reading the
#: store.
_CACHE: Dict[Tuple, SweepResult] = {}


def _legacy_sweep(
    scale: ExperimentScale,
    core_kind: str,
    factories: Sequence[PolicyFactory],
    scheme: Optional[SchemeModel],
    session: Session,
) -> SweepResult:
    """In-process sweep over opaque factory callables.

    Kept for callers that pass live callables (which have no content
    fingerprint).  Baselines still go through the session store, so
    even this path shares the expensive isolated runs across processes
    — and the joint replays themselves batch per mix: every policy
    cell of one mix replays through a single
    :meth:`~repro.sim.mix_runner.MixRunner.run_mix_group` group, which
    by default advances the whole group through the lockstep SoA engine
    (``REPRO_GRID_REPLAY=0`` restores the scalar per-cell loop,
    ``REPRO_LOCKSTEP=0`` the grouped per-cell loop — bit-identically
    either way).
    """
    config = CMPConfig(core_kind=core_kind)
    runner = MixRunner(
        config=config,
        requests=scale.requests,
        seed=scale.seed,
        store=session.store,
    )
    records: List[RunRecord] = []
    for spec in scaled_mix_specs(scale):
        if grid_replay_enabled():
            results = runner.run_mix_group(
                spec, [(factory(), scheme) for __, factory in factories]
            )
        else:
            results = [
                runner.run_mix(spec, factory(), scheme=scheme)
                for __, factory in factories
            ]
        for (name, __), result in zip(factories, results):
            records.append(
                record_from_result(
                    result,
                    policy_label=name,
                    lc_name=spec.lc_workload.name,
                    load_label=spec.load_label,
                )
            )
    return SweepResult(records=records)


def run_policy_sweep(
    scale: ExperimentScale,
    core_kind: str = CoreKind.OOO,
    policy_factories: Optional[Sequence[PolicyFactory]] = None,
    scheme: Union[SchemeModel, SchemeSpec, str, None] = None,
    cache_key_extra: str = "",
    policies: Optional[Sequence[PolicySpec]] = None,
    session: Optional[Session] = None,
) -> SweepResult:
    """Run (or fetch) the full mixes x policies sweep.

    Preferred form: pass ``policies`` as
    :class:`~repro.runtime.spec.PolicySpec` entries (and ``scheme`` as
    a :class:`~repro.runtime.spec.SchemeSpec` or registry name); the
    grid then runs on the runtime session — persistent store plus the
    configured executor.  The historical ``policy_factories`` form is
    honoured via the in-process legacy path.
    """
    if policies is not None and policy_factories is not None:
        raise ValueError("pass either policies or policy_factories, not both")
    session = session or get_session()
    if policies is None and (
        policy_factories is None
        or policy_factories is DEFAULT_POLICY_FACTORIES
    ):
        policies = DEFAULT_POLICIES

    if policies is not None and not isinstance(scheme, SchemeModel):
        scheme_spec = (
            SchemeSpec.of(scheme) if isinstance(scheme, str) else scheme
        )
        # Key the memo on the store's identity too: a sweep served from
        # one store must not satisfy a request aimed at another.
        store_key = session.store.memo_key
        key = (
            scale,
            core_kind,
            tuple(policies),
            scheme_spec,
            cache_key_extra,
            store_key,
            "spec",
        )
        hit = _CACHE.get(key)
        if hit is not None:
            return hit
        sweep = session.sweep(
            scale, policies=policies, scheme=scheme_spec, core_kind=core_kind
        )
        _CACHE[key] = sweep
        return sweep

    factories: Sequence[PolicyFactory]
    if policy_factories is not None:
        factories = tuple(policy_factories)
    else:
        factories = tuple((p.display, p.build) for p in policies or ())
    scheme_model: Optional[SchemeModel]
    if isinstance(scheme, SchemeModel) or scheme is None:
        scheme_model = scheme
    else:
        # Honour declarative scheme arguments on the legacy path too.
        spec = SchemeSpec.of(scheme) if isinstance(scheme, str) else scheme
        scheme_model = spec.build(CMPConfig(core_kind=core_kind).llc_lines)
    key = (
        scale,
        core_kind,
        tuple(name for name, __ in factories),
        scheme_model.name if scheme_model is not None else "ideal",
        cache_key_extra,
        session.store.memo_key,
        "legacy",
    )
    hit = _CACHE.get(key)
    if hit is not None:
        return hit
    sweep = _legacy_sweep(scale, core_kind, factories, scheme_model, session)
    _CACHE[key] = sweep
    return sweep
