"""Policy-comparison sweeps shared by Figures 9-11 and Table 3.

A sweep runs every scaled mix under every scheme and records the two
paper metrics per run: tail-latency degradation and weighted speedup.
Results are memoized per (scale, core kind) so that the several
benchmarks reading the same data (Fig 9, Fig 10, Table 3) trigger a
single computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..cache.schemes import SchemeModel
from ..core.ubik import UbikPolicy
from ..policies.base import Policy
from ..policies.lru import LRUPolicy
from ..policies.onoff import OnOffPolicy
from ..policies.static_lc import StaticLCPolicy
from ..policies.ucp import UCPPolicy
from ..sim.config import CMPConfig, CoreKind
from ..sim.mix_runner import MixRunner
from ..workloads.mixes import MixSpec
from .common import ExperimentScale, scaled_mix_specs

__all__ = [
    "PolicyFactory",
    "DEFAULT_POLICY_FACTORIES",
    "RunRecord",
    "SweepResult",
    "run_policy_sweep",
]

PolicyFactory = Tuple[str, Callable[[], Policy]]

#: The five schemes of Figures 9-11, in the paper's order.
DEFAULT_POLICY_FACTORIES: Tuple[PolicyFactory, ...] = (
    ("LRU", LRUPolicy),
    ("UCP", UCPPolicy),
    ("OnOff", OnOffPolicy),
    ("StaticLC", StaticLCPolicy),
    ("Ubik", lambda: UbikPolicy(slack=0.05)),
)


@dataclass(frozen=True)
class RunRecord:
    """One (mix, policy) run's metrics."""

    mix_id: str
    lc_name: str
    load_label: str
    policy: str
    tail_degradation: float
    weighted_speedup: float
    lc_tail_cycles: float
    baseline_tail_cycles: float


@dataclass
class SweepResult:
    """All runs of a sweep plus grouped accessors."""

    records: List[RunRecord]

    def for_policy(self, policy: str, load_label: Optional[str] = None) -> List[RunRecord]:
        return [
            r
            for r in self.records
            if r.policy == policy
            and (load_label is None or r.load_label == load_label)
        ]

    def policies(self) -> List[str]:
        seen: Dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.policy, None)
        return list(seen)

    def sorted_degradations(self, policy: str, load_label: str) -> np.ndarray:
        vals = [r.tail_degradation for r in self.for_policy(policy, load_label)]
        return np.sort(np.asarray(vals))[::-1]  # worst first, paper style

    def sorted_speedups(self, policy: str, load_label: str) -> np.ndarray:
        vals = [r.weighted_speedup for r in self.for_policy(policy, load_label)]
        return np.sort(np.asarray(vals))

    def average_speedup(self, policy: str, load_label: str) -> float:
        vals = [r.weighted_speedup for r in self.for_policy(policy, load_label)]
        return float(np.mean(vals)) if vals else float("nan")

    def per_app(
        self, policy: str, lc_name: str, load_label: str
    ) -> List[RunRecord]:
        return [
            r
            for r in self.for_policy(policy, load_label)
            if r.lc_name == lc_name
        ]


_CACHE: Dict[Tuple, SweepResult] = {}


def run_policy_sweep(
    scale: ExperimentScale,
    core_kind: str = CoreKind.OOO,
    policy_factories: Tuple[PolicyFactory, ...] = DEFAULT_POLICY_FACTORIES,
    scheme: Optional[SchemeModel] = None,
    cache_key_extra: str = "",
) -> SweepResult:
    """Run (or fetch) the full mixes x policies sweep."""
    key = (
        scale,
        core_kind,
        tuple(name for name, __ in policy_factories),
        scheme.name if scheme else "ideal",
        cache_key_extra,
    )
    hit = _CACHE.get(key)
    if hit is not None:
        return hit

    config = CMPConfig(core_kind=core_kind)
    runner = MixRunner(config=config, requests=scale.requests, seed=scale.seed)
    specs = scaled_mix_specs(scale)
    records: List[RunRecord] = []
    for spec in specs:
        for name, factory in policy_factories:
            result = runner.run_mix(spec, factory(), scheme=scheme)
            records.append(
                RunRecord(
                    mix_id=spec.mix_id,
                    lc_name=spec.lc_workload.name,
                    load_label=spec.load_label,
                    policy=name,
                    tail_degradation=result.tail_degradation(),
                    weighted_speedup=result.weighted_speedup(),
                    lc_tail_cycles=result.tail95(),
                    baseline_tail_cycles=result.baseline_tail_cycles,
                )
            )
    sweep = SweepResult(records=records)
    _CACHE[key] = sweep
    return sweep
