"""Figure 2: LLC access breakdown by cross-request reuse distance.

Trace-driven characterization of performance inertia: each app's
synthetic address trace is run through a set-associative LRU cache at
(scaled) 2 MB and 8 MB capacities, and each hit is classified by how
many requests ago its line was last touched (0 = same request, 1 = one
request ago, ..., 8+ = eight or more).  Expected shapes (Section 3.4):

* more than half of hits come from lines last touched by *earlier*
  requests — taking space from idle LC apps hurts;
* the 8 MB cache shows lower miss rates and deeper cross-request reuse
  than the 2 MB cache — bigger caches mean more inertia;
* APKI ordering: moses > specjbb > masstree > shore > xapian.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..cache.set_assoc import SetAssociativeCache
from ..units import mb_to_lines
from ..workloads.latency_critical import make_lc_workload
from ..workloads.trace import generate_request_trace, lc_trace_config

__all__ = ["ReuseBreakdown", "reuse_breakdown", "run_fig2"]

#: Reuse classes: hits 0..7 requests ago, then "8+", then misses.
NUM_CLASSES = 9


@dataclass(frozen=True)
class ReuseBreakdown:
    """Access breakdown for one app at one cache size."""

    name: str
    cache_mb: float
    apki: float
    hit_fractions: Tuple[float, ...]  # by requests-ago class (len 9)
    miss_fraction: float

    @property
    def cross_request_hit_fraction(self) -> float:
        """Hits to lines last touched by an earlier request, as a
        fraction of all hits."""
        total_hits = sum(self.hit_fractions)
        if total_hits == 0:
            return 0.0
        return sum(self.hit_fractions[1:]) / total_hits


def reuse_breakdown(
    lc_name: str,
    cache_mb: float,
    scale: float = 1.0 / 16.0,
    num_requests: int | None = None,
    ways: int = 16,
    seed: int = 11,
) -> ReuseBreakdown:
    """Run one app's trace through a scaled cache and classify hits.

    ``num_requests=None`` sizes the window adaptively: low-APKI apps
    (xapian) re-reference hot lines only once every ~100 requests, so
    the window must span several re-reference distances to observe
    their cross-request reuse, exactly as the paper's long runs do.
    """
    workload = make_lc_workload(lc_name)
    full_lines = mb_to_lines(cache_mb)
    lines = max(ways, int(full_lines * scale) // ways * ways)
    cache = SetAssociativeCache(lines, ways)
    config = lc_trace_config(workload, full_lines, scale=scale)
    if num_requests is None:
        shared_per_request = max(
            1.0, config.accesses_per_request * config.shared_fraction
        )
        reref_distance = config.hot_lines / shared_per_request
        num_requests = int(min(max(64, 6 * reref_distance), 512))
    rng = np.random.default_rng(seed)
    requests = generate_request_trace(config, num_requests, rng)

    last_touch: Dict[int, int] = {}
    class_counts = np.zeros(NUM_CLASSES, dtype=np.int64)
    misses = 0
    total = 0
    warmup = max(8, num_requests // 8)
    top_class = NUM_CLASSES - 1
    for req_id, addrs in enumerate(requests):
        addr_list = np.asarray(addrs, dtype=np.int64).tolist()
        hit_mask = cache.access_many(addr_list)
        if req_id < warmup:
            # Warmup requests only feed the cache and the touch map.
            last_touch.update(dict.fromkeys(addr_list, req_id))
            continue
        total += len(addr_list)
        batch_hits = int(np.count_nonzero(hit_mask))
        misses += len(addr_list) - batch_hits
        get = last_touch.get
        for addr, hit in zip(addr_list, hit_mask.tolist()):
            if hit:
                ago = req_id - get(addr, req_id)
                class_counts[min(ago, top_class)] += 1
            last_touch[addr] = req_id
    if total == 0:
        raise RuntimeError("no post-warmup accesses")
    return ReuseBreakdown(
        name=lc_name,
        cache_mb=cache_mb,
        apki=workload.profile.apki,
        hit_fractions=tuple(float(c) / total for c in class_counts),
        miss_fraction=misses / total,
    )


def run_fig2(
    lc_names: Sequence[str],
    cache_sizes_mb: Sequence[float] = (2.0, 8.0),
    scale: float = 1.0 / 16.0,
    num_requests: int | None = None,
) -> Dict[Tuple[str, float], ReuseBreakdown]:
    """The full Figure 2: every app at every cache size."""
    out: Dict[Tuple[str, float], ReuseBreakdown] = {}
    for name in lc_names:
        for mb in cache_sizes_mb:
            out[(name, mb)] = reuse_breakdown(
                name, mb, scale=scale, num_requests=num_requests
            )
    return out
