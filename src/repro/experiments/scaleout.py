"""Extension: Ubik on a larger CMP (the paper's deferred future work).

The paper evaluates a six-core CMP and notes that "Ubik should apply to
large-scale CMPs with tens to hundreds of cores, but we leave that
evaluation to future work" (Section 6).  This experiment scales the
machine — N latency-critical instances plus N batch apps sharing an
LLC that grows proportionally (2 MB per core, as in the baseline) — and
checks that Ubik's guarantees are scale-free: tails stay at the
baseline while batch throughput keeps its gains.

Each (machine size, policy) point is a declarative
:class:`ScaleoutSpec` evaluated by the runtime session, so the study
rides the persistent store, ``--jobs``, and the async scheduler like
every sweep; the engine driving lives in
:func:`repro.sim.study_runner.run_scaleout_point`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, List, Optional, Sequence

from ..runtime.session import Session, get_session
from ..runtime.spec import PolicySpec, TaskSpec

__all__ = ["ScaleOutResult", "ScaleoutSpec", "run_scaleout"]


@dataclass(frozen=True)
class ScaleOutResult:
    """Metrics for one machine size under one policy."""

    cores: int
    policy: str
    tail_degradation: float
    weighted_speedup: float


@dataclass(frozen=True)
class ScaleoutSpec(TaskSpec):
    """One (machine size, policy) scaleout point, declaratively."""

    kind: ClassVar[str] = "scaleout"
    result_type: ClassVar[Optional[type]] = ScaleOutResult

    cores: int
    policy: PolicySpec
    lc_name: str = "shore"
    load: float = 0.2
    requests: int = 100
    seed: int = 21

    def __post_init__(self) -> None:
        if self.cores % 2 != 0:
            raise ValueError("core counts must be even (half LC, half batch)")

    def compute(self, store) -> ScaleOutResult:
        from ..sim.study_runner import run_scaleout_point

        return run_scaleout_point(self, store)


#: The two policies whose scale behaviour the study contrasts.
_SCALEOUT_POLICIES = (
    PolicySpec.of("static_lc"),
    PolicySpec.of("ubik", slack=0.05),
)


def run_scaleout(
    core_counts: Sequence[int] = (6, 12, 24),
    lc_name: str = "shore",
    load: float = 0.2,
    requests: int = 100,
    seed: int = 21,
    session: Optional[Session] = None,
) -> List[ScaleOutResult]:
    """Sweep machine sizes; half the cores run LC, half batch."""
    specs = [
        ScaleoutSpec(
            cores=cores,
            policy=policy,
            lc_name=lc_name,
            load=load,
            requests=requests,
            seed=seed,
        )
        for cores in core_counts
        for policy in _SCALEOUT_POLICIES
    ]
    session = session or get_session()
    return session.run_many(specs)
