"""Extension: Ubik on a larger CMP (the paper's deferred future work).

The paper evaluates a six-core CMP and notes that "Ubik should apply to
large-scale CMPs with tens to hundreds of cores, but we leave that
evaluation to future work" (Section 6).  This experiment scales the
machine — N latency-critical instances plus N batch apps sharing an
LLC that grows proportionally (2 MB per core, as in the baseline) — and
checks that Ubik's guarantees are scale-free: tails stay at the
baseline while batch throughput keeps its gains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..core.ubik import UbikPolicy
from ..policies.fixed import FixedPolicy
from ..policies.static_lc import StaticLCPolicy
from ..server.latency import percentile_latency, tail_mean
from ..sim.config import CMPConfig
from ..sim.engine import LCInstanceSpec, MixEngine
from ..workloads.arrivals import generate_arrivals
from ..workloads.batch import make_batch_workload
from ..workloads.latency_critical import make_lc_workload

__all__ = ["ScaleOutResult", "run_scaleout"]


@dataclass(frozen=True)
class ScaleOutResult:
    """Metrics for one machine size under one policy."""

    cores: int
    policy: str
    tail_degradation: float
    weighted_speedup: float


def _lc_specs(workload, load, instances, requests, seed, config):
    specs = []
    for instance in range(instances):
        rng = np.random.default_rng((seed, instance))
        works = np.asarray([workload.work.sample(rng) for _ in range(requests)])
        arrivals = generate_arrivals(
            requests,
            load,
            workload.mean_service_cycles(),
            rng,
            coalescing_timeout_cycles=config.coalescing_timeout_cycles,
        )
        specs.append(
            LCInstanceSpec(
                workload=workload,
                arrivals=arrivals,
                works=works,
                deadline_cycles=1.0,  # refined after the baseline run
                target_tail_cycles=1.0,
                load=load,
            )
        )
    return specs


def _isolated_baseline(workload, specs, config, seed):
    """Pooled tail of the same streams run alone at the target size.

    Using the identical fixed-work streams keeps the comparison
    sample-balanced (the paper's methodology)."""
    pooled = []
    for spec in specs:
        engine = MixEngine(
            lc_specs=[spec],
            batch_workloads=[],
            policy=FixedPolicy({0: float(workload.target_lines)}),
            config=config,
            seed=seed,
            umon_noise=0.0,
            mix_id="scaleout-baseline",
        )
        pooled.extend(engine.run().lc_instances[0].latencies)
    return tail_mean(pooled, 95.0), percentile_latency(pooled, 95.0)


def run_scaleout(
    core_counts: Sequence[int] = (6, 12, 24),
    lc_name: str = "shore",
    load: float = 0.2,
    requests: int = 100,
    seed: int = 21,
) -> List[ScaleOutResult]:
    """Sweep machine sizes; half the cores run LC, half batch."""
    results: List[ScaleOutResult] = []
    workload = make_lc_workload(lc_name)
    batch_classes = ("n", "f", "t", "s")
    for cores in core_counts:
        if cores % 2 != 0:
            raise ValueError("core counts must be even (half LC, half batch)")
        config = CMPConfig(num_cores=cores).with_llc_mb(2.0 * cores)
        lc_instances = cores // 2
        batch_apps = [
            make_batch_workload(batch_classes[i % 4], seed=seed + i, instance=i)
            for i in range(cores - lc_instances)
        ]
        specs = _lc_specs(workload, load, lc_instances, requests, seed, config)
        tail95, p95 = _isolated_baseline(workload, specs, config, seed)
        specs = [
            LCInstanceSpec(
                workload=s.workload,
                arrivals=s.arrivals,
                works=s.works,
                deadline_cycles=p95,
                target_tail_cycles=tail95,
                load=s.load,
            )
            for s in specs
        ]
        for policy in (StaticLCPolicy(), UbikPolicy(slack=0.05)):
            engine = MixEngine(
                lc_specs=specs,
                batch_workloads=batch_apps,
                policy=policy,
                config=config,
                seed=seed,
                baseline_lines=float(workload.target_lines),
                mix_id=f"scaleout-{cores}",
            )
            result = engine.run()
            result.baseline_tail_cycles = tail95
            results.append(
                ScaleOutResult(
                    cores=cores,
                    policy=policy.name,
                    tail_degradation=result.tail_degradation(),
                    weighted_speedup=result.weighted_speedup(),
                )
            )
    return results
