"""Figure 9: distributions of tail degradation and weighted speedup.

For each scheme and load level, mixes are sorted independently (worst
tail degradation first; ascending weighted speedup), summarizing each
scheme's distribution across the mix population.  Expected shapes:

* LRU, UCP and OnOff suffer large degradations (up to ~2x) on a
  significant fraction of mixes;
* StaticLC and Ubik hold degradation at ~1.0 across the board;
* Ubik's speedup distribution tracks UCP/OnOff and dominates StaticLC.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..runtime.session import Session
from ..sim.config import CoreKind
from .common import ExperimentScale, default_scale
from .sweep import SweepResult, run_policy_sweep

__all__ = ["Fig9Data", "run_fig9"]


class Fig9Data:
    """Sorted per-scheme distributions for both metrics and loads."""

    def __init__(self, sweep: SweepResult):
        self.sweep = sweep
        self.policies = sweep.policies()

    def degradation_series(self, load_label: str) -> Dict[str, np.ndarray]:
        return {
            p: self.sweep.sorted_degradations(p, load_label)
            for p in self.policies
        }

    def speedup_series(self, load_label: str) -> Dict[str, np.ndarray]:
        return {
            p: self.sweep.sorted_speedups(p, load_label) for p in self.policies
        }

    def worst_degradation(self, policy: str, load_label: str) -> float:
        series = self.sweep.sorted_degradations(policy, load_label)
        return float(series[0]) if series.size else float("nan")

    def violation_fraction(
        self, policy: str, load_label: str, threshold: float = 1.1
    ) -> float:
        """Fraction of mixes degraded beyond ``threshold``."""
        series = self.sweep.sorted_degradations(policy, load_label)
        if series.size == 0:
            return float("nan")
        return float(np.mean(series > threshold))


def run_fig9(
    scale: ExperimentScale | None = None,
    core_kind: str = CoreKind.OOO,
    session: Session | None = None,
) -> Fig9Data:
    """Run (or fetch) the Figure 9 sweep."""
    scale = scale or default_scale()
    sweep = run_policy_sweep(scale, core_kind=core_kind, session=session)
    return Fig9Data(sweep)
