"""Extension: memory-bandwidth contention (paper future work).

The paper's engine models fixed-latency memory; its Section 6 notes
that bandwidth has no inertia and defers combining Ubik with bandwidth
partitioning.  This experiment supplies the motivating data: sweep the
memory channel's sustainable throughput and measure how tail latency
degrades under cache partitioning alone.

Expected shape: with generous bandwidth, Ubik and StaticLC hold tails
at ~1.0x; as the channel tightens, *both* degrade — the interference
arrives through a resource neither manages — demonstrating why the
paper calls for pairing Ubik with bandwidth partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..core.ubik import UbikPolicy
from ..policies.static_lc import StaticLCPolicy
from ..sim.bandwidth import BandwidthModel
from ..sim.config import CMPConfig
from ..sim.engine import LCInstanceSpec, MixEngine
from ..sim.mix_runner import MixRunner
from ..workloads.mixes import make_mix_specs

__all__ = ["BandwidthPoint", "run_bandwidth_study"]


@dataclass(frozen=True)
class BandwidthPoint:
    """Metrics at one channel capacity under one policy."""

    peak_misses_per_kilocycle: float
    policy: str
    tail_degradation: float
    weighted_speedup: float


def run_bandwidth_study(
    peaks: Sequence[float] = (1e9, 160.0, 100.0, 70.0),
    lc_name: str = "specjbb",
    load: float = 0.3,
    requests: int = 120,
    seed: int = 31,
) -> List[BandwidthPoint]:
    """Sweep channel capacity for one mix under StaticLC and Ubik.

    ``peaks`` are total sustainable misses per kilocycle; the first
    default is effectively infinite (the paper's fixed-latency memory),
    the rest put the streaming-heavy mix at roughly 30%, 50% and 70%
    channel utilization.
    """
    spec = make_mix_specs(
        lc_names=[lc_name], loads=[load], mixes_per_combo=1
    )[9]
    runner = MixRunner(requests=requests, seed=seed)
    baseline = runner.baseline(spec.lc_workload, load)
    results: List[BandwidthPoint] = []
    for peak in peaks:
        bandwidth = BandwidthModel(peak_misses_per_kilocycle=peak)
        for policy_factory in (StaticLCPolicy, lambda: UbikPolicy(slack=0.05)):
            policy = policy_factory()
            lc_specs = []
            for instance in range(3):
                arrivals, works = runner._stream(spec.lc_workload, load, instance)
                lc_specs.append(
                    LCInstanceSpec(
                        workload=spec.lc_workload,
                        arrivals=arrivals,
                        works=works,
                        deadline_cycles=baseline.p95_cycles,
                        target_tail_cycles=baseline.tail95_cycles,
                        load=load,
                    )
                )
            engine = MixEngine(
                lc_specs=lc_specs,
                batch_workloads=list(spec.batch_apps),
                policy=policy,
                config=CMPConfig(),
                seed=seed,
                baseline_lines=float(spec.lc_workload.target_lines),
                mix_id=f"bw-{peak}",
                bandwidth=bandwidth,
            )
            result = engine.run()
            result.baseline_tail_cycles = baseline.tail95_cycles
            results.append(
                BandwidthPoint(
                    peak_misses_per_kilocycle=peak,
                    policy=policy.name,
                    tail_degradation=result.tail_degradation(),
                    weighted_speedup=result.weighted_speedup(),
                )
            )
    return results
