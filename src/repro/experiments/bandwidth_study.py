"""Extension: memory-bandwidth contention (paper future work).

The paper's engine models fixed-latency memory; its Section 6 notes
that bandwidth has no inertia and defers combining Ubik with bandwidth
partitioning.  This experiment supplies the motivating data: sweep the
memory channel's sustainable throughput and measure how tail latency
degrades under cache partitioning alone.

Expected shape: with generous bandwidth, Ubik and StaticLC hold tails
at ~1.0x; as the channel tightens, *both* degrade — the interference
arrives through a resource neither manages — demonstrating why the
paper calls for pairing Ubik with bandwidth partitioning.

Each (channel capacity, policy) point is a declarative
:class:`BandwidthSpec` evaluated by the runtime session — store,
``--jobs``, and scheduler included; the engine driving lives in
:func:`repro.sim.study_runner.run_bandwidth_point`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, List, Optional, Sequence

from ..runtime.session import Session, get_session
from ..runtime.spec import PolicySpec, TaskSpec

__all__ = ["BandwidthPoint", "BandwidthSpec", "run_bandwidth_study"]


@dataclass(frozen=True)
class BandwidthPoint:
    """Metrics at one channel capacity under one policy."""

    peak_misses_per_kilocycle: float
    policy: str
    tail_degradation: float
    weighted_speedup: float


@dataclass(frozen=True)
class BandwidthSpec(TaskSpec):
    """One (channel capacity, policy) contention point, declaratively.

    ``mix_index`` selects which of the twenty single-replicate batch
    combos hosts the study (the historical default is index 9, a
    streaming-heavy trio that actually pressures the channel).
    """

    kind: ClassVar[str] = "bandwidth"
    result_type: ClassVar[Optional[type]] = BandwidthPoint

    peak_misses_per_kilocycle: float
    policy: PolicySpec
    lc_name: str = "specjbb"
    load: float = 0.3
    requests: int = 120
    seed: int = 31
    mix_index: int = 9

    def compute(self, store) -> BandwidthPoint:
        from ..sim.study_runner import run_bandwidth_point

        return run_bandwidth_point(self, store)


#: StaticLC versus Ubik, as in the historical study.
_BANDWIDTH_POLICIES = (
    PolicySpec.of("static_lc"),
    PolicySpec.of("ubik", slack=0.05),
)


def run_bandwidth_study(
    peaks: Sequence[float] = (1e9, 160.0, 100.0, 70.0),
    lc_name: str = "specjbb",
    load: float = 0.3,
    requests: int = 120,
    seed: int = 31,
    session: Optional[Session] = None,
) -> List[BandwidthPoint]:
    """Sweep channel capacity for one mix under StaticLC and Ubik.

    ``peaks`` are total sustainable misses per kilocycle; the first
    default is effectively infinite (the paper's fixed-latency memory),
    the rest put the streaming-heavy mix at roughly 30%, 50% and 70%
    channel utilization.
    """
    specs = [
        BandwidthSpec(
            peak_misses_per_kilocycle=float(peak),
            policy=policy,
            lc_name=lc_name,
            load=load,
            requests=requests,
            seed=seed,
        )
        for peak in peaks
        for policy in _BANDWIDTH_POLICIES
    ]
    session = session or get_session()
    return session.run_many(specs)
