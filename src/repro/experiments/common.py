"""Shared experiment infrastructure: scaled run parameters and reports.

Every benchmark regenerates one paper table or figure.  The paper's
full scale (400 mixes, 10^15 simulated instructions) is replaced by a
configurable scaled grid that preserves the methodology: same mix
construction, same metrics, same normalization.  Environment variables
let users dial the scale up toward the paper's:

* ``REPRO_REQUESTS``  — requests per LC instance (default 120)
* ``REPRO_MIXES``     — batch mixes per type combination (default uses
  a representative subset of combos; set >0 for the full 20-combo grid)
* ``REPRO_LC``        — comma-separated LC workload subset
* ``REPRO_LOADS``     — comma-separated LC loads, e.g. ``0.2,0.6``
  (default: the paper's low/high operating points)
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..workloads.latency_critical import LC_NAMES
from ..workloads.mixes import HIGH_LOAD, LOW_LOAD, MixSpec, make_mix_specs

__all__ = [
    "ExperimentScale",
    "default_scale",
    "scaled_mix_specs",
    "format_table",
    "REPRESENTATIVE_COMBOS",
]

#: Six type-combinations spanning the insensitive/friendly/fitting/
#: streaming space; used when the full 20-combo grid is too slow.
REPRESENTATIVE_COMBOS = ("nnn", "nft", "nss", "fft", "fts", "sss")


@dataclass(frozen=True)
class ExperimentScale:
    """Scaled-down run parameters preserving the paper's methodology."""

    requests: int = 120
    lc_names: Tuple[str, ...] = LC_NAMES
    loads: Tuple[float, ...] = (LOW_LOAD, HIGH_LOAD)
    combos: Tuple[str, ...] = REPRESENTATIVE_COMBOS
    mixes_per_combo: int = 1
    seed: int = 2014

    def __post_init__(self) -> None:
        if self.requests < 20:
            raise ValueError("need at least 20 requests for tail metrics")
        unknown = set(self.lc_names) - set(LC_NAMES)
        if unknown:
            raise ValueError(f"unknown LC workloads: {sorted(unknown)}")


def default_scale() -> ExperimentScale:
    """Scale from environment variables (see module docstring)."""
    requests = int(os.environ.get("REPRO_REQUESTS", "120"))
    lc_env = os.environ.get("REPRO_LC", "")
    lc_names = (
        tuple(name.strip() for name in lc_env.split(",") if name.strip())
        or LC_NAMES
    )
    loads_env = os.environ.get("REPRO_LOADS", "")
    loads = (
        tuple(float(x) for x in loads_env.split(",") if x.strip())
        or (LOW_LOAD, HIGH_LOAD)
    )
    mixes_env = int(os.environ.get("REPRO_MIXES", "0"))
    if mixes_env > 0:
        # Full 20-combo grid, paper style.
        combos = tuple(
            "".join(c)
            for c in itertools.combinations_with_replacement("nfts", 3)
        )
        return ExperimentScale(
            requests=requests,
            lc_names=lc_names,
            loads=loads,
            combos=combos,
            mixes_per_combo=mixes_env,
        )
    return ExperimentScale(requests=requests, lc_names=lc_names, loads=loads)


def scaled_mix_specs(scale: ExperimentScale) -> List[MixSpec]:
    """Mix specs for a scale, filtered to its combo subset."""
    specs = make_mix_specs(
        lc_names=scale.lc_names,
        loads=scale.loads,
        mixes_per_combo=scale.mixes_per_combo,
        seed=scale.seed,
    )
    keep = set(scale.combos)
    return [s for s in specs if s.batch_combo.split(".")[0] in keep]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Monospace table rendering for benchmark harness output."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
