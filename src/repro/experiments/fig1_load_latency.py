"""Figure 1a: load-latency curves for each latency-critical workload.

Each app runs alone with its 2 MB target allocation across a sweep of
offered loads; mean and 95th-percentile tail-mean latencies are
reported in milliseconds.  Expected shapes (paper Section 3.3):

* tail >> mean at every load, with an app-dependent gap;
* latency blows up superlinearly as load grows (Observation 3);
* apps with long-tailed service times (xapian, shore, specjbb) show a
  wider tail/mean gap than near-deterministic ones (masstree, moses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..sim.config import CMPConfig
from ..sim.mix_runner import MixRunner
from ..units import cycles_to_ms
from ..workloads.latency_critical import make_lc_workload

__all__ = ["LoadLatencyPoint", "load_latency_curve", "run_fig1a"]

DEFAULT_LOADS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)


@dataclass(frozen=True)
class LoadLatencyPoint:
    """One operating point on a load-latency curve."""

    load: float
    mean_ms: float
    tail95_ms: float


def load_latency_curve(
    lc_name: str,
    loads: Sequence[float] = DEFAULT_LOADS,
    requests: int = 150,
    seed: int = 7,
    config: CMPConfig | None = None,
) -> List[LoadLatencyPoint]:
    """Sweep offered load for one LC app running alone at 2 MB."""
    config = config or CMPConfig()
    workload = make_lc_workload(lc_name)
    runner = MixRunner(config=config, requests=requests, seed=seed)
    points: List[LoadLatencyPoint] = []
    for load in loads:
        baseline = runner.baseline(workload, load)
        lat = np.asarray(baseline.latencies)
        points.append(
            LoadLatencyPoint(
                load=load,
                mean_ms=cycles_to_ms(float(lat.mean()), config.freq_hz),
                tail95_ms=cycles_to_ms(baseline.tail95_cycles, config.freq_hz),
            )
        )
    return points


def run_fig1a(
    lc_names: Sequence[str],
    loads: Sequence[float] = DEFAULT_LOADS,
    requests: int = 150,
) -> Dict[str, List[LoadLatencyPoint]]:
    """Load-latency curves for several apps (the full Figure 1a)."""
    return {
        name: load_latency_curve(name, loads=loads, requests=requests)
        for name in lc_names
    }
