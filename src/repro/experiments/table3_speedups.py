"""Table 3: average weighted speedups per scheme per load.

Paper values for reference (OOO cores):

==========  ====  ====  =====  ========  ====
load        LRU   UCP   OnOff  StaticLC  Ubik
==========  ====  ====  =====  ========  ====
Low load    13.1  18.3  18.3   8.9       17.1
High load   9.8   14.7  14.5   8.3       14.8
==========  ====  ====  =====  ========  ====

The reproduction checks the *ordering*: UCP/OnOff/Ubik cluster at the
top, LRU trails them, StaticLC is last; and every scheme improves on
private LLCs (speedup > 1).
"""

from __future__ import annotations

from typing import Dict, List

from ..runtime.session import Session
from ..sim.config import CoreKind
from .common import ExperimentScale, default_scale, format_table
from .sweep import run_policy_sweep

__all__ = ["PAPER_TABLE3", "run_table3", "format_table3"]

#: Paper Table 3, percent weighted speedup over private LLCs.
PAPER_TABLE3 = {
    "lo": {"LRU": 13.1, "UCP": 18.3, "OnOff": 18.3, "StaticLC": 8.9, "Ubik": 17.1},
    "hi": {"LRU": 9.8, "UCP": 14.7, "OnOff": 14.5, "StaticLC": 8.3, "Ubik": 14.8},
}


def run_table3(
    scale: ExperimentScale | None = None,
    core_kind: str = CoreKind.OOO,
    session: Session | None = None,
) -> Dict[str, Dict[str, float]]:
    """Measured average weighted speedups, percent, by load."""
    scale = scale or default_scale()
    sweep = run_policy_sweep(scale, core_kind=core_kind, session=session)
    table: Dict[str, Dict[str, float]] = {}
    for load_label in ("lo", "hi"):
        table[load_label] = {
            policy: (sweep.average_speedup(policy, load_label) - 1.0) * 100.0
            for policy in sweep.policies()
        }
    return table


def format_table3(measured: Dict[str, Dict[str, float]]) -> str:
    """Render measured-vs-paper Table 3."""
    policies = list(next(iter(measured.values())).keys())
    rows: List[List[str]] = []
    for load_label, label in (("lo", "Low load"), ("hi", "High load")):
        rows.append(
            [label, "measured"]
            + [f"{measured[load_label][p]:.1f}%" for p in policies]
        )
        rows.append(
            [label, "paper"]
            + [f"{PAPER_TABLE3[load_label].get(p, float('nan')):.1f}%" for p in policies]
        )
    return format_table(
        ["Load", "Source"] + policies,
        rows,
        title="Table 3: average weighted speedups",
    )
