"""Tracked performance benchmarks: the ``repro bench`` harness.

The ROADMAP's north star is "as fast as the hardware allows", which is
only meaningful with a *trajectory*: numbers written down, schema-
stable, and comparable across revisions.  This module times ten
canonical kernels that cover the stack's hot layers and writes a
``BENCH_<revision>.json`` document (under ``benchmarks/perf/`` by
convention):

``mix_run``
    One full cold (mix, policy) evaluation — isolated baselines plus
    the joint six-app Ubik replay — through
    :func:`repro.runtime.work.execute_spec`.  The sim-layer kernel.
``isolated_baseline``
    A single LC instance simulated alone at its target partition
    (:meth:`~repro.sim.mix_runner.MixRunner.baseline_instance`) — the
    unit trace sharding fans out.
``trace_replay``
    One million line addresses through
    :meth:`~repro.cache.set_assoc.SetAssociativeCache.access_many`
    — *and* through the kept naive reference implementation
    (:class:`~repro.cache.reference.NaiveSetAssociativeCache`), so the
    recorded ``speedup`` always compares against the pre-optimization
    code path on the same machine, never against a stale number from
    different hardware.  The two replays are asserted access-for-access
    identical before their times are recorded.
``store_roundtrip``
    Writing and (cold) re-reading a batch of result documents through
    :class:`~repro.runtime.store.ResultStore` on a temporary directory.
``store_backend_roundtrip``
    Per-operation put/get latency through the façade for **each**
    registered storage engine — directory, sqlite, memory, and http
    (against a live in-process served store, so the number includes
    the real network hop) — with p50/p90/p99 nanoseconds per operation
    recorded per backend (diskcache-style percentile reporting: a
    cache's tail latency is what callers actually feel).  The
    acceptance floor for the sqlite engine is sub-millisecond median
    get and put.
``cluster_roundtrip``
    Put/get latency through a live 3-node/R=2 ``cluster://`` fabric
    (three in-process served stores, loopback TCP), plus a
    **degraded-mode read** pass: one node's service is closed and a
    fresh client — no pooled connections to hide behind — re-reads the
    corpus, so ``degraded_get`` prices real failover (connection
    refused, then the circuit breaker sidelining the dead node) rather
    than a warm keep-alive fiction.  p50/p90/p99 nanoseconds per
    operation for ``put``, ``get``, and ``degraded_get``.
``warm_sweep_grid``
    The shared-state derivation of a 3-policy × 2-load sweep grid —
    per cell: workload objects, the three-instance isolated baseline,
    and the three replay streams, via a fresh ``MixRunner`` exactly as
    ``execute_spec`` builds one per spec — timed with the
    content-addressed artifact cache (:mod:`repro.runtime.artifacts`)
    warm across the grid versus disabled.  The joint replay is excluded
    from both arms (it differs per policy, so no artifact can share
    it; ``joint_replay_grid`` tracks its batching).  Records the ratio
    as ``speedup`` (the PR-5 acceptance floor is ≥2×) after asserting
    the two passes produced identical baselines.  The sweep-layer
    kernel.
``joint_replay_grid``
    The joint six-app replays of a 4-policy × 2-load sweep grid, run
    batched — every policy cell of one mix through a single
    :meth:`~repro.sim.mix_runner.MixRunner.run_mix_group` replay group
    sharing one :class:`~repro.sim.grid_replay.GroupShared` context —
    versus the scalar per-cell ``run_mix`` loop, the kept oracle.  The
    two grids are asserted result-for-result identical (every
    ``MixResult`` field) before either time is recorded; the PR-7
    acceptance floor for the recorded ``speedup`` is ≥2×.
``lockstep_replay``
    The joint six-app replays of one mix's eight-cell fixed-allocation
    sensitivity sweep (LC partitions at 0.25×–2× the working-set
    target), run through the lockstep SoA engine
    (:mod:`repro.sim.lockstep`) — all cells advanced together over the
    group's shared arrival/work arrays — versus the PR-7 grouped
    per-cell event loop (``run_mix_group(..., lockstep=False)``), the
    kept scalar path.  The two grids are asserted result-for-result
    identical before either time is recorded; the PR-10 acceptance
    floor for the recorded ``speedup`` is ≥2×.  Where
    ``joint_replay_grid`` prices what *grouping* saves over per-cell
    ``run_mix``, this kernel prices what *lockstep execution* saves
    over the grouped loop — the two ratios compose.
``stream_synthesis``
    Bulk (arrivals, works) request-stream synthesis across all five LC
    work distributions through the batched
    :meth:`~repro.workloads.service_time.WorkDistribution.sample_many`
    path — *and* through the kept scalar oracle
    (:func:`repro.workloads.reference.sample_stream`), verified
    draw-for-draw identical before either time is recorded.

Timing methodology: each kernel runs ``repeats`` times and records the
**minimum** (the standard microbenchmark estimator — system noise only
ever adds time) alongside every raw sample.  ``--quick`` shrinks the
workloads for CI smoke jobs; the schema is identical, so
``tools/check_bench.py`` gates schema drift without ever failing on
timing noise.

Usage::

    python -m repro bench                 # full kernels, BENCH_<rev>.json
    python -m repro bench --quick         # CI-sized workloads
    python -m repro bench --out my.json   # explicit destination
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ._version import __version__

__all__ = [
    "BENCH_SCHEMA",
    "BENCH_SCHEMA_V1",
    "BENCH_SCHEMA_V2",
    "BENCH_SCHEMA_V3",
    "BENCH_SCHEMA_V4",
    "BENCH_SCHEMA_V5",
    "BENCH_SCHEMA_V6",
    "KERNEL_NAMES",
    "LEGACY_KERNEL_NAMES",
    "V2_KERNEL_NAMES",
    "V3_KERNEL_NAMES",
    "V5_KERNEL_NAMES",
    "V6_KERNEL_NAMES",
    "SPEEDUP_FLOORS",
    "STORE_BACKEND_NAMES",
    "V4_STORE_BACKEND_NAMES",
    "run_bench",
    "write_bench",
    "default_bench_path",
    "validate_bench",
    "compare_bench",
    "format_compare",
    "bench_revision",
]

#: Schema identifier stamped into every document; bump only when the
#: document layout changes (CI fails on drift against this module).
BENCH_SCHEMA = "repro-bench/7"

#: The previous generation: nine kernels — everything but the
#: ``lockstep_replay`` kernel, which joined in generation 7.
#: Committed trajectory documents written under it stay valid forever.
BENCH_SCHEMA_V6 = "repro-bench/6"

#: The generation before that: eight kernels — everything in v6 but
#: the ``cluster_roundtrip`` fabric kernel.
BENCH_SCHEMA_V5 = "repro-bench/5"

#: The generation before that: same eight kernels as v5, but its
#: per-backend store kernel predates the http engine (three backends,
#: not four).
BENCH_SCHEMA_V4 = "repro-bench/4"

#: The generation before that: seven kernels, no grouped-replay kernel.
BENCH_SCHEMA_V3 = "repro-bench/3"

#: The second generation: six kernels, no per-backend store kernel.
BENCH_SCHEMA_V2 = "repro-bench/2"

#: The first generation: four kernels, no sweep-level entries.
BENCH_SCHEMA_V1 = "repro-bench/1"

#: The canonical kernels, in reporting order.
KERNEL_NAMES = (
    "mix_run",
    "isolated_baseline",
    "trace_replay",
    "store_roundtrip",
    "warm_sweep_grid",
    "stream_synthesis",
    "store_backend_roundtrip",
    "joint_replay_grid",
    "cluster_roundtrip",
    "lockstep_replay",
)

#: The kernel set of generation-1 documents (``BENCH_pr4.json``).
LEGACY_KERNEL_NAMES = KERNEL_NAMES[:4]

#: The kernel set of generation-2 documents (``BENCH_pr5.json``).
V2_KERNEL_NAMES = KERNEL_NAMES[:6]

#: The kernel set of generation-3 documents (``BENCH_pr6.json``).
V3_KERNEL_NAMES = KERNEL_NAMES[:7]

#: The kernel set of generation-4/5 documents (``BENCH_pr7/pr8.json``).
V5_KERNEL_NAMES = KERNEL_NAMES[:8]

#: The kernel set of generation-6 documents (``BENCH_pr9.json``).
V6_KERNEL_NAMES = KERNEL_NAMES[:9]

#: Storage engines the per-backend kernel times, in reporting order.
STORE_BACKEND_NAMES = ("directory", "sqlite", "memory", "http")

#: The backend set of generation-3/4 documents (pre-http engine).
V4_STORE_BACKEND_NAMES = ("directory", "sqlite", "memory")

#: Kernels that time an in-file baseline alongside the optimized path
#: and must record the comparison (see :func:`validate_bench`).
_COMPARED_KERNELS = (
    "trace_replay",
    "warm_sweep_grid",
    "stream_synthesis",
    "joint_replay_grid",
    "lockstep_replay",
)

#: Committed acceptance floors for recorded ``speedup`` ratios — the
#: PR that landed each optimization pinned its floor here, and
#: :func:`compare_bench` reports floor status against this table.
SPEEDUP_FLOORS = {
    "warm_sweep_grid": 2.0,
    "joint_replay_grid": 2.0,
    "lockstep_replay": 2.0,
}

#: Per-kernel keys every document must carry (see :func:`validate_bench`).
_KERNEL_KEYS = ("seconds", "runs", "units", "unit", "ns_per_unit")


def _kernel_names_for_schema(schema: Any) -> Tuple[str, ...]:
    """The kernel set a document of generation ``schema`` must carry."""
    if schema == BENCH_SCHEMA_V1:
        return LEGACY_KERNEL_NAMES
    if schema == BENCH_SCHEMA_V2:
        return V2_KERNEL_NAMES
    if schema == BENCH_SCHEMA_V3:
        return V3_KERNEL_NAMES
    if schema in (BENCH_SCHEMA_V4, BENCH_SCHEMA_V5):
        return V5_KERNEL_NAMES
    if schema == BENCH_SCHEMA_V6:
        return V6_KERNEL_NAMES
    return KERNEL_NAMES


def bench_revision() -> str:
    """The revision label stamped into the document and its filename.

    ``REPRO_BENCH_REVISION`` overrides (useful when benchmarking a tree
    whose commit does not exist yet, e.g. the PR that lands the file);
    otherwise the short git revision, else the package version.
    """
    import os

    override = os.environ.get("REPRO_BENCH_REVISION", "").strip()
    if override:
        return override
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        return out.stdout.strip() or f"v{__version__}"
    except Exception:
        return f"v{__version__}"


def _time_repeats(fn: Callable[[], Any], repeats: int) -> List[float]:
    """Wall-clock samples of ``fn`` (one warm call is *not* added: every
    kernel builds its own fresh state, so all samples are cold runs)."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return samples


def _kernel_entry(samples: List[float], units: int, unit: str, **extra: Any) -> Dict[str, Any]:
    """One kernel's schema-stable document entry."""
    best = min(samples)
    entry: Dict[str, Any] = {
        "seconds": best,
        "runs": samples,
        "units": units,
        "unit": unit,
        "ns_per_unit": best / units * 1e9,
    }
    entry.update(extra)
    return entry


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------
def _bench_mix_run(requests: int, repeats: int) -> Dict[str, Any]:
    """Cold (mix, policy) evaluation: baselines + joint Ubik replay.

    The artifact cache is cleared at the start of every repeat: each
    sample measures a genuinely cold process evaluating one cell
    (including the honest intra-cell stream reuse a cold process
    gets), never a later repeat served from warm grid state — which
    keeps the number comparable across the revisions in the committed
    trajectory.
    """
    from .runtime.artifacts import get_artifacts
    from .runtime.spec import MixRef, PolicySpec, RunSpec
    from .runtime.work import execute_spec

    spec = RunSpec(
        mix=MixRef(lc_name="masstree", load=0.2, combo="nft"),
        policy=PolicySpec.of("ubik", slack=0.05),
        requests=requests,
    )

    def run() -> None:
        get_artifacts().clear()
        execute_spec(spec, None)

    samples = _time_repeats(run, repeats)
    get_artifacts().clear()
    return _kernel_entry(samples, units=requests, unit="requests")


def _bench_isolated_baseline(requests: int, repeats: int) -> Dict[str, Any]:
    """One LC instance alone at its target partition (the shard unit).

    Artifact-cold per repeat, like ``mix_run``: the sample is the
    shard-unit cost a worker pays the first time, not a warm replay.
    """
    from .runtime.artifacts import get_artifacts
    from .sim.mix_runner import MixRunner
    from .workloads.latency_critical import make_lc_workload

    workload = make_lc_workload("masstree")

    def run() -> None:
        get_artifacts().clear()
        MixRunner(requests=requests, seed=2014).baseline_instance(
            workload, 0.2, 0
        )

    samples = _time_repeats(run, repeats)
    get_artifacts().clear()
    return _kernel_entry(samples, units=requests, unit="requests")


def _trace_stream(accesses: int, seed: int = 7) -> np.ndarray:
    """The replay kernel's Zipf-over-100k-lines address stream."""
    rng = np.random.default_rng(seed)
    return (rng.zipf(1.3, size=accesses) % 100_000).astype(np.int64)


def _bench_trace_replay(
    accesses: int, repeats: int, num_lines: int = 16384, ways: int = 16
) -> Dict[str, Any]:
    """Batched replay vs the kept naive reference, verified identical."""
    from .cache.reference import NaiveSetAssociativeCache
    from .cache.set_assoc import SetAssociativeCache

    addrs = _trace_stream(accesses)
    addr_list = addrs.tolist()

    # Verify once, outside the timed region: the optimized replay must
    # be access-for-access identical to the reference before its time
    # means anything.
    optimized = SetAssociativeCache(num_lines, ways)
    hit_mask = optimized.access_many(addrs)
    naive = NaiveSetAssociativeCache(num_lines, ways)
    naive_hits = [naive.access(addr).hit for addr in addr_list]
    if hit_mask.tolist() != naive_hits or (optimized.hits, optimized.misses) != (
        naive.hits,
        naive.misses,
    ):  # pragma: no cover - would mean a real regression
        raise RuntimeError("optimized trace replay diverged from the reference")

    samples = _time_repeats(
        lambda: SetAssociativeCache(num_lines, ways).access_many(addrs), repeats
    )

    def run_naive() -> None:
        cache = NaiveSetAssociativeCache(num_lines, ways)
        access = cache.access
        for addr in addr_list:
            access(addr)

    naive_samples = _time_repeats(run_naive, repeats)
    best, naive_best = min(samples), min(naive_samples)
    return _kernel_entry(
        samples,
        units=accesses,
        unit="accesses",
        baseline_seconds=naive_best,
        baseline_runs=naive_samples,
        speedup=naive_best / best,
        verified_identical=True,
    )


def _bench_warm_sweep_grid(requests: int, repeats: int) -> Dict[str, Any]:
    """Per-cell shared-state derivation of a 3-policy × 2-load grid.

    Scope, precisely: each of the six cells performs the state
    derivation :meth:`~repro.sim.mix_runner.MixRunner.run_mix` does
    before its joint replay — rebuild the mix's workload objects, run
    the three-instance isolated baseline, and synthesize the three
    replay streams — through a *fresh* :class:`MixRunner` per cell,
    exactly as :func:`~repro.runtime.work.execute_spec` builds one per
    spec.  This state depends only on (lc, load), so it is identical
    across the policy axis: with the artifact cache warm over the grid,
    each load's baseline and streams are derived once; with the cache
    disabled, every cell re-derives everything, which is what the
    pre-artifact-cache sweep did.

    The joint six-app replay is deliberately **excluded from both
    arms**: it differs per policy, so no *artifact* can legitimately
    share it between cells — the sharing it does admit is the
    replay-group kind (group-constant sub-computations memoized across
    cells while every cell still walks its own decisions), which the
    ``joint_replay_grid`` kernel tracks, and its cold cost is tracked
    by ``mix_run``.  The recorded ``speedup`` therefore measures
    exactly the redundancy the artifact layer removes from a sweep, not
    a ratio diluted (or inflated) by replay time.
    """
    from .runtime.artifacts import get_artifacts
    from .runtime.spec import MixRef
    from .sim.mix_runner import LC_INSTANCES, MixRunner

    #: The policy axis contributes only multiplicity — the derived
    #: state is policy-independent, which is the entire point.
    policy_count = 3
    refs = [
        MixRef(lc_name="masstree", load=load, combo="nft")
        for load in (0.2, 0.6)
    ]
    artifacts = get_artifacts()

    def derive_cell(ref: "MixRef") -> Any:
        mix = ref.build()
        runner = MixRunner(requests=requests, seed=2014)
        baseline = runner.baseline(mix.lc_workload, mix.load)
        for instance in range(LC_INSTANCES):
            runner.stream(mix.lc_workload, mix.load, instance)
        return baseline

    def run_warm() -> List[Any]:
        # Pinned on (environment ignored): the warm arm must measure
        # the cache even under REPRO_ARTIFACTS=0, or the recorded
        # "speedup" would silently be a cache-off/cache-off ratio.
        with artifacts.pinned(True):
            artifacts.clear()
            return [
                derive_cell(ref) for ref in refs for _ in range(policy_count)
            ]

    def run_cold() -> List[Any]:
        with artifacts.disabled():
            return [
                derive_cell(ref) for ref in refs for _ in range(policy_count)
            ]

    # Verify once, outside the timed region: the cached grid must be
    # baseline-for-baseline identical to the uncached one before the
    # speedup means anything.
    if run_warm() != run_cold():  # pragma: no cover - a real regression
        raise RuntimeError("artifact-cached sweep state diverged from cache-off")

    samples = _time_repeats(run_warm, repeats)
    cold_samples = _time_repeats(run_cold, repeats)
    artifacts.clear()  # leave no grid-sized pools behind in the process
    best, cold_best = min(samples), min(cold_samples)
    return _kernel_entry(
        samples,
        units=len(refs) * policy_count,
        unit="cells",
        baseline_seconds=cold_best,
        baseline_runs=cold_samples,
        speedup=cold_best / best,
        verified_identical=True,
    )


def _mix_results_identical(grouped: Any, per_cell: Any) -> bool:
    """Whether a grouped cell's result equals the per-cell oracle's.

    :class:`~repro.sim.results.MixResult` and its nested instance and
    batch-app results are plain dataclasses over python scalars and
    lists, so field-for-field equality *is* bit-identity.  Kept as a
    module-level seam so the bench tests can force a divergence and
    assert the kernel refuses to time it.
    """
    return grouped == per_cell


def _bench_joint_replay_grid(requests: int, repeats: int) -> Dict[str, Any]:
    """Batched joint replays of a 4-policy × 2-load grid vs per-cell.

    Scope, precisely: the **replay phase only**.  One warm
    :class:`~repro.sim.mix_runner.MixRunner` (baselines and streams
    derived outside the timed region, artifact cache pinned on) replays
    each of the two (masstree, load) mixes under four partitioned
    policies — ubik, ucp, on/off, and static-LC, the cells whose
    replays a sweep grid actually repeats.  The batched arm runs each
    mix's four cells through one
    :meth:`~repro.sim.mix_runner.MixRunner.run_mix_group` call (one
    :class:`~repro.sim.grid_replay.GroupShared` per mix, exactly as
    :func:`~repro.runtime.work.execute_specs` groups a sweep); the
    baseline arm runs the same cells through the scalar per-cell
    :meth:`~repro.sim.mix_runner.MixRunner.run_mix` loop — the kept
    oracle, which is also what ``REPRO_GRID_REPLAY=0`` restores.

    Verified before timing: the two grids must be result-for-result
    identical under :func:`_mix_results_identical` (every latency,
    counter, and batch-app field), else the kernel raises instead of
    recording a meaningless ratio.  Policies are rebuilt per cell per
    pass — they are stateful controllers — so neither arm ever replays
    through a policy the other pass warmed.
    """
    from .runtime.artifacts import get_artifacts
    from .runtime.spec import MixRef, PolicySpec
    from .sim.mix_runner import MixRunner

    policy_specs = (
        PolicySpec.of("ubik", slack=0.05),
        PolicySpec.of("ucp"),
        PolicySpec.of("onoff"),
        PolicySpec.of("static_lc"),
    )
    refs = [
        MixRef(lc_name="masstree", load=load, combo="nft")
        for load in (0.2, 0.6)
    ]
    artifacts = get_artifacts()
    # Pinned on (environment ignored) so both arms replay over the same
    # warm baselines and streams: the kernel isolates replay cost, and
    # under REPRO_ARTIFACTS=0 each run_mix would otherwise re-derive
    # its streams inside the timed region and drown it.
    with artifacts.pinned(True):
        artifacts.clear()
        runner = MixRunner(requests=requests, seed=2014)
        mixes = [ref.build() for ref in refs]
        for mix in mixes:  # baselines + streams outside the timed region
            runner.baseline(mix.lc_workload, mix.load)

        def run_per_cell() -> List[Any]:
            return [
                runner.run_mix(mix, policy.build(), scheme=None)
                for mix in mixes
                for policy in policy_specs
            ]

        def run_grouped() -> List[Any]:
            # Pinned to the grouped per-cell loop: this kernel tracks
            # what *grouping* saves over scalar run_mix.  The lockstep
            # engine (on by default) is priced separately by the
            # ``lockstep_replay`` kernel, so letting it leak in here
            # would silently conflate the two trajectories.
            grid: List[Any] = []
            for mix in mixes:
                grid.extend(
                    runner.run_mix_group(
                        mix,
                        [(policy.build(), None) for policy in policy_specs],
                        lockstep=False,
                    )
                )
            return grid

        # Verify once, outside the timed region: every grouped cell
        # must match the per-cell oracle before the speedup means
        # anything.
        for grouped, per_cell in zip(run_grouped(), run_per_cell()):
            if not _mix_results_identical(grouped, per_cell):
                raise RuntimeError(
                    "grouped joint replay diverged from the per-cell oracle"
                )

        samples = _time_repeats(run_grouped, repeats)
        per_cell_samples = _time_repeats(run_per_cell, repeats)
    artifacts.clear()  # leave no grid-sized pools behind in the process
    best, per_cell_best = min(samples), min(per_cell_samples)
    return _kernel_entry(
        samples,
        units=len(refs) * len(policy_specs),
        unit="cells",
        baseline_seconds=per_cell_best,
        baseline_runs=per_cell_samples,
        speedup=per_cell_best / best,
        verified_identical=True,
    )


def _bench_lockstep_replay(requests: int, repeats: int) -> Dict[str, Any]:
    """Lockstep SoA replay of a fixed-allocation sweep vs the grouped loop.

    Scope, precisely: the **replay phase only**, like
    ``joint_replay_grid`` — but the axis here is the *engine*, not the
    grouping.  One warm :class:`~repro.sim.mix_runner.MixRunner`
    (baseline and streams derived outside the timed region, artifact
    cache pinned on) replays one (masstree, load 0.9) mix under eight
    :class:`~repro.policies.fixed.FixedPolicy` cells sweeping the LC
    partition from 0.25× to 2× the workload's working-set target — the
    allocation-sensitivity sweep the paper's motivating figures walk,
    and a grid whose per-cell cost is the event loop itself rather
    than policy work both engines would pay identically.  The lockstep
    arm runs the eight cells through
    :meth:`~repro.sim.mix_runner.MixRunner.run_mix_group` with
    ``lockstep=True`` (all cells advanced together over the group's
    shared arrival/work arrays); the baseline arm runs the same cells
    with ``lockstep=False`` — the PR-7 grouped per-cell loop, which is
    also what ``REPRO_LOCKSTEP=0`` restores.

    The policies carry explicit per-app target dicts, which are not
    expressible as a :class:`~repro.runtime.spec.PolicySpec` (spec
    kwargs must be JSON scalars), so the cells are constructed
    directly; ``FixedPolicy`` does no interval work, keeping the
    measured ratio an event-loop number.

    Verified before timing: the two grids must be result-for-result
    identical under :func:`_mix_results_identical`, else the kernel
    raises instead of recording a meaningless ratio.  Cells are rebuilt
    per pass — policies are stateful controllers.  The PR-10
    acceptance floor for the recorded ``speedup`` is ≥2×.
    """
    from .policies.fixed import FixedPolicy
    from .runtime.artifacts import get_artifacts
    from .runtime.spec import MixRef
    from .sim.config import CMPConfig
    from .sim.mix_runner import MixRunner

    lc_fractions = (0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0)
    ref = MixRef(lc_name="masstree", load=0.9, combo="nnn")
    artifacts = get_artifacts()
    with artifacts.pinned(True):
        artifacts.clear()
        runner = MixRunner(requests=requests, seed=2014)
        mix = ref.build()
        runner.baseline(mix.lc_workload, mix.load)  # outside the timing
        llc_lines = CMPConfig().llc_lines
        target_lines = mix.lc_workload.target_lines

        def build_cells() -> List[Any]:
            cells: List[Any] = []
            for fraction in lc_fractions:
                lc_lines = fraction * target_lines
                batch_lines = max(0.0, llc_lines - 3 * lc_lines) / 3.0
                policy = FixedPolicy(
                    targets={
                        0: lc_lines,
                        1: lc_lines,
                        2: lc_lines,
                        3: batch_lines,
                        4: batch_lines,
                        5: batch_lines,
                    }
                )
                cells.append((policy, None))
            return cells

        def run_lockstep() -> List[Any]:
            return runner.run_mix_group(mix, build_cells(), lockstep=True)

        def run_grouped() -> List[Any]:
            return runner.run_mix_group(mix, build_cells(), lockstep=False)

        # Verify once, outside the timed region: every lockstep cell
        # must match the grouped loop (itself verified against scalar
        # run_mix by joint_replay_grid and the equivalence tests)
        # before the speedup means anything.
        for lockstep_cell, grouped_cell in zip(run_lockstep(), run_grouped()):
            if not _mix_results_identical(lockstep_cell, grouped_cell):
                raise RuntimeError(
                    "lockstep replay diverged from the grouped event loop"
                )

        samples = _time_repeats(run_lockstep, repeats)
        grouped_samples = _time_repeats(run_grouped, repeats)
    artifacts.clear()  # leave no grid-sized pools behind in the process
    best, grouped_best = min(samples), min(grouped_samples)
    return _kernel_entry(
        samples,
        units=len(lc_fractions),
        unit="cells",
        baseline_seconds=grouped_best,
        baseline_runs=grouped_samples,
        speedup=grouped_best / best,
        verified_identical=True,
    )


def _bench_stream_synthesis(samples_per_workload: int, repeats: int) -> Dict[str, Any]:
    """Bulk work sampling: batched ``sample_many`` vs the scalar oracle.

    Covers all five LC work distributions — truncated-normal, lognormal,
    and both bimodal mixtures — so the recorded ``speedup`` reflects the
    real per-app mix of fully vectorized draws and the mixture's
    tightened exact-stream loop.
    """
    from .workloads.latency_critical import all_lc_workloads
    from .workloads.reference import sample_stream

    works = [w.work for w in all_lc_workloads().values()]

    def rng_for(index: int) -> np.random.Generator:
        return np.random.default_rng((2014, index))

    # Verify once, outside the timed region: batched draws must equal
    # the scalar oracle's *and* leave the generator in the same state.
    for index, work in enumerate(works):
        batched_rng, scalar_rng = rng_for(index), rng_for(index)
        batched = work.sample_many(batched_rng, samples_per_workload)
        scalar = sample_stream(work, scalar_rng, samples_per_workload)
        if not np.array_equal(batched, scalar) or batched_rng.random() != (
            scalar_rng.random()
        ):  # pragma: no cover - would mean a real regression
            raise RuntimeError("batched stream synthesis diverged from the oracle")

    def run_batched() -> None:
        for index, work in enumerate(works):
            work.sample_many(rng_for(index), samples_per_workload)

    def run_scalar() -> None:
        for index, work in enumerate(works):
            sample_stream(work, rng_for(index), samples_per_workload)

    samples = _time_repeats(run_batched, repeats)
    scalar_samples = _time_repeats(run_scalar, repeats)
    best, scalar_best = min(samples), min(scalar_samples)
    return _kernel_entry(
        samples,
        units=len(works) * samples_per_workload,
        unit="samples",
        baseline_seconds=scalar_best,
        baseline_runs=scalar_samples,
        speedup=scalar_best / best,
        verified_identical=True,
    )


def _bench_store_roundtrip(documents: int, repeats: int) -> Dict[str, Any]:
    """Write + cold re-read of result documents on a temp directory."""
    from .runtime.store import ResultStore

    payload = {
        "kind": "bench",
        "result": {"metric": 1.0, "values": list(range(32))},
    }

    def run() -> None:
        with tempfile.TemporaryDirectory() as root:
            writer = ResultStore(root)
            for index in range(documents):
                writer.put(f"{index:064x}", dict(payload))
            reader = ResultStore(root)  # fresh memory layer: disk reads
            for index in range(documents):
                if reader.get(f"{index:064x}") is None:
                    raise RuntimeError("store round-trip lost a document")

    samples = _time_repeats(run, repeats)
    return _kernel_entry(samples, units=documents, unit="documents")


def _percentiles_ns(op_times_ns: List[int]) -> Dict[str, float]:
    """p50/p90/p99 (and the mean) of per-operation nanosecond timings."""
    arr = np.asarray(op_times_ns, dtype=np.float64)
    return {
        "p50_ns": float(np.percentile(arr, 50)),
        "p90_ns": float(np.percentile(arr, 90)),
        "p99_ns": float(np.percentile(arr, 99)),
        "mean_ns": float(arr.mean()),
    }


def _bench_store_backend_roundtrip(documents: int, repeats: int) -> Dict[str, Any]:
    """Per-operation put/get latency across every storage engine.

    For each backend, every repeat writes ``documents`` fresh documents
    through the :class:`~repro.runtime.store.ResultStore` façade and
    cold-reads them back through a second handle (fresh memory layer,
    so persistent engines hit their media), timing each operation
    individually.  Per-op samples accumulate across repeats into
    p50/p90/p99 per backend per operation — percentile reporting in
    the python-diskcache tradition, because a store's *tail* is what a
    worker pool's stragglers feel, and a min-of-repeats total would
    hide it.  Connection setup (sqlite's open + schema check, the http
    client's first TCP connect) is paid outside the timed region via
    one warm-up miss, matching how the runtime holds one handle per
    process.  The http engine's numbers come from a live in-process
    served store (sqlite-backed, loopback TCP), so they price the real
    network hop: serialization, the wire, and the served engine behind
    it.
    """
    import threading

    from .runtime.backends import serve_store
    from .runtime.store import ResultStore

    payload = {
        "kind": "bench",
        "result": {"metric": 1.0, "values": list(range(32))},
    }
    fingerprints = [f"{index:064x}" for index in range(documents)]
    op_times: Dict[str, Dict[str, List[int]]] = {
        name: {"put": [], "get": []} for name in STORE_BACKEND_NAMES
    }
    samples: List[float] = []
    for _ in range(repeats):
        with tempfile.TemporaryDirectory() as root:
            server = serve_store(f"sqlite://{root}/served.db")
            server_thread = threading.Thread(
                target=server.serve_forever, daemon=True
            )
            server_thread.start()
            targets = {
                "directory": str(Path(root) / "tree"),
                "sqlite": f"sqlite://{root}/store.db",
                "memory": None,
                "http": server.url,
            }
            repeat_started = time.perf_counter()
            try:
                for name in STORE_BACKEND_NAMES:
                    writer = ResultStore(targets[name])
                    writer.get("f" * 64)  # open handles outside the timing
                    puts = op_times[name]["put"]
                    for fingerprint in fingerprints:
                        doc = dict(payload)
                        started = time.perf_counter_ns()
                        writer.put(fingerprint, doc)
                        puts.append(time.perf_counter_ns() - started)
                    # A second handle's memory layer is empty, so gets
                    # hit the engine.  The memory engine has no second
                    # handle (a fresh ``memory://`` is empty): share
                    # the backend, drop the façade's parsed layer.
                    reader = ResultStore(
                        writer.backend if name == "memory" else targets[name]
                    )
                    reader.get("f" * 64)
                    gets = op_times[name]["get"]
                    for fingerprint in fingerprints:
                        started = time.perf_counter_ns()
                        if reader.get(fingerprint) is None:
                            raise RuntimeError(
                                f"{name} backend lost a document mid-bench"
                            )
                        gets.append(time.perf_counter_ns() - started)
                    writer.close()
                    reader.close()
                samples.append(time.perf_counter() - repeat_started)
            finally:
                server.shutdown()
                server.server_close()
                server_thread.join(timeout=10)
    backends = {
        name: {
            "put": _percentiles_ns(op_times[name]["put"]),
            "get": _percentiles_ns(op_times[name]["get"]),
        }
        for name in STORE_BACKEND_NAMES
    }
    return _kernel_entry(
        samples,
        units=documents * len(STORE_BACKEND_NAMES),
        unit="round-trips",
        backends=backends,
    )


def _bench_cluster_roundtrip(
    documents: int, repeats: int, nodes: int = 3, replicas: int = 2
) -> Dict[str, Any]:
    """Fabric put/get plus the degraded read after a node dies.

    Every repeat serves ``nodes`` fresh in-process stores (memory
    engines over loopback TCP), opens a ``cluster://`` fabric with
    replication ``replicas`` over them, and times each façade put and
    cold get individually — each put is ``replicas`` wire writes, so
    this prices what replication actually costs over the single-node
    ``http`` row of ``store_backend_roundtrip``.

    Then node 0's service is closed and the corpus is re-read through a
    **fresh** fabric client: a fresh client holds no pooled keep-alive
    connections, so reads whose preferred replica died pay the real
    failover (connection refused, retry, the next replica) until the
    circuit breaker sidelines the dead node — the ``degraded_get``
    percentiles are the tail a sweep feels while a node is down.
    """
    import threading

    from .runtime.backends import serve_store
    from .runtime.backends.cluster import ClusterBackend
    from .runtime.store import ResultStore

    payload = {
        "kind": "bench",
        "result": {"metric": 1.0, "values": list(range(32))},
    }
    fingerprints = [f"{index:064x}" for index in range(documents)]
    client_options = {"timeout": 10.0, "retries": 2, "backoff": 0.002}
    op_times: Dict[str, List[int]] = {"put": [], "get": [], "degraded_get": []}
    samples: List[float] = []
    for _ in range(repeats):
        servers = []
        threads = []
        for _node in range(nodes):
            server = serve_store("memory://")
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            servers.append(server)
            threads.append(thread)
        spec = f"replicas={replicas};" + ";".join(s.url for s in servers)
        repeat_started = time.perf_counter()
        try:
            writer = ResultStore(
                ClusterBackend(spec, client_options=client_options)
            )
            writer.get("f" * 64)  # open handles outside the timing
            for fingerprint in fingerprints:
                doc = dict(payload)
                started = time.perf_counter_ns()
                writer.put(fingerprint, doc)
                op_times["put"].append(time.perf_counter_ns() - started)
            reader = ResultStore(
                ClusterBackend(spec, client_options=client_options)
            )
            reader.get("f" * 64)
            for fingerprint in fingerprints:
                started = time.perf_counter_ns()
                if reader.get(fingerprint) is None:
                    raise RuntimeError("cluster fabric lost a document mid-bench")
                op_times["get"].append(time.perf_counter_ns() - started)
            # Kill node 0 for real (its listening socket closes) and
            # read through a fresh client so no pooled connection can
            # keep talking to the corpse.
            servers[0].shutdown()
            servers[0].server_close()
            threads[0].join(timeout=10)
            degraded = ResultStore(
                ClusterBackend(
                    spec, probe_base=0.05, client_options=client_options
                )
            )
            for fingerprint in fingerprints:
                started = time.perf_counter_ns()
                if degraded.get(fingerprint) is None:
                    raise RuntimeError(
                        "cluster fabric lost a document after node death"
                    )
                op_times["degraded_get"].append(
                    time.perf_counter_ns() - started
                )
            samples.append(time.perf_counter() - repeat_started)
            writer.close()
            reader.close()
            degraded.close()
        finally:
            for server, thread in zip(servers[1:], threads[1:]):
                server.shutdown()
                server.server_close()
                thread.join(timeout=10)
    return _kernel_entry(
        samples,
        units=documents * 3,  # put + get + degraded get per document
        unit="round-trips",
        nodes=nodes,
        replicas=replicas,
        put=_percentiles_ns(op_times["put"]),
        get=_percentiles_ns(op_times["get"]),
        degraded_get=_percentiles_ns(op_times["degraded_get"]),
    )


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run_bench(quick: bool = False, repeats: Optional[int] = None) -> Dict[str, Any]:
    """Run every kernel and return the schema-stable document."""
    repeats = repeats if repeats is not None else (2 if quick else 3)
    if repeats < 1:
        raise ValueError("repeats must be positive")
    accesses = 100_000 if quick else 1_000_000
    requests = 30 if quick else 60
    #: The lockstep kernel pins a longer replay (the PR-10 floor was
    #: committed at 240 requests): its ratio is an event-loop number,
    #: and too-short replays drown it in per-group setup.  It also
    #: takes extra repeats — both arms are sub-second, so best-of
    #: needs more samples to shed scheduler noise than the
    #: multi-second kernels do.
    lockstep_requests = 60 if quick else 240
    lockstep_repeats = max(repeats, 5)
    documents = 50 if quick else 200
    stream_samples = 10_000 if quick else 100_000
    kernels = {
        "mix_run": _bench_mix_run(requests, repeats),
        "isolated_baseline": _bench_isolated_baseline(requests, repeats),
        "trace_replay": _bench_trace_replay(accesses, repeats),
        "store_roundtrip": _bench_store_roundtrip(documents, repeats),
        "warm_sweep_grid": _bench_warm_sweep_grid(requests, repeats),
        "stream_synthesis": _bench_stream_synthesis(stream_samples, repeats),
        "store_backend_roundtrip": _bench_store_backend_roundtrip(
            documents, repeats
        ),
        "joint_replay_grid": _bench_joint_replay_grid(requests, repeats),
        "cluster_roundtrip": _bench_cluster_roundtrip(documents, repeats),
        "lockstep_replay": _bench_lockstep_replay(
            lockstep_requests, lockstep_repeats
        ),
    }
    return {
        "schema": BENCH_SCHEMA,
        "revision": bench_revision(),
        "quick": quick,
        "repeats": repeats,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "repro_version": __version__,
        "platform": platform.platform(),
        "kernels": kernels,
    }


def default_bench_path(revision: str) -> Path:
    """``<repo root>/benchmarks/perf/BENCH_<rev>.json`` inside a
    checkout (whatever the current directory), else the current
    directory (running from an installed package)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        perf_dir = Path(out.stdout.strip()) / "benchmarks" / "perf"
    except Exception:
        perf_dir = Path("benchmarks") / "perf"
    base = perf_dir if perf_dir.is_dir() else Path(".")
    return base / f"BENCH_{revision}.json"


def write_bench(payload: Dict[str, Any], out: Optional[Path] = None) -> Path:
    """Write a bench document (pretty JSON, trailing newline)."""
    path = Path(out) if out is not None else default_bench_path(payload["revision"])
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def validate_bench(payload: Any) -> List[str]:
    """Schema-drift check: the list of problems (empty = valid).

    Validates structure and types only — never timing values — so CI
    can gate on drift without flaking on machine noise.  Used by
    ``tools/check_bench.py`` and the tier-1 bench test.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"document must be an object, got {type(payload).__name__}"]
    schema = payload.get("schema")
    if schema not in (
        BENCH_SCHEMA,
        BENCH_SCHEMA_V6,
        BENCH_SCHEMA_V5,
        BENCH_SCHEMA_V4,
        BENCH_SCHEMA_V3,
        BENCH_SCHEMA_V2,
        BENCH_SCHEMA_V1,
    ):
        problems.append(
            f"schema must be {BENCH_SCHEMA!r} (or the legacy "
            f"{BENCH_SCHEMA_V6!r} / {BENCH_SCHEMA_V5!r} / "
            f"{BENCH_SCHEMA_V4!r} / {BENCH_SCHEMA_V3!r} / "
            f"{BENCH_SCHEMA_V2!r} / {BENCH_SCHEMA_V1!r}), got {schema!r}"
        )
    # Older documents predate later kernels; each is validated against
    # the kernel set of its own generation so the committed trajectory
    # never rots.
    required_kernels = _kernel_names_for_schema(schema)
    # Likewise for the per-backend store kernel's engine set: the http
    # engine joined in generation 5.
    required_backends = (
        STORE_BACKEND_NAMES
        if schema in (BENCH_SCHEMA, BENCH_SCHEMA_V6, BENCH_SCHEMA_V5)
        else V4_STORE_BACKEND_NAMES
    )
    for key, kinds in (
        ("revision", str),
        ("quick", bool),
        ("repeats", int),
        ("created", str),
        ("python", str),
        ("numpy", str),
        ("repro_version", str),
        ("platform", str),
        ("kernels", dict),
    ):
        if not isinstance(payload.get(key), kinds):
            problems.append(f"missing or mistyped field {key!r}")
    kernels = payload.get("kernels")
    if not isinstance(kernels, dict):
        return problems
    for name in required_kernels:
        entry = kernels.get(name)
        if not isinstance(entry, dict):
            problems.append(f"missing kernel {name!r}")
            continue
        for key in _KERNEL_KEYS:
            if key not in entry:
                problems.append(f"kernel {name!r} missing {key!r}")
        runs = entry.get("runs")
        if not (
            isinstance(runs, list)
            and runs
            and all(isinstance(x, (int, float)) for x in runs)
        ):
            problems.append(f"kernel {name!r} runs must be a non-empty number list")
    for name in _COMPARED_KERNELS:
        if name not in required_kernels:
            continue
        entry = kernels.get(name)
        if not isinstance(entry, dict):
            continue  # already reported as a missing kernel above
        for key in ("baseline_seconds", "baseline_runs", "speedup", "verified_identical"):
            if key not in entry:
                problems.append(f"kernel {name!r} missing {key!r}")
    if "store_backend_roundtrip" in required_kernels:
        entry = kernels.get("store_backend_roundtrip")
        if isinstance(entry, dict):
            backends = entry.get("backends")
            if not isinstance(backends, dict):
                problems.append(
                    "kernel 'store_backend_roundtrip' missing 'backends'"
                )
            else:
                for backend in required_backends:
                    per = backends.get(backend)
                    if not isinstance(per, dict):
                        problems.append(
                            f"store_backend_roundtrip missing backend {backend!r}"
                        )
                        continue
                    for op in ("put", "get"):
                        stats = per.get(op)
                        if not isinstance(stats, dict) or not all(
                            isinstance(stats.get(k), (int, float))
                            for k in ("p50_ns", "p90_ns", "p99_ns")
                        ):
                            problems.append(
                                f"store_backend_roundtrip {backend}.{op} must "
                                "carry p50/p90/p99 nanosecond percentiles"
                            )
    if "cluster_roundtrip" in required_kernels:
        entry = kernels.get("cluster_roundtrip")
        if isinstance(entry, dict):
            for key in ("nodes", "replicas"):
                if not isinstance(entry.get(key), int):
                    problems.append(f"cluster_roundtrip missing {key!r}")
            for op in ("put", "get", "degraded_get"):
                stats = entry.get(op)
                if not isinstance(stats, dict) or not all(
                    isinstance(stats.get(k), (int, float))
                    for k in ("p50_ns", "p90_ns", "p99_ns")
                ):
                    problems.append(
                        f"cluster_roundtrip {op} must carry p50/p90/p99 "
                        "nanosecond percentiles"
                    )
    return problems


def _p50_seconds(entry: Dict[str, Any]) -> float:
    """Median of a kernel entry's raw samples (the comparison
    estimator: less noise-sensitive than min when comparing two
    documents that may have different repeat counts)."""
    runs = sorted(entry["runs"])
    mid = len(runs) // 2
    if len(runs) % 2:
        return float(runs[mid])
    return float((runs[mid - 1] + runs[mid]) / 2.0)


def compare_bench(old: Dict[str, Any], new: Dict[str, Any]) -> Dict[str, Any]:
    """Per-kernel p50 comparison of two validated bench documents.

    Both documents are :func:`validate_bench`-checked first (a
    ``ValueError`` names the offender), then compared over the
    intersection of their generations' kernel sets — a v6 document
    against a v7 one compares the nine shared kernels and reports
    ``lockstep_replay`` under ``only_new`` instead of failing, so the
    committed trajectory stays comparable across schema bumps.

    Per shared kernel: old/new p50 seconds, the ``ratio``
    (new p50 / old p50 — below 1.0 means the new document is faster),
    and for kernels carrying a recorded ``speedup`` the old/new values
    plus floor status against :data:`SPEEDUP_FLOORS` where one is
    committed.  Timing deltas are *reported*, never gated — machine
    noise is the caller's judgment call; only ``floor_met`` reflects a
    committed acceptance floor.
    """
    for label, payload in (("old", old), ("new", new)):
        problems = validate_bench(payload)
        if problems:
            raise ValueError(
                f"{label} document is not a valid bench document: "
                + "; ".join(problems)
            )
    old_names = _kernel_names_for_schema(old["schema"])
    new_names = _kernel_names_for_schema(new["schema"])
    shared = [name for name in KERNEL_NAMES if name in old_names and name in new_names]
    kernels: Dict[str, Any] = {}
    for name in shared:
        old_entry, new_entry = old["kernels"][name], new["kernels"][name]
        old_p50, new_p50 = _p50_seconds(old_entry), _p50_seconds(new_entry)
        row: Dict[str, Any] = {
            "old_p50_seconds": old_p50,
            "new_p50_seconds": new_p50,
            "ratio": new_p50 / old_p50 if old_p50 > 0 else float("inf"),
        }
        if "speedup" in old_entry or "speedup" in new_entry:
            row["old_speedup"] = old_entry.get("speedup")
            row["new_speedup"] = new_entry.get("speedup")
            floor = SPEEDUP_FLOORS.get(name)
            if floor is not None and new_entry.get("speedup") is not None:
                row["floor"] = floor
                row["floor_met"] = bool(new_entry["speedup"] >= floor)
        kernels[name] = row
    return {
        "old_revision": old["revision"],
        "new_revision": new["revision"],
        "old_schema": old["schema"],
        "new_schema": new["schema"],
        "kernels": kernels,
        "only_old": [name for name in old_names if name not in new_names],
        "only_new": [name for name in new_names if name not in old_names],
    }


def format_compare(comparison: Dict[str, Any]) -> str:
    """Human-readable comparison table for ``repro bench --compare``."""
    from .experiments.common import format_table

    rows: List[List[str]] = []
    for name, row in comparison["kernels"].items():
        ratio = row["ratio"]
        delta = f"{ratio:.2f}x" + (
            " faster" if ratio < 1.0 else " slower" if ratio > 1.0 else ""
        )
        floor_note = ""
        if "floor_met" in row:
            floor_note = (
                f"floor {row['floor']:.1f}x "
                + ("met" if row["floor_met"] else "MISSED")
                + f" ({row['new_speedup']:.2f}x)"
            )
        elif row.get("new_speedup") is not None:
            floor_note = f"speedup {row['new_speedup']:.2f}x"
        rows.append(
            [
                name,
                f"{row['old_p50_seconds']:.4f}s",
                f"{row['new_p50_seconds']:.4f}s",
                delta,
                floor_note,
            ]
        )
    title = (
        f"repro bench compare: {comparison['old_revision']}"
        f" ({comparison['old_schema']}) -> {comparison['new_revision']}"
        f" ({comparison['new_schema']})"
    )
    table = format_table(
        ["Kernel", "Old p50", "New p50", "Delta", "Floor"], rows, title=title
    )
    extras = []
    if comparison["only_old"]:
        extras.append("only in old: " + ", ".join(comparison["only_old"]))
    if comparison["only_new"]:
        extras.append("only in new: " + ", ".join(comparison["only_new"]))
    if extras:
        table += "\n" + "\n".join(extras)
    return table


def format_bench(payload: Dict[str, Any]) -> str:
    """Human-readable kernel table for the CLI."""
    from .experiments.common import format_table

    rows: List[List[str]] = []
    for name in _kernel_names_for_schema(payload.get("schema")):
        entry = payload["kernels"][name]
        note = ""
        if "speedup" in entry:
            against = {
                "warm_sweep_grid": "cache-off",
                "joint_replay_grid": "per-cell",
                "lockstep_replay": "grouped",
            }.get(name, "naive")
            note = (
                f"{entry['speedup']:.2f}x vs {against}"
                f" ({entry['baseline_seconds']:.3f}s)"
            )
        elif "backends" in entry:
            sqlite = entry["backends"]["sqlite"]
            note = (
                f"sqlite p50 put {sqlite['put']['p50_ns'] / 1e3:,.0f}us"
                f" / get {sqlite['get']['p50_ns'] / 1e3:,.0f}us"
            )
            if "http" in entry["backends"]:
                http_stats = entry["backends"]["http"]
                note += (
                    f"; http p50 put {http_stats['put']['p50_ns'] / 1e3:,.0f}us"
                    f" / get {http_stats['get']['p50_ns'] / 1e3:,.0f}us"
                )
        elif "degraded_get" in entry:
            note = (
                f"{entry['nodes']} nodes R={entry['replicas']}: p50 put "
                f"{entry['put']['p50_ns'] / 1e3:,.0f}us / get "
                f"{entry['get']['p50_ns'] / 1e3:,.0f}us / degraded get "
                f"{entry['degraded_get']['p50_ns'] / 1e3:,.0f}us"
            )
        rows.append(
            [
                name,
                f"{entry['seconds']:.4f}s",
                f"{entry['units']} {entry['unit']}",
                f"{entry['ns_per_unit']:,.0f}",
                note,
            ]
        )
    title = f"repro bench @ {payload['revision']}" + (
        " (quick)" if payload["quick"] else ""
    )
    return format_table(
        ["Kernel", "Best", "Work", "ns/unit", "Notes"], rows, title=title
    )
