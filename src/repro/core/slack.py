"""The slack controller (paper Section 5.2).

Strict Ubik never lets tail latency exceed the target.  Ubik-with-slack
accepts a configurable tail degradation (e.g. 5%) and converts it into
a **miss slack**: the number of additional misses a request can absorb
while staying within the relaxed target.  The miss slack is adapted by
a proportional feedback controller driven by measured request
latencies, and is then spent by lowering ``s_active`` below the target
size wherever the miss curve is flat enough — freeing space for batch
apps even for applications whose transients make strict downsizing
unattractive (e.g. moses at 2 MB).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..monitor.miss_curve import MissCurve
from ..server.latency import tail_mean

__all__ = ["SlackController"]


class SlackController:
    """Proportional feedback from tail latency to miss slack."""

    def __init__(
        self,
        slack: float,
        target_tail_cycles: float,
        miss_penalty: float,
        gain: float = 0.3,
        tail_smoothing: float = 0.5,
    ):
        if slack < 0:
            raise ValueError("slack must be non-negative")
        if target_tail_cycles <= 0:
            raise ValueError("target tail must be positive")
        if miss_penalty <= 0:
            raise ValueError("miss penalty must be positive")
        if gain <= 0:
            raise ValueError("controller gain must be positive")
        if not 0.0 < tail_smoothing <= 1.0:
            raise ValueError("tail_smoothing must be in (0, 1]")
        self.slack = slack
        self.target_tail_cycles = target_tail_cycles
        self.miss_penalty = miss_penalty
        self.gain = gain
        self.tail_smoothing = tail_smoothing
        # The static budget: extra misses per request whose stall cost
        # equals the slack fraction of the tail target.  Spending it on
        # *every* request lengthens service times, which queueing
        # amplifies superlinearly (the paper's Observation 3), so the
        # ceiling is derated and the controller starts low and adapts
        # within [0, ceiling].
        self._static_budget = slack * target_tail_cycles / miss_penalty
        self._max_miss_slack = 0.6 * self._static_budget
        self.miss_slack = 0.15 * self._static_budget
        self._tail_estimate: float | None = None

    def update(
        self,
        recent_latencies: Sequence[float],
        load_hint: float | None = None,
    ) -> float:
        """Adapt the miss slack from recently observed latencies.

        The allowed tail is ``target * (1 + slack)``; positive error
        (headroom) grows the slack budget, negative error shrinks it.
        Per-interval tails are noisy (few requests land in an interval),
        so the measurement is smoothed before feedback.  ``load_hint``
        (the app's busy fraction) derates the ceiling at high load,
        where queueing amplification is steepest.  Returns the new miss
        slack (misses per request).
        """
        if self.slack == 0:
            self.miss_slack = 0.0
            return 0.0
        if load_hint is not None and 0.0 <= load_hint <= 1.0:
            self._max_miss_slack = (
                0.6 * self._static_budget * max(0.15, 1.0 - load_hint)
            )
        if len(recent_latencies) == 0:
            self.miss_slack = min(self.miss_slack, self._max_miss_slack)
            return self.miss_slack
        sample = tail_mean(recent_latencies)
        if self._tail_estimate is None:
            self._tail_estimate = sample
        else:
            self._tail_estimate += self.tail_smoothing * (
                sample - self._tail_estimate
            )
        allowed = self.target_tail_cycles * (1.0 + self.slack)
        # Normalized proportional step: a 10% tail error moves the
        # budget by gain*10%.  Violations shrink the budget three times
        # faster than headroom grows it — tails are asymmetric risks.
        relative_error = (allowed - self._tail_estimate) / self.target_tail_cycles
        step_gain = self.gain if relative_error > 0 else 3.0 * self.gain
        self.miss_slack += step_gain * relative_error * self._static_budget
        self.miss_slack = float(np.clip(self.miss_slack, 0.0, self._max_miss_slack))
        return self.miss_slack

    def active_size(
        self,
        curve: MissCurve,
        target_lines: float,
        accesses_per_request: float,
        floor_fraction: float = 1.0 / 16.0,
    ) -> float:
        """Smallest ``s_active`` affordable within the miss slack.

        Finds the smallest size whose per-request extra misses versus
        the target stay within budget:
        ``(m(s) - m(target)) * accesses_per_request <= miss_slack``.
        ``floor_fraction`` keeps a minimal allocation (one step of the
        idle-size grid) so the partition never vanishes entirely.
        """
        if target_lines <= 0:
            raise ValueError("target must be positive")
        if self.slack == 0 or self.miss_slack <= 0 or accesses_per_request <= 0:
            return target_lines
        allowed_ratio = float(curve(target_lines)) + self.miss_slack / accesses_per_request
        sizes = curve.sizes
        ratios = curve.miss_ratios
        eligible = sizes[(ratios <= allowed_ratio) & (sizes <= target_lines)]
        floor = target_lines * floor_fraction
        if eligible.size == 0:
            return target_lines
        return float(max(eligible.min(), floor))

    @property
    def watermark_factor(self) -> float:
        """Low-watermark threshold for the de-boost circuit."""
        return 1.0 + self.slack
