"""Accurate de-boosting (paper Section 5.1.1) and the slack watermark.

Ubik sizes boosts with conservative bounds, so most requests repay
their transient well before the deadline.  Holding the boost until the
deadline would waste batch space, so the paper adds a small hardware
extension: UMON tags survive idle periods, letting a counter track how
many misses the running request *would have* incurred had the
partition stayed at ``s_active``.  When that projected count exceeds
the actual count (plus a guard for UMON sampling error), the transient
cost has been repaid and an interrupt de-boosts the app.

The slack variant (Section 5.2) adds a *low watermark*: after the
partition has filled to the boost size, a request whose actual misses
still exceed the projection by more than ``(1 + miss_slack)`` is
suffering atypically; the interrupt then falls back to the
conservative no-slack sizing to avoid catastrophic degradation.

This module is the engine-side model of that circuit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..policies.base import BoostPlan

__all__ = ["DeBoostEvent", "DeBoostTracker"]


@dataclass(frozen=True)
class DeBoostEvent:
    """What the circuit signalled: 'deboost' or 'watermark'."""

    kind: str
    at_cycle: float

    def __post_init__(self) -> None:
        if self.kind not in ("deboost", "watermark"):
            raise ValueError(f"unknown event kind {self.kind!r}")


class DeBoostTracker:
    """Tracks projected-vs-actual misses for one boosted partition."""

    def __init__(self, plan: BoostPlan, active_miss_ratio: float):
        if not 0.0 <= active_miss_ratio <= 1.0:
            raise ValueError("miss ratio out of range")
        self.plan = plan
        self.active_miss_ratio = active_miss_ratio
        self.projected = 0.0  # misses the request would have had at s_active
        self.actual = 0.0
        self.filled = False
        self.fired = False

    def observe(
        self,
        accesses: float,
        misses: float,
        resident_lines: float,
        now: float,
    ) -> DeBoostEvent | None:
        """Feed one advancement step; returns an event when armed.

        ``resident_lines`` is the partition's current fill level, used
        to arm the watermark only after the boost target is reached.
        """
        if self.fired:
            return None
        if accesses < 0 or misses < 0:
            raise ValueError("observations must be non-negative")
        self.projected += accesses * self.active_miss_ratio
        self.actual += misses
        if resident_lines >= self.plan.boost_lines * (1.0 - 1e-9):
            self.filled = True

        guard = self.plan.guard_fraction * self.projected
        if self.projected >= self.actual + guard and self.projected > 0:
            self.fired = True
            return DeBoostEvent(kind="deboost", at_cycle=now)

        if (
            self.plan.watermark_factor is not None
            and self.filled
            and self.projected > 0
            and self.actual > self.projected * self.plan.watermark_factor
        ):
            self.fired = True
            return DeBoostEvent(kind="watermark", at_cycle=now)
        return None

    def accumulate(
        self, accesses: float, misses: float, resident_lines: float
    ) -> None:
        """Advance the counters without event detection.

        The engine commits progress in pieces between global events;
        crossing times are pre-resolved by the service walk, so commits
        only need bookkeeping here.
        """
        if accesses < 0 or misses < 0:
            raise ValueError("observations must be non-negative")
        self.projected += accesses * self.active_miss_ratio
        self.actual += misses
        if resident_lines >= self.plan.boost_lines * (1.0 - 1e-9):
            self.filled = True

    @property
    def deficit(self) -> float:
        """Misses still to be recovered (negative once repaid)."""
        return self.actual - self.projected
