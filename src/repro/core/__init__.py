"""Ubik's core: transient analysis, boost sizing, repartitioning, slack.

This package is the paper's primary contribution (Section 5): the
machinery that lets a partitioning policy reason about — rather than
ignore — the transient behaviour of resized partitions.
"""

from .boost import SizingOption, choose_sizes
from .deboost import DeBoostEvent, DeBoostTracker
from .repartition import RepartitionTable
from .slack import SlackController
from .transient import (
    gain_rate_per_cycle,
    lost_cycles_bound,
    lost_cycles_exact,
    transient_length_bound,
    transient_length_exact,
)
from .ubik import UbikPolicy

__all__ = [
    "transient_length_bound",
    "transient_length_exact",
    "lost_cycles_bound",
    "lost_cycles_exact",
    "gain_rate_per_cycle",
    "SizingOption",
    "choose_sizes",
    "RepartitionTable",
    "DeBoostTracker",
    "DeBoostEvent",
    "SlackController",
    "UbikPolicy",
]
