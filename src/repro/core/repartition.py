"""The repartitioning table (paper Section 5.1.2, Figure 8).

Running Lookahead at every latency-critical resize would be too slow,
and precomputing every combination (as OnOff does) is infeasible when
idle/boost/active sizes vary continuously.  Instead, at each
coarse-grained interval the Ubik runtime:

1. computes the *average* space batch apps held over the last interval,
2. runs Lookahead at that size to fix the baseline batch allocations,
3. greedily extends that solution up and down, one bucket at a time:
   growing batch space gives the next bucket to the app with the
   highest marginal utility; shrinking takes it from the app with the
   lowest marginal loss.

The result is a table with one row per possible batch-space bucket
count; event-time resizes just walk rows, which is O(distance) with
tiny constants.  Greedy extension is suboptimal for non-convex curves,
but batch space stays near the average in practice (the paper makes
the same argument).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..monitor.miss_curve import MissCurve
from ..policies.lookahead import lookahead_partition

__all__ = ["RepartitionTable"]


class RepartitionTable:
    """Bucket-indexed batch allocations around a Lookahead baseline."""

    def __init__(
        self,
        curves: Sequence[MissCurve],
        weights: Sequence[float],
        llc_lines: float,
        avg_batch_lines: float,
        buckets: int = 256,
    ):
        if len(curves) != len(weights):
            raise ValueError("one weight per curve required")
        if llc_lines <= 0:
            raise ValueError("llc_lines must be positive")
        if not 0 <= avg_batch_lines <= llc_lines:
            raise ValueError("avg_batch_lines out of range")
        if buckets < 1:
            raise ValueError("need at least one bucket")
        self.num_apps = len(curves)
        self.buckets = buckets
        self.bucket_lines = llc_lines / buckets

        if self.num_apps == 0:
            self._table = np.zeros((buckets + 1, 0), dtype=int)
            return

        weight_arr = np.maximum(np.asarray(weights, dtype=float), 1e-12)
        grid = np.arange(buckets + 1) * self.bucket_lines
        miss_tables = [w * np.asarray(c(grid)) for c, w in zip(curves, weight_arr)]

        avg_buckets = int(round(avg_batch_lines / self.bucket_lines))
        avg_buckets = min(max(avg_buckets, 0), buckets)

        base_lines = lookahead_partition(
            curves, weight_arr, avg_buckets * self.bucket_lines, buckets=max(avg_buckets, 1)
        )
        base = np.asarray(
            [int(round(b / self.bucket_lines)) for b in base_lines], dtype=int
        )
        # Rounding guard: force the baseline row to sum exactly.
        drift = avg_buckets - int(base.sum())
        if drift != 0 and self.num_apps > 0:
            base[int(np.argmax(base))] += drift
            base = np.maximum(base, 0)

        table = np.zeros((self.buckets + 1, self.num_apps), dtype=int)
        table[avg_buckets] = base

        # Walk down: shrink batch space one bucket at a time, taking
        # from the app losing the least utility.
        row = base.copy()
        for level in range(avg_buckets - 1, -1, -1):
            losses = [
                miss_tables[i][row[i] - 1] - miss_tables[i][row[i]]
                if row[i] > 0
                else np.inf
                for i in range(self.num_apps)
            ]
            victim = int(np.argmin(losses))
            row[victim] -= 1
            table[level] = row

        # Walk up: grow batch space, giving to the app gaining the most.
        row = base.copy()
        for level in range(avg_buckets + 1, self.buckets + 1):
            gains = [
                miss_tables[i][row[i]] - miss_tables[i][row[i] + 1]
                if row[i] < self.buckets
                else -np.inf
                for i in range(self.num_apps)
            ]
            winner = int(np.argmax(gains))
            row[winner] += 1
            table[level] = row

        self._table = table

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def level_for(self, batch_lines: float) -> int:
        """Bucket row covering ``batch_lines`` of batch space."""
        level = int(batch_lines // self.bucket_lines)
        return min(max(level, 0), self.buckets)

    def allocations_at(self, batch_lines: float) -> List[float]:
        """Per-app batch allocations (lines) for a given batch space."""
        row = self._table[self.level_for(batch_lines)]
        return [float(b * self.bucket_lines) for b in row]

    def row(self, level: int) -> np.ndarray:
        """Raw bucket row (for tests and introspection)."""
        if not 0 <= level <= self.buckets:
            raise ValueError("level out of range")
        return self._table[level].copy()
