"""Analytical transient bounds (paper Section 5.1).

When a Vantage partition grows from ``s1`` to ``s2`` lines, every miss
adds one line and nothing is evicted, so with miss-probability curve
``p(s)`` and per-access timing ``Taccess = c + p*M``:

* time between misses at size ``s``:  ``Tmiss(s) = c/p(s) + M``
* transient length:                  ``T = sum_{s=s1}^{s2-1} c/p(s) + M``
* conservative upper bound:          ``T <= (s2-s1) * (c/p(s2) + M)``
* cycles lost versus starting at s2: ``L = M * sum (1 - p(s2)/p(s))``
* conservative upper bound:          ``L <= M * (s2-s1) * (1 - p(s2)/p(s1))``

Ubik's controller uses the *upper bounds* (safe sizing); the exact sums
are provided for validation and for quantifying the controller's
conservatism.  All functions integrate over the piecewise-linear miss
curve rather than literally summing per line, which is exact in the
fluid limit and fast.
"""

from __future__ import annotations

import numpy as np

from ..monitor.miss_curve import MissCurve

__all__ = [
    "transient_length_bound",
    "transient_length_exact",
    "lost_cycles_bound",
    "lost_cycles_exact",
    "gain_rate_per_cycle",
]

_P_FLOOR = 1e-9


def _check_sizes(curve: MissCurve, s1: float, s2: float) -> None:
    if not 0 <= s1 <= s2:
        raise ValueError("need 0 <= s1 <= s2")
    if s2 > curve.max_size + 1e-9:
        raise ValueError("s2 beyond the sampled curve")


def _segment_grid(curve: MissCurve, s1: float, s2: float) -> np.ndarray:
    """Knots of the curve within [s1, s2], including both endpoints."""
    inner = curve.sizes[(curve.sizes > s1) & (curve.sizes < s2)]
    return np.concatenate([[s1], inner, [s2]])


def transient_length_bound(
    curve: MissCurve, s1: float, s2: float, c: float, M: float
) -> float:
    """Upper bound on cycles to grow from ``s1`` to ``s2`` lines.

    Uses the paper's conservative form with the *final* (smallest) miss
    probability: ``(s2-s1) * (c/p(s2) + M)``.  Infinite if the curve
    reaches zero at ``s2`` (growth cannot complete on misses alone).
    """
    _check_sizes(curve, s1, s2)
    if s2 == s1:
        return 0.0
    p2 = float(curve(s2))
    if p2 <= _P_FLOOR:
        return float("inf")
    return (s2 - s1) * (c / p2 + M)


def transient_length_exact(
    curve: MissCurve, s1: float, s2: float, c: float, M: float
) -> float:
    """Exact transient length: integral of ``c/p(s) + M`` over lines.

    On a linear segment from ``(sa, pa)`` to ``(sb, pb)``,
    ``int c/p ds = c * (sb-sa) / (pb-pa) * ln(pb/pa)`` (or
    ``c*(sb-sa)/pa`` when flat).
    """
    _check_sizes(curve, s1, s2)
    if s2 == s1:
        return 0.0
    grid = _segment_grid(curve, s1, s2)
    total = M * (s2 - s1)
    for sa, sb in zip(grid[:-1], grid[1:]):
        pa, pb = float(curve(sa)), float(curve(sb))
        if pa <= _P_FLOOR or pb <= _P_FLOOR:
            return float("inf")
        if abs(pb - pa) < 1e-12 * pa:
            total += c * (sb - sa) / pa
        else:
            total += c * (sb - sa) / (pb - pa) * np.log(pb / pa)
    return float(total)


def lost_cycles_bound(
    curve: MissCurve, s1: float, s2: float, M: float
) -> float:
    """Upper bound on cycles lost in the transient vs starting at s2.

    ``L <= M * (s2 - s1) * (1 - p(s2)/p(s1))`` — the paper's bound,
    which assumes none of the extra reuse is enjoyed until the fill
    completes.  Zero when the curve is flat over the range.
    """
    _check_sizes(curve, s1, s2)
    if s2 == s1:
        return 0.0
    p1, p2 = float(curve(s1)), float(curve(s2))
    if p1 <= _P_FLOOR:
        return 0.0
    return M * (s2 - s1) * max(0.0, 1.0 - p2 / p1)


def lost_cycles_exact(
    curve: MissCurve, s1: float, s2: float, M: float
) -> float:
    """Exact lost cycles: ``M * int (1 - p(s2)/p(s)) ds`` over [s1, s2]."""
    _check_sizes(curve, s1, s2)
    if s2 == s1:
        return 0.0
    p2 = float(curve(s2))
    grid = _segment_grid(curve, s1, s2)
    total = 0.0
    for sa, sb in zip(grid[:-1], grid[1:]):
        pa, pb = float(curve(sa)), float(curve(sb))
        if pa <= _P_FLOOR:
            continue  # no misses here: nothing lost, and no growth either
        if abs(pb - pa) < 1e-12 * pa:
            total += (sb - sa) * (1.0 - p2 / pa)
        else:
            # int (1 - p2/p) ds over linear p: (sb-sa) - p2*(sb-sa)/(pb-pa)*ln(pb/pa)
            total += (sb - sa) - p2 * (sb - sa) / (pb - pa) * np.log(pb / pa)
    return float(M * max(0.0, total))


def gain_rate_per_cycle(
    curve: MissCurve, s_active: float, s_boost: float, c: float, M: float
) -> float:
    """Cycles gained per cycle executed at ``s_boost`` vs ``s_active``.

    At the boosted size, each access saves ``(p_active - p_boost) * M``
    stall cycles and takes ``c + p_boost*M`` cycles, so the recovery
    rate is their ratio.  Used to size the boost so the transient's
    lost cycles are repaid by the deadline (Section 5.1.1).
    """
    if s_boost < s_active:
        raise ValueError("boost size must be at least the active size")
    p_active = float(curve(s_active))
    p_boost = float(curve(s_boost))
    denom = c + p_boost * M
    if denom <= 0:
        raise ValueError("non-positive access interval")
    return max(0.0, (p_active - p_boost)) * M / denom
