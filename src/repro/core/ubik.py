"""Ubik: inertia-aware cache partitioning (paper Section 5).

The policy combines the pieces of this package:

* every coarse interval (~50 ms) it reads monitors, updates each LC
  app's slack controller and (idle, boost) sizing
  (:mod:`repro.core.boost`), runs Lookahead for batch apps at their
  average space, and rebuilds the repartitioning table
  (:mod:`repro.core.repartition`);
* on an LC app's **idle** transition it downsizes that partition to
  ``s_idle`` and gives the space to batch apps via the table;
* on an **active** transition it boosts the partition to ``s_boost``
  and arms the de-boost circuit (:mod:`repro.core.deboost`);
* on the **de-boost interrupt** it drops the partition to ``s_active``
  and returns the space to batch apps;
* with slack, a **watermark interrupt** falls back to the conservative
  no-slack sizing for requests suffering atypically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..monitor.miss_curve import MissCurve
from ..policies.base import (
    AppView,
    BoostPlan,
    Decision,
    Policy,
    PolicyContext,
)
from .boost import DEFAULT_OPTIONS, SizingOption, choose_sizes
from .repartition import RepartitionTable
from .slack import SlackController

__all__ = ["UbikPolicy"]

#: De-boost guard for UMON sampling error (paper Section 5.1.1).
GUARD_FRACTION = 0.02


class UbikPolicy(Policy):
    """Strict Ubik (``slack=0``) or Ubik-with-slack (``slack>0``)."""

    def __init__(
        self,
        slack: float = 0.0,
        buckets: int = 256,
        num_options: int = DEFAULT_OPTIONS,
        boost_enabled: bool = True,
        deboost_enabled: bool = True,
        use_exact_bounds: bool = False,
    ):
        """Build Ubik; the last three flags are ablation knobs.

        ``boost_enabled=False`` downsizes idle apps but never boosts on
        wakeup (transient losses are never repaid -> tails degrade);
        ``deboost_enabled=False`` holds the boost for the whole active
        period instead of releasing it when repaid (tails safe, batch
        throughput wasted); ``use_exact_bounds=True`` replaces the
        paper's conservative bounds with exact transient integrals.
        """
        if slack < 0:
            raise ValueError("slack must be non-negative")
        if buckets < 1:
            raise ValueError("need at least one bucket")
        self.slack = slack
        self.buckets = buckets
        self.num_options = num_options
        self.boost_enabled = boost_enabled
        self.deboost_enabled = deboost_enabled
        self.use_exact_bounds = use_exact_bounds
        self.name = "Ubik" if slack == 0 else f"Ubik-{slack:.0%}"
        if not boost_enabled:
            self.name += "-noboost"
        if not deboost_enabled:
            self.name += "-nodeboost"
        if use_exact_bounds:
            self.name += "-exact"
        self._sizing: Dict[int, SizingOption] = {}
        self._strict_sizing: Dict[int, SizingOption] = {}
        self._slack_ctrl: Dict[int, SlackController] = {}
        self._armed: Dict[int, BoostPlan] = {}
        self._forced_strict: Set[int] = set()
        self._table: Optional[RepartitionTable] = None
        self._batch_order: List[int] = []
        self._batch_weights: List[float] = []
        self._batch_curves: List[MissCurve] = []

    # ------------------------------------------------------------------
    # Periodic reconfiguration
    # ------------------------------------------------------------------
    def _batch_hit_rate(self, batch_lines: float) -> float:
        """Total batch hits per cycle at a given batch space."""
        if self._table is None or not self._batch_order:
            return 0.0
        allocs = self._table.allocations_at(batch_lines)
        total = 0.0
        for curve, weight, alloc in zip(
            self._batch_curves, self._batch_weights, allocs
        ):
            total += weight * (1.0 - float(curve(alloc)))
        return total

    def _rebuild(self, ctx: PolicyContext) -> None:
        batch = ctx.batch_apps
        self._batch_order = [a.index for a in batch]
        self._batch_curves = [a.curve for a in batch]
        self._batch_weights = [max(a.access_rate, 1e-12) for a in batch]
        self._table = RepartitionTable(
            self._batch_curves,
            self._batch_weights,
            ctx.llc_lines,
            avg_batch_lines=ctx.avg_batch_lines,
            buckets=self.buckets,
        )
        avg = ctx.avg_batch_lines
        base_rate = self._batch_hit_rate(avg)

        def batch_delta_hit_rate(delta_lines: float) -> float:
            return self._batch_hit_rate(avg + delta_lines) - base_rate

        lc_apps = ctx.lc_apps
        boost_max = ctx.llc_lines / max(1, len(lc_apps))
        self._forced_strict.clear()
        for app in lc_apps:
            active_lines = self._active_size(app)
            self._sizing[app.index] = self._size_app(
                app, active_lines, boost_max, batch_delta_hit_rate
            )
            if self.slack > 0:
                self._strict_sizing[app.index] = self._size_app(
                    app, app.target_lines, boost_max, batch_delta_hit_rate
                )
            else:
                self._strict_sizing[app.index] = self._sizing[app.index]

    def _active_size(self, app: AppView) -> float:
        """``s_active`` for one LC app (slack-adjusted if enabled)."""
        if self.slack == 0:
            return app.target_lines
        ctrl = self._slack_ctrl.get(app.index)
        if ctrl is None:
            target_tail = app.target_tail_cycles or app.deadline_cycles
            ctrl = SlackController(
                self.slack, target_tail, max(app.miss_penalty, 1.0)
            )
            self._slack_ctrl[app.index] = ctrl
        ctrl.update(app.recent_latencies, load_hint=1.0 - app.idle_fraction)
        # Budget the shrink against *tail* requests' access counts: a
        # smaller s_active taxes every access, and tail requests have
        # the most accesses, so averaging would concentrate the damage
        # exactly where the QoS bound lives.
        accesses = app.tail_accesses_per_request or app.accesses_per_request
        return ctrl.active_size(app.curve, app.target_lines, accesses)

    def _size_app(self, app, active_lines, boost_max, batch_delta_hit_rate):
        return choose_sizes(
            curve=app.curve,
            c=app.hit_interval,
            M=app.miss_penalty,
            active_lines=active_lines,
            deadline_cycles=max(app.deadline_cycles, 1.0),
            boost_max_lines=boost_max,
            batch_delta_hit_rate=batch_delta_hit_rate,
            idle_fraction=app.idle_fraction,
            activation_rate=app.activation_rate,
            num_options=self.num_options,
            use_exact_bounds=self.use_exact_bounds,
        )

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _lc_target(self, ctx: PolicyContext, app: AppView) -> float:
        """Steady-state target for an LC app given its current phase."""
        sizing = self._sizing[app.index]
        if not ctx.lc_active.get(app.index, False):
            return sizing.idle_lines
        if ctx.lc_boosted.get(app.index, False):
            # Leave an in-flight boost alone; the de-boost interrupt
            # will bring it down.
            return ctx.current_targets.get(app.index, sizing.boost_lines)
        return sizing.active_lines

    def _with_batch(
        self, ctx: PolicyContext, lc_targets: Dict[int, float]
    ) -> Decision:
        """Complete a decision by filling batch targets from the table."""
        batch_space = ctx.llc_lines - sum(lc_targets.values())
        batch_space = max(0.0, batch_space)
        targets = dict(lc_targets)
        if self._table is not None:
            for index, alloc in zip(
                self._batch_order, self._table.allocations_at(batch_space)
            ):
                targets[index] = alloc
        return Decision(targets=targets)

    def _full_decision(self, ctx: PolicyContext) -> Decision:
        lc_targets = {a.index: self._lc_target(ctx, a) for a in ctx.lc_apps}
        return self._with_batch(ctx, lc_targets)

    def initialize(self, ctx: PolicyContext) -> Decision:
        self._rebuild(ctx)
        return self._full_decision(ctx)

    def on_interval(self, ctx: PolicyContext) -> Decision:
        self._rebuild(ctx)
        return self._full_decision(ctx)

    # ------------------------------------------------------------------
    # Event-driven transitions
    # ------------------------------------------------------------------
    def _lc_targets_now(self, ctx: PolicyContext) -> Dict[int, float]:
        """Current LC targets, preserving in-flight boosts."""
        targets: Dict[int, float] = {}
        for app in ctx.lc_apps:
            targets[app.index] = ctx.current_targets.get(
                app.index, self._sizing[app.index].idle_lines
            )
        return targets

    def on_lc_idle(self, ctx: PolicyContext, app_index: int) -> Decision:
        self._armed.pop(app_index, None)
        lc_targets = self._lc_targets_now(ctx)
        lc_targets[app_index] = self._sizing[app_index].idle_lines
        return self._with_batch(ctx, lc_targets)

    def on_lc_active(self, ctx: PolicyContext, app_index: int) -> Decision:
        use_strict = app_index in self._forced_strict
        sizing = (
            self._strict_sizing[app_index] if use_strict else self._sizing[app_index]
        )
        lc_targets = self._lc_targets_now(ctx)
        if not self.boost_enabled:
            # Ablation: wake up straight to s_active; transient losses
            # are never repaid.
            lc_targets[app_index] = sizing.active_lines
            return self._with_batch(ctx, lc_targets)
        lc_targets[app_index] = sizing.boost_lines
        decision = self._with_batch(ctx, lc_targets)
        if sizing.boost_lines > sizing.active_lines and self.deboost_enabled:
            watermark = None
            if self.slack > 0 and not use_strict:
                ctrl = self._slack_ctrl.get(app_index)
                watermark = ctrl.watermark_factor if ctrl else 1.0 + self.slack
            plan = BoostPlan(
                boost_lines=sizing.boost_lines,
                active_lines=sizing.active_lines,
                guard_fraction=GUARD_FRACTION,
                watermark_factor=watermark,
            )
            self._armed[app_index] = plan
            decision.boost_plans[app_index] = plan
        return decision

    def on_deboost(self, ctx: PolicyContext, app_index: int) -> Decision:
        plan = self._armed.pop(app_index, None)
        active = (
            plan.active_lines if plan else self._sizing[app_index].active_lines
        )
        lc_targets = self._lc_targets_now(ctx)
        lc_targets[app_index] = active
        return self._with_batch(ctx, lc_targets)

    def on_watermark(self, ctx: PolicyContext, app_index: int) -> Decision:
        """Fall back to the conservative sizing for a suffering request."""
        self._forced_strict.add(app_index)
        self._armed.pop(app_index, None)
        strict = self._strict_sizing[app_index]
        lc_targets = self._lc_targets_now(ctx)
        lc_targets[app_index] = strict.boost_lines
        decision = self._with_batch(ctx, lc_targets)
        if strict.boost_lines > strict.active_lines:
            plan = BoostPlan(
                boost_lines=strict.boost_lines,
                active_lines=strict.active_lines,
                guard_fraction=GUARD_FRACTION,
                watermark_factor=None,
            )
            self._armed[app_index] = plan
            decision.boost_plans[app_index] = plan
        return decision

    # ------------------------------------------------------------------
    # Introspection (tests, examples)
    # ------------------------------------------------------------------
    def sizing_for(self, app_index: int) -> SizingOption:
        """Last computed sizing for an LC app."""
        return self._sizing[app_index]
