"""Idle/boost sizing for latency-critical partitions (Section 5.1.1).

At every reconfiguration interval, for each latency-critical app, Ubik
evaluates N candidate idle sizes ``s_idle = s_active * (N-k)/N``.  For
each candidate it computes (all from the measured miss curve and the
paper's conservative bounds):

* the worst-case cycles **lost** during the refill transient,
* the smallest **boost** size whose extra hit rate repays those cycles
  within the deadline (boost capped at ``llc / num_lc`` so boosted LC
  apps can never interfere with each other),
* a **cost/benefit** comparison priced with the batch apps' miss
  curves: benefit = extra batch hits while the app is idle, cost =
  extra batch misses while it is boosted (Figure 7).

The option with the highest net gain wins; infeasible options (the
transient cannot be repaid by the deadline) terminate the search, since
options only get more aggressive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..monitor.miss_curve import MissCurve
from .transient import (
    gain_rate_per_cycle,
    lost_cycles_bound,
    lost_cycles_exact,
    transient_length_bound,
    transient_length_exact,
)

__all__ = ["SizingOption", "choose_sizes", "evaluate_options"]

#: Candidate idle sizes evaluated per app (paper: N = 16).
DEFAULT_OPTIONS = 16

#: Boost-size search resolution between s_active and s_boost_max.
BOOST_GRID = 32


@dataclass(frozen=True)
class SizingOption:
    """One evaluated (idle, boost) pair with its accounting."""

    idle_lines: float
    boost_lines: float
    active_lines: float
    lost_cycles: float
    transient_cycles: float
    net_gain: float  # benefit - cost, in batch hits per cycle of wall time
    feasible: bool = True
    benefit: float = 0.0
    cost: float = 0.0

    @property
    def downsizes(self) -> bool:
        return self.idle_lines < self.active_lines


def _smallest_feasible_boost(
    curve: MissCurve,
    c: float,
    M: float,
    idle_lines: float,
    active_lines: float,
    boost_max: float,
    deadline: float,
    use_exact_bounds: bool = False,
) -> Optional[float]:
    """Smallest boost that repays the transient by the deadline.

    ``use_exact_bounds`` replaces the paper's conservative closed-form
    bounds with the exact piecewise integrals — an ablation knob: more
    aggressive downsizing with a thinner safety margin.
    """
    lost_fn = lost_cycles_exact if use_exact_bounds else lost_cycles_bound
    transient_fn = (
        transient_length_exact if use_exact_bounds else transient_length_bound
    )
    lost = lost_fn(curve, idle_lines, active_lines, M)
    if lost <= 0.0:
        return active_lines
    boost_max = min(boost_max, curve.max_size)
    if boost_max <= active_lines:
        return None
    step = (boost_max - active_lines) / BOOST_GRID
    for k in range(1, BOOST_GRID + 1):
        boost = active_lines + k * step
        transient = transient_fn(curve, idle_lines, boost, c, M)
        if transient >= deadline:
            # Larger boosts only lengthen the fill; nothing further works.
            return None
        rate = gain_rate_per_cycle(curve, active_lines, boost, c, M)
        if rate <= 0.0:
            continue
        if (deadline - transient) * rate >= lost:
            return boost
    return None


def choose_sizes(
    curve: MissCurve,
    c: float,
    M: float,
    active_lines: float,
    deadline_cycles: float,
    boost_max_lines: float,
    batch_delta_hit_rate: Callable[[float], float],
    idle_fraction: float,
    activation_rate: float,
    num_options: int = DEFAULT_OPTIONS,
    use_exact_bounds: bool = False,
) -> SizingOption:
    """Pick the best (idle, boost) pair for one latency-critical app.

    Parameters
    ----------
    curve, c, M:
        The app's measured miss curve, all-hit access interval, and
        effective miss penalty.
    active_lines:
        The app's steady target size (``s_active``).
    deadline_cycles:
        Time by which transient losses must be repaid — the 95th
        percentile latency at the target size.
    boost_max_lines:
        Boost ceiling (``llc / num_lc_apps``).
    batch_delta_hit_rate:
        ``f(delta_lines)`` — change in total batch hits per cycle if
        batch space changes by ``delta_lines`` (from the repartition
        table's miss curves); positive deltas give batch more space.
    idle_fraction, activation_rate:
        Measured duty-cycle statistics of the app, used to weight
        benefit (accrues while idle) against cost (accrues while
        boosted, at most ``deadline`` per activation).
    """
    if active_lines <= 0:
        raise ValueError("active size must be positive")
    if deadline_cycles <= 0:
        raise ValueError("deadline must be positive")
    if not 0.0 <= idle_fraction <= 1.0:
        raise ValueError("idle fraction must be in [0, 1]")
    if activation_rate < 0:
        raise ValueError("activation rate must be non-negative")
    if num_options < 1:
        raise ValueError("need at least one option")

    options = evaluate_options(
        curve=curve,
        c=c,
        M=M,
        active_lines=active_lines,
        deadline_cycles=deadline_cycles,
        boost_max_lines=boost_max_lines,
        batch_delta_hit_rate=batch_delta_hit_rate,
        idle_fraction=idle_fraction,
        activation_rate=activation_rate,
        num_options=num_options,
        use_exact_bounds=use_exact_bounds,
    )
    return max(
        (o for o in options if o.feasible),
        key=lambda o: o.net_gain,
    )


def evaluate_options(
    curve: MissCurve,
    c: float,
    M: float,
    active_lines: float,
    deadline_cycles: float,
    boost_max_lines: float,
    batch_delta_hit_rate: Callable[[float], float],
    idle_fraction: float,
    activation_rate: float,
    num_options: int = DEFAULT_OPTIONS,
    use_exact_bounds: bool = False,
) -> List[SizingOption]:
    """The full option table of Figure 7: every candidate with its
    cost/benefit accounting, ending at the first infeasible one.

    Option 0 (keep the full allocation) is always present and always
    feasible; the remaining options downsize progressively.  The
    search stops after the first infeasible option, which is included
    (flagged) so callers can render the paper's INFEASIBLE row.
    """
    options: List[SizingOption] = [
        SizingOption(
            idle_lines=active_lines,
            boost_lines=active_lines,
            active_lines=active_lines,
            lost_cycles=0.0,
            transient_cycles=0.0,
            net_gain=0.0,
            feasible=True,
        )
    ]
    lost_fn = lost_cycles_exact if use_exact_bounds else lost_cycles_bound
    transient_fn = (
        transient_length_exact if use_exact_bounds else transient_length_bound
    )
    for k in range(1, num_options + 1):
        idle = active_lines * (num_options - k) / num_options
        boost = _smallest_feasible_boost(
            curve,
            c,
            M,
            idle,
            active_lines,
            boost_max_lines,
            deadline_cycles,
            use_exact_bounds=use_exact_bounds,
        )
        lost = lost_fn(curve, idle, active_lines, M)
        if boost is None:
            options.append(
                SizingOption(
                    idle_lines=idle,
                    boost_lines=float("nan"),
                    active_lines=active_lines,
                    lost_cycles=lost,
                    transient_cycles=float("inf"),
                    net_gain=float("-inf"),
                    feasible=False,
                )
            )
            break  # options only get more aggressive from here
        transient = transient_fn(curve, idle, boost, c, M)
        benefit = idle_fraction * batch_delta_hit_rate(active_lines - idle)
        boosted_fraction = min(1.0, activation_rate * deadline_cycles)
        cost = boosted_fraction * -batch_delta_hit_rate(-(boost - active_lines))
        options.append(
            SizingOption(
                idle_lines=idle,
                boost_lines=boost,
                active_lines=active_lines,
                lost_cycles=lost,
                transient_cycles=transient,
                net_gain=benefit - cost,
                feasible=True,
                benefit=benefit,
                cost=cost,
            )
        )
    return options
