"""Per-application execution profiles consumed by core models.

An :class:`AppProfile` captures everything a core model needs to turn a
miss ratio into cycles: LLC access intensity (APKI), the CPI the app
would sustain if every LLC access hit (``base_cpi``, which folds in L1,
L2 and L3-hit latencies), and the app's long-miss memory-level
parallelism (MLP), measured by the Eyerman-style profiler the paper
attaches to each core (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AppProfile"]


@dataclass(frozen=True)
class AppProfile:
    """Static execution characteristics of one application.

    Parameters
    ----------
    name:
        Identifier used in reports.
    apki:
        Last-level-cache accesses per thousand instructions.
    base_cpi:
        Cycles per instruction when all LLC accesses hit.
    mlp:
        Average number of overlapped long (LLC-miss) memory accesses;
        1.0 means fully serialized misses.
    """

    name: str
    apki: float
    base_cpi: float
    mlp: float = 1.0

    def __post_init__(self) -> None:
        if self.apki < 0:
            raise ValueError("apki must be non-negative")
        if self.base_cpi <= 0:
            raise ValueError("base_cpi must be positive")
        if self.mlp < 1.0:
            raise ValueError("mlp must be at least 1 (no negative overlap)")

    @property
    def instructions_per_access(self) -> float:
        """Instructions between consecutive LLC accesses.

        Infinite for an app that never touches the LLC; callers should
        check :attr:`apki` before dividing by this.
        """
        if self.apki == 0:
            return float("inf")
        return 1000.0 / self.apki

    def accesses_for(self, instructions: float) -> float:
        """Expected LLC accesses over ``instructions`` instructions."""
        return instructions * self.apki / 1000.0
