"""Analytic core models: turn miss ratios into cycles.

Public entry points:

* :class:`AppProfile` — static per-app execution characteristics.
* :class:`OutOfOrderCore` / :class:`InOrderCore` — the two core models
  the paper evaluates (Section 6 and Figure 11).
* :func:`make_core_model` — factory keyed by
  :class:`repro.sim.config.CoreKind`.
"""

from __future__ import annotations

from .base import CoreModel
from .inorder import InOrderCore
from .ooo import OutOfOrderCore
from .profile import AppProfile

__all__ = [
    "AppProfile",
    "CoreModel",
    "InOrderCore",
    "OutOfOrderCore",
    "make_core_model",
]

_CORE_KINDS = {
    OutOfOrderCore.kind: OutOfOrderCore,
    InOrderCore.kind: InOrderCore,
}


def make_core_model(kind: str, mem_latency_cycles: float) -> CoreModel:
    """Instantiate the core model named ``kind`` ("ooo" or "inorder")."""
    try:
        cls = _CORE_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown core kind {kind!r}; expected one of {sorted(_CORE_KINDS)}"
        ) from None
    return cls(mem_latency_cycles)
