"""Out-of-order core model (paper's default, validated against Westmere).

An OOO core hides part of each miss behind independent work and, more
importantly, overlaps concurrent long misses.  The MLP profiler the
paper adds to each core (Eyerman et al.) reports the average number of
overlapped long misses; the effective penalty per miss is the raw
memory latency divided by that overlap factor.
"""

from __future__ import annotations

from .base import CoreModel
from .profile import AppProfile

__all__ = ["OutOfOrderCore"]


class OutOfOrderCore(CoreModel):
    """OOO core: app-specific base CPI, MLP-scaled miss penalty."""

    kind = "ooo"

    def base_cpi(self, profile: AppProfile) -> float:
        return profile.base_cpi

    def miss_penalty(self, profile: AppProfile) -> float:
        return self.mem_latency_cycles / profile.mlp
