"""Core model interface: converting miss ratios into cycles.

The engine is analytic: it never simulates individual instructions.
Instead, a core model answers two questions about an application
executing with LLC miss ratio ``p``:

* ``c``  — cycles between consecutive LLC accesses if all of them hit
  (paper Section 5.1's ``c``), and
* ``M``  — average stall cycles added per LLC miss after accounting for
  overlap (the MLP profiler's output).

From these, the average time between accesses is ``Taccess = c + p*M``
and CPI follows.  These are exactly the quantities Ubik's transient
analysis consumes.
"""

from __future__ import annotations

import abc

from .profile import AppProfile

__all__ = ["CoreModel"]


class CoreModel(abc.ABC):
    """Analytic processor model shared by all policies and the engine."""

    #: Identifier matching :class:`repro.sim.config.CoreKind`.
    kind: str = "abstract"

    def __init__(self, mem_latency_cycles: float):
        if mem_latency_cycles <= 0:
            raise ValueError("memory latency must be positive")
        self.mem_latency_cycles = float(mem_latency_cycles)

    # ------------------------------------------------------------------
    # Model-specific knobs
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def base_cpi(self, profile: AppProfile) -> float:
        """CPI with a perfect LLC (all accesses hit)."""

    @abc.abstractmethod
    def miss_penalty(self, profile: AppProfile) -> float:
        """Average stall cycles charged per LLC miss (the paper's M)."""

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def hit_interval(self, profile: AppProfile) -> float:
        """Cycles between LLC accesses if all hit (the paper's ``c``)."""
        return profile.instructions_per_access * self.base_cpi(profile)

    def access_interval(self, profile: AppProfile, miss_ratio: float) -> float:
        """Average cycles between LLC accesses: ``c + p*M``."""
        self._check_ratio(miss_ratio)
        return self.hit_interval(profile) + miss_ratio * self.miss_penalty(profile)

    def miss_interval(self, profile: AppProfile, miss_ratio: float) -> float:
        """Average cycles between consecutive LLC *misses*.

        ``Tmiss = Taccess / p = c/p + M`` (Section 5.1).  Infinite when
        the app never misses.
        """
        self._check_ratio(miss_ratio)
        if miss_ratio == 0:
            return float("inf")
        return self.hit_interval(profile) / miss_ratio + self.miss_penalty(profile)

    def cpi(self, profile: AppProfile, miss_ratio: float) -> float:
        """Cycles per instruction at miss ratio ``p``."""
        self._check_ratio(miss_ratio)
        miss_component = (
            profile.apki / 1000.0 * miss_ratio * self.miss_penalty(profile)
        )
        return self.base_cpi(profile) + miss_component

    def ipc(self, profile: AppProfile, miss_ratio: float) -> float:
        """Instructions per cycle at miss ratio ``p``."""
        return 1.0 / self.cpi(profile, miss_ratio)

    def cycles_for(
        self, profile: AppProfile, instructions: float, miss_ratio: float
    ) -> float:
        """Cycles to retire ``instructions`` at a fixed miss ratio."""
        if instructions < 0:
            raise ValueError("instructions must be non-negative")
        return instructions * self.cpi(profile, miss_ratio)

    @staticmethod
    def _check_ratio(miss_ratio: float) -> None:
        if not 0.0 <= miss_ratio <= 1.0:
            raise ValueError(f"miss ratio out of range: {miss_ratio}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(mem_latency={self.mem_latency_cycles:.0f})"
