"""Simple in-order core model (paper Figure 11).

The paper's in-order configuration is "IPC=1 except on L1 misses": one
instruction per cycle, with every LLC miss fully exposed (no overlap).
In-order cores are therefore more sensitive to memory latency, which
the paper shows amplifies both tail-latency degradation under
best-effort policies and the weighted speedups of partitioning.
"""

from __future__ import annotations

from .base import CoreModel
from .profile import AppProfile

__all__ = ["InOrderCore"]


class InOrderCore(CoreModel):
    """In-order core: unit base CPI, fully serialized misses."""

    kind = "inorder"

    def base_cpi(self, profile: AppProfile) -> float:
        # IPC=1 when all LLC accesses hit, regardless of the app.
        return 1.0

    def miss_penalty(self, profile: AppProfile) -> float:
        # No MLP: each miss stalls the core for the full latency.
        return self.mem_latency_cycles
