"""Open-loop request arrival processes.

The paper's harness throttles client requests to achieve exponential
interarrival times at a configurable rate (a Markov input process,
Section 3.2), and models NIC interrupt coalescing with a 50 us timeout.
Both are reproduced here.  Arrival times are in core cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["PoissonArrivals", "InterruptCoalescer", "generate_arrivals"]


@dataclass(frozen=True)
class PoissonArrivals:
    """Exponential interarrival times at ``rate`` requests per cycle."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("arrival rate must be positive")

    @classmethod
    def for_load(cls, load: float, mean_service_cycles: float) -> "PoissonArrivals":
        """Arrival process achieving offered load ``rho = lambda * E[S]``."""
        if not 0.0 < load < 1.0:
            raise ValueError("load must be in (0, 1) for a stable queue")
        if mean_service_cycles <= 0:
            raise ValueError("mean service time must be positive")
        return cls(load / mean_service_cycles)

    def sample_times(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Arrival times (cycles) of ``count`` consecutive requests."""
        if count < 0:
            raise ValueError("count must be non-negative")
        gaps = rng.exponential(1.0 / self.rate, size=count)
        return np.cumsum(gaps)

    @property
    def mean_interarrival(self) -> float:
        return 1.0 / self.rate


class InterruptCoalescer:
    """NIC interrupt coalescing: arrivals become visible in batches.

    The first packet of a batch arms a timer; the interrupt (and thus
    server-side visibility of every packet queued meanwhile) fires when
    the timer expires.  The paper uses a 50 us timeout (Section 3.2).
    A timeout of zero disables coalescing.
    """

    def __init__(self, timeout_cycles: float):
        if timeout_cycles < 0:
            raise ValueError("timeout must be non-negative")
        self.timeout_cycles = float(timeout_cycles)

    def apply(self, arrival_times: np.ndarray) -> np.ndarray:
        """Visible times for each arrival (sorted input required)."""
        times = np.asarray(arrival_times, dtype=float)
        if times.size == 0:
            return times.copy()
        if np.any(np.diff(times) < 0):
            raise ValueError("arrival times must be sorted")
        if self.timeout_cycles == 0:
            return times.copy()
        visible: List[float] = []
        deadline = times[0] + self.timeout_cycles
        for t in times:
            if t > deadline:
                deadline = t + self.timeout_cycles
            visible.append(deadline)
        return np.asarray(visible)


def generate_arrivals(
    count: int,
    load: float,
    mean_service_cycles: float,
    rng: np.random.Generator,
    coalescing_timeout_cycles: float = 0.0,
) -> np.ndarray:
    """Visible arrival times for a fixed-work run of ``count`` requests."""
    process = PoissonArrivals.for_load(load, mean_service_cycles)
    raw = process.sample_times(count, rng)
    return InterruptCoalescer(coalescing_timeout_cycles).apply(raw)
