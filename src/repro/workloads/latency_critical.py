"""The five latency-critical workload models (paper Table 1, Section 3).

Each model is calibrated against the paper's published per-app data:

* **APKI** and miss-rate levels from Figure 2 (LLC access breakdowns at
  2 MB and 8 MB),
* **service-time distribution shape** from Figure 1b (near-constant,
  long-tailed, or multi-modal CDFs),
* **request counts and configurations** from Table 1,
* qualitative notes from Section 7.1 (e.g., masstree's high MLP,
  moses's reuse appearing only beyond ~4 MB).

The per-request *work* distribution is derived so that the mean service
time at the paper's baseline — running alone on an OOO core with a warm
2 MB LLC — matches the Figure 1b means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..cpu import AppProfile, OutOfOrderCore
from ..monitor.miss_curve import MissCurve
from ..units import mb_to_lines, ms_to_cycles
from .curve_shapes import (
    exponential_curve,
    plateau_then_decline_curve,
)
from .service_time import (
    LognormalWork,
    MixtureWork,
    TruncatedNormalWork,
    WorkDistribution,
)

__all__ = [
    "LCWorkload",
    "LC_NAMES",
    "DEFAULT_TARGET_MB",
    "DEFAULT_MEM_LATENCY",
    "make_lc_workload",
    "all_lc_workloads",
    "TABLE1_ROWS",
]

#: LC apps get a 2 MB target allocation, matching the paper's baseline
#: of per-core 2 MB private LLCs (Section 6).
DEFAULT_TARGET_MB = 2.0

#: Table 2 memory latency, used for service-time calibration.
DEFAULT_MEM_LATENCY = 200.0

#: Full curve range: the 12 MB shared LLC.
_MAX_LINES = mb_to_lines(12.0)


@dataclass(frozen=True)
class LCWorkload:
    """A latency-critical application model.

    Attributes
    ----------
    profile:
        Execution profile (APKI, base CPI, MLP).
    miss_curve:
        Steady-state (warm) miss ratio versus allocated lines.
    work:
        Per-request instruction-count distribution, calibrated to the
        Figure 1b service times at the 2 MB baseline.
    target_lines:
        The app's QoS target allocation (2 MB by default).
    mean_service_ms:
        Calibrated mean service time at the baseline, for reference.
    table1_requests:
        Simulated request count from paper Table 1.
    table1_config:
        Input-set description from paper Table 1.
    reuse_fraction:
        Fraction of LLC hits to lines last touched by *earlier*
        requests at 2 MB (Figure 2); drives the trace generators.
    """

    name: str
    profile: AppProfile
    miss_curve: MissCurve
    work: WorkDistribution
    target_lines: int
    mean_service_ms: float
    table1_requests: int
    table1_config: str
    reuse_fraction: float

    def mean_service_cycles(self, core=None) -> float:
        """Mean service time (cycles) at the warm baseline allocation."""
        core = core or OutOfOrderCore(DEFAULT_MEM_LATENCY)
        miss_ratio = float(self.miss_curve(self.target_lines))
        return self.work.mean() * core.cpi(self.profile, miss_ratio)

    def arrival_rate_for_load(self, load: float, core=None) -> float:
        """Requests per cycle achieving offered load ``rho``."""
        if not 0.0 < load < 1.0:
            raise ValueError("load must be in (0, 1)")
        return load / self.mean_service_cycles(core)


# ----------------------------------------------------------------------
# Per-app specifications
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _LCSpec:
    profile: AppProfile
    curve_factory: Callable[[], MissCurve]
    relative_work: WorkDistribution  # unit-mean shape
    mean_service_ms: float  # target at 2 MB warm baseline, OOO core
    table1_requests: int
    table1_config: str
    reuse_fraction: float


def _xapian_spec() -> _LCSpec:
    # Web search: compute-intensive, tiny LLC footprint (0.1 APKI),
    # long-tailed query-dependent service times.
    return _LCSpec(
        profile=AppProfile("xapian", apki=0.1, base_cpi=0.65, mlp=1.5),
        curve_factory=lambda: exponential_curve(
            miss_at_zero=0.80,
            miss_floor=0.05,
            half_size_lines=mb_to_lines(0.5),
            max_lines=_MAX_LINES,
        ),
        relative_work=LognormalWork(mean_work=1.0, sigma=1.2),
        mean_service_ms=0.75,
        table1_requests=6000,
        table1_config="English Wikipedia, zipfian query popularity",
        reuse_fraction=0.55,
    )


def _masstree_spec() -> _LCSpec:
    # In-memory key-value store: near-constant tiny requests, high MLP,
    # 1.1 GB table keeps the miss floor high at any LLC size.
    return _LCSpec(
        profile=AppProfile("masstree", apki=8.8, base_cpi=0.70, mlp=4.0),
        curve_factory=lambda: exponential_curve(
            miss_at_zero=0.90,
            miss_floor=0.28,
            half_size_lines=mb_to_lines(1.5),
            max_lines=_MAX_LINES,
        ),
        relative_work=TruncatedNormalWork(mean_work=1.0, cv=0.12),
        mean_service_ms=0.105,
        table1_requests=9000,
        table1_config="mycsb-a (50% GETs, 50% PUTs), 1.1GB table",
        reuse_fraction=0.62,
    )


def _moses_spec() -> _LCSpec:
    # Statistical machine translation: very memory-intensive
    # (25.8 APKI), near-constant long requests, and no reuse below
    # ~3 MB with significant reuse appearing around 4 MB (Section 7.1).
    return _LCSpec(
        profile=AppProfile("moses", apki=25.8, base_cpi=0.80, mlp=1.8),
        curve_factory=lambda: plateau_then_decline_curve(
            miss_plateau=0.92,
            miss_floor=0.30,
            plateau_lines=mb_to_lines(3.0),
            half_size_lines=mb_to_lines(1.5),
            max_lines=_MAX_LINES,
        ),
        relative_work=TruncatedNormalWork(mean_work=1.0, cv=0.12),
        mean_service_ms=4.2,
        table1_requests=900,
        table1_config="opensubtitles.org corpora, phrase-based mode",
        reuse_fraction=0.55,
    )


def _shore_spec() -> _LCSpec:
    # OLTP DBMS (TPC-C): bimodal transactions (light lookups vs heavy
    # new-order style), strong cross-request reuse.
    relative = MixtureWork.of(
        [
            TruncatedNormalWork(mean_work=0.45, cv=0.25),
            TruncatedNormalWork(mean_work=2.40, cv=0.30),
        ],
        [0.72, 0.28],
    )
    return _LCSpec(
        profile=AppProfile("shore", apki=5.7, base_cpi=0.75, mlp=1.5),
        curve_factory=lambda: exponential_curve(
            miss_at_zero=0.85,
            miss_floor=0.08,
            half_size_lines=mb_to_lines(1.25),
            max_lines=_MAX_LINES,
        ),
        relative_work=relative,
        mean_service_ms=0.90,
        table1_requests=7500,
        table1_config="TPC-C, 10 warehouses",
        reuse_fraction=0.70,
    )


def _specjbb_spec() -> _LCSpec:
    # Middle-tier business logic: mostly small operations with a heavy
    # mode, memory-intensive with strong cross-request reuse.
    relative = MixtureWork.of(
        [
            TruncatedNormalWork(mean_work=0.60, cv=0.30),
            TruncatedNormalWork(mean_work=3.10, cv=0.30),
        ],
        [0.85, 0.15],
    )
    return _LCSpec(
        profile=AppProfile("specjbb", apki=16.3, base_cpi=0.70, mlp=2.0),
        curve_factory=lambda: exponential_curve(
            miss_at_zero=0.88,
            miss_floor=0.10,
            half_size_lines=mb_to_lines(1.5),
            max_lines=_MAX_LINES,
        ),
        relative_work=relative,
        mean_service_ms=0.19,
        table1_requests=37500,
        table1_config="1 warehouse",
        reuse_fraction=0.65,
    )


_SPECS: Dict[str, Callable[[], _LCSpec]] = {
    "xapian": _xapian_spec,
    "masstree": _masstree_spec,
    "moses": _moses_spec,
    "shore": _shore_spec,
    "specjbb": _specjbb_spec,
}

LC_NAMES: Tuple[str, ...] = tuple(_SPECS)


def make_lc_workload(
    name: str,
    target_mb: float = DEFAULT_TARGET_MB,
    mem_latency_cycles: float = DEFAULT_MEM_LATENCY,
    freq_hz: float = 3.2e9,
) -> LCWorkload:
    """Build one of the five LC workload models by name.

    Work is calibrated so the mean service time at a warm ``target_mb``
    allocation on an OOO core equals the Figure 1b mean.
    """
    try:
        spec = _SPECS[name]()
    except KeyError:
        raise ValueError(f"unknown LC workload {name!r}; choose from {LC_NAMES}") from None
    curve = spec.curve_factory()
    target_lines = mb_to_lines(target_mb)
    core = OutOfOrderCore(mem_latency_cycles)
    baseline_cpi = core.cpi(spec.profile, float(curve(target_lines)))
    mean_work = ms_to_cycles(spec.mean_service_ms, freq_hz) / baseline_cpi
    # Normalize: relative shapes are unit-mean by construction, but
    # mixtures drift slightly; divide by the actual mean so the
    # calibrated service time is exact.
    scale = mean_work / spec.relative_work.mean()
    return LCWorkload(
        name=name,
        profile=spec.profile,
        miss_curve=curve,
        work=spec.relative_work.scaled(scale),
        target_lines=target_lines,
        mean_service_ms=spec.mean_service_ms,
        table1_requests=spec.table1_requests,
        table1_config=spec.table1_config,
        reuse_fraction=spec.reuse_fraction,
    )


def all_lc_workloads(**kwargs) -> Dict[str, LCWorkload]:
    """All five LC workload models, keyed by name."""
    return {name: make_lc_workload(name, **kwargs) for name in LC_NAMES}


#: Paper Table 1, for the benchmark harness.
TABLE1_ROWS = tuple(
    (name, _SPECS[name]().table1_config, _SPECS[name]().table1_requests)
    for name in LC_NAMES
)
