"""Scalar reference implementations for stream synthesis (the oracle).

Mirrors the ``repro.cache.reference`` pattern from the hot-path
overhaul: when a hot loop is vectorized, the original scalar code
survives here as the behavioural oracle.  The property suite
(``tests/workloads/test_service_time_batch.py``) asserts that every
distribution's batched :meth:`~repro.workloads.service_time.WorkDistribution.sample_many`
reproduces these loops draw-for-draw **and** leaves the generator in
the identical state, and the ``stream_synthesis`` kernel of
``repro bench`` times the two paths against each other on the same
machine.

These functions are deliberately naive — per-request Python calls,
exactly as :meth:`~repro.sim.mix_runner.MixRunner.stream` was written
before vectorization — and must stay that way.
"""

from __future__ import annotations

import zlib
from typing import Tuple

import numpy as np

from ..workloads.arrivals import generate_arrivals
from ..workloads.service_time import WorkDistribution

__all__ = ["sample_stream", "synthesize_stream"]


def sample_stream(
    work: WorkDistribution, rng: np.random.Generator, count: int
) -> np.ndarray:
    """``count`` per-request works via the pre-vectorization scalar loop."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return np.asarray([work.sample(rng) for _ in range(count)], dtype=float)


def synthesize_stream(
    workload,
    load: float,
    instance: int,
    requests: int,
    seed: int,
    config,
) -> Tuple[np.ndarray, np.ndarray]:
    """One instance's ``(arrivals, works)`` via the scalar sampling loop.

    Reproduces :meth:`repro.sim.mix_runner.MixRunner.stream` — same
    seed derivation, same draw order — with the per-request
    ``work.sample`` loop the method used before ``sample_many``.  Used
    by the golden-compatibility unit tests to prove the vectorized
    stream path is byte-identical.
    """
    from ..cpu import make_core_model

    name_key = zlib.crc32(workload.name.encode()) & 0xFFFF
    rng = np.random.default_rng((seed, name_key, instance))
    works = sample_stream(workload.work, rng, requests)
    core = make_core_model(config.core_kind, config.mem_latency_cycles)
    mean_service = workload.mean_service_cycles(core)
    arrivals = generate_arrivals(
        requests,
        load,
        mean_service,
        rng,
        coalescing_timeout_cycles=config.coalescing_timeout_cycles,
    )
    return arrivals, works
