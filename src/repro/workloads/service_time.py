"""Distributions of per-request work, in instructions.

A latency-critical request's *service time* depends on cache state, so
the primitive quantity is the request's **work** (instructions to
retire).  Service time then follows from the core model and the miss
ratio trajectory during execution.  These distributions are calibrated
(in :mod:`repro.workloads.latency_critical`) so that, at the paper's
baseline (2 MB LLC, app running alone, warm cache), the resulting
service-time CDFs match the shapes of paper Figure 1b: near-constant
(masstree, moses), long-tailed (xapian), or multi-modal (shore,
specjbb).
"""

from __future__ import annotations

import abc
import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "WorkDistribution",
    "DeterministicWork",
    "TruncatedNormalWork",
    "LognormalWork",
    "MixtureWork",
]


def _normal_cdf(x: float) -> float:
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


class WorkDistribution(abc.ABC):
    """A distribution over per-request instruction counts."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one request's work (instructions, strictly positive)."""

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` requests' works as one float64 array.

        The contract — property-tested against the scalar oracle in
        ``repro.workloads.reference`` — is **bit-identical streams**:
        the returned values equal ``count`` successive :meth:`sample`
        calls *and* the generator is left in the exact same state, so
        anything drawn afterwards (e.g. arrival gaps) is unchanged.
        Subclasses override with vectorized draws where numpy's batched
        generator calls consume the identical bit stream; this fallback
        keeps arbitrary third-party distributions correct by simply
        running the scalar loop.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        return np.asarray([self.sample(rng) for _ in range(count)], dtype=float)

    @abc.abstractmethod
    def mean(self) -> float:
        """Expected work per request."""

    @abc.abstractmethod
    def cdf(self, work: float) -> float:
        """P(request work <= ``work``)."""

    @abc.abstractmethod
    def scaled(self, factor: float) -> "WorkDistribution":
        """This distribution with all work multiplied by ``factor``."""

    def percentile(self, q: float) -> float:
        """Inverse CDF by bisection (``q`` in (0, 1))."""
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        lo, hi = 0.0, max(self.mean(), 1.0)
        while self.cdf(hi) < q:
            hi *= 2.0
            if hi > 1e30:  # pragma: no cover - defensive
                raise RuntimeError("percentile search diverged")
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.cdf(mid) < q:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)


@dataclass(frozen=True)
class DeterministicWork(WorkDistribution):
    """Every request needs exactly ``work`` instructions."""

    work: float

    def __post_init__(self) -> None:
        if self.work <= 0:
            raise ValueError("work must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        return self.work

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """``count`` copies of ``work`` (consumes no random draws)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return np.full(count, self.work, dtype=float)

    def mean(self) -> float:
        return self.work

    def cdf(self, work: float) -> float:
        return 1.0 if work >= self.work else 0.0

    def scaled(self, factor: float) -> "DeterministicWork":
        return DeterministicWork(self.work * factor)


@dataclass(frozen=True)
class TruncatedNormalWork(WorkDistribution):
    """Near-constant work: normal, truncated below at ``floor_frac*mean``.

    Models services like masstree whose per-request work is tightly
    distributed around the mean (paper Figure 1b).
    """

    mean_work: float
    cv: float
    floor_frac: float = 0.1

    def __post_init__(self) -> None:
        if self.mean_work <= 0:
            raise ValueError("mean_work must be positive")
        if self.cv < 0:
            raise ValueError("cv must be non-negative")
        if not 0.0 < self.floor_frac < 1.0:
            raise ValueError("floor_frac must be in (0, 1)")

    @property
    def _sigma(self) -> float:
        return self.mean_work * self.cv

    @property
    def _floor(self) -> float:
        return self.mean_work * self.floor_frac

    def sample(self, rng: np.random.Generator) -> float:
        draw = rng.normal(self.mean_work, self._sigma)
        return max(draw, self._floor)

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Batched truncated-normal draws, bit-identical to the scalar
        loop: ``Generator.normal(size=n)`` consumes the same bit stream
        as ``n`` scalar calls, and ``np.maximum`` applies the floor
        elementwise exactly as ``max`` does per draw."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return np.maximum(rng.normal(self.mean_work, self._sigma, size=count), self._floor)

    def mean(self) -> float:
        # Truncation bias is negligible for the small CVs we use
        # (floor sits many sigmas below the mean).
        return self.mean_work

    def cdf(self, work: float) -> float:
        if work < self._floor:
            return 0.0
        if self._sigma == 0:
            return 1.0 if work >= self.mean_work else 0.0
        return _normal_cdf((work - self.mean_work) / self._sigma)

    def scaled(self, factor: float) -> "TruncatedNormalWork":
        return TruncatedNormalWork(self.mean_work * factor, self.cv, self.floor_frac)


@dataclass(frozen=True)
class LognormalWork(WorkDistribution):
    """Long-tailed work: lognormal with log-scale ``sigma``.

    Models query-dependent services like xapian search, whose
    service-time CDF in Figure 1b rises quickly but has a long tail.
    ``mean_work`` is the distribution mean (not the median).
    """

    mean_work: float
    sigma: float

    def __post_init__(self) -> None:
        if self.mean_work <= 0:
            raise ValueError("mean_work must be positive")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    @property
    def _mu(self) -> float:
        # E[lognormal(mu, sigma)] = exp(mu + sigma^2/2)
        return math.log(self.mean_work) - 0.5 * self.sigma**2

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self._mu, self.sigma))

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Batched lognormal draws; ``Generator.lognormal(size=n)``
        consumes the identical bit stream as ``n`` scalar calls."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return rng.lognormal(self._mu, self.sigma, size=count)

    def mean(self) -> float:
        return self.mean_work

    def cdf(self, work: float) -> float:
        if work <= 0:
            return 0.0
        if self.sigma == 0:
            return 1.0 if work >= self.mean_work else 0.0
        return _normal_cdf((math.log(work) - self._mu) / self.sigma)

    def scaled(self, factor: float) -> "LognormalWork":
        return LognormalWork(self.mean_work * factor, self.sigma)


@dataclass(frozen=True)
class MixtureWork(WorkDistribution):
    """Multi-modal work: a finite mixture of component distributions.

    Models services with distinct request classes, such as shore-mt
    (TPC-C transaction types) and specjbb (business-logic operations),
    whose CDFs in Figure 1b show clear modes.
    """

    components: Tuple[WorkDistribution, ...]
    weights: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.components) != len(self.weights):
            raise ValueError("one weight per component required")
        if not self.components:
            raise ValueError("mixture needs at least one component")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise ValueError("weights must be non-negative, not all zero")

    @classmethod
    def of(
        cls,
        components: Sequence[WorkDistribution],
        weights: Sequence[float],
    ) -> "MixtureWork":
        return cls(tuple(components), tuple(weights))

    @property
    def _probs(self) -> np.ndarray:
        weights = np.asarray(self.weights, dtype=float)
        return weights / weights.sum()

    def sample(self, rng: np.random.Generator) -> float:
        index = rng.choice(len(self.components), p=self._probs)
        return self.components[index].sample(rng)

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Batched mixture draws, bit-identical to the scalar loop.

        A mixture's random stream is inherently sequential — the
        component pick and the component's own draw interleave per
        request, and the ziggurat normal consumes a data-dependent
        number of raw words — so this cannot reorder draws the way the
        pure distributions can.  Instead it reproduces
        ``Generator.choice`` exactly with one uniform plus a
        ``bisect_right`` over the precomputed probability CDF (that is
        precisely choice's internal ``cdf.searchsorted(random(),
        side="right")``), hoisting the per-draw weight normalization,
        argument validation, and array construction out of the loop.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        cdf = np.cumsum(self._probs)
        cdf /= cdf[-1]
        boundaries = cdf.tolist()
        components = self.components
        random = rng.random
        out = np.empty(count, dtype=float)
        for index in range(count):
            out[index] = components[bisect_right(boundaries, random())].sample(rng)
        return out

    def mean(self) -> float:
        return float(
            sum(p * comp.mean() for p, comp in zip(self._probs, self.components))
        )

    def cdf(self, work: float) -> float:
        return float(
            sum(p * comp.cdf(work) for p, comp in zip(self._probs, self.components))
        )

    def scaled(self, factor: float) -> "MixtureWork":
        return MixtureWork(
            tuple(comp.scaled(factor) for comp in self.components), self.weights
        )
