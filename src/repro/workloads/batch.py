"""Batch (SPEC CPU2006-like) workload models.

The paper classifies the 29 SPEC CPU2006 apps into four cache-behaviour
types, following the Vantage methodology: **insensitive** (n),
**cache-friendly** (f), **cache-fitting** (t), and **streaming** (s),
and builds mixes from random draws of each type.  We model each type
parametrically: a named instance drawn from a per-class pool with
class-appropriate APKI, MLP, and miss-curve shape.  All policies
consume only (profile, miss curve), so this captures exactly the
behaviour space the paper's 40 batch mixes sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..cpu import AppProfile
from ..monitor.miss_curve import MissCurve
from ..units import mb_to_lines
from .curve_shapes import exponential_curve, flat_curve, knee_curve

__all__ = [
    "BATCH_CLASSES",
    "BATCH_CLASS_NAMES",
    "BatchWorkload",
    "make_batch_workload",
    "random_batch_workload",
]

#: The four cache-behaviour classes: insensitive, friendly, fitting, streaming.
BATCH_CLASSES: Tuple[str, ...] = ("n", "f", "t", "s")

BATCH_CLASS_NAMES: Dict[str, str] = {
    "n": "insensitive",
    "f": "cache-friendly",
    "t": "cache-fitting",
    "s": "streaming",
}

#: SPEC CPU2006 names per class (classification follows Vantage Table 2).
_NAME_POOLS: Dict[str, Tuple[str, ...]] = {
    "n": ("povray", "gamess", "namd", "gromacs", "calculix", "perlbench", "tonto"),
    "f": ("omnetpp", "astar", "gcc", "bzip2", "zeusmp", "cactusADM", "mcf"),
    "t": ("xalancbmk", "sphinx3", "hmmer", "h264ref", "gobmk", "soplex"),
    "s": ("libquantum", "lbm", "milc", "bwaves", "leslie3d", "GemsFDTD"),
}

_MAX_LINES = mb_to_lines(12.0)


@dataclass(frozen=True)
class BatchWorkload:
    """A batch application model: profile plus steady-state miss curve."""

    name: str
    batch_class: str
    profile: AppProfile
    miss_curve: MissCurve

    def __post_init__(self) -> None:
        if self.batch_class not in BATCH_CLASSES:
            raise ValueError(f"unknown batch class {self.batch_class!r}")

    @property
    def class_name(self) -> str:
        return BATCH_CLASS_NAMES[self.batch_class]


def _insensitive(rng: np.random.Generator) -> Tuple[AppProfile, MissCurve]:
    # Working set fits in the private levels: low APKI, little to gain.
    apki = rng.uniform(0.2, 2.0)
    profile_kwargs = dict(
        apki=apki,
        base_cpi=rng.uniform(0.5, 0.8),
        mlp=rng.uniform(1.5, 3.0),
    )
    curve = exponential_curve(
        miss_at_zero=rng.uniform(0.2, 0.5),
        miss_floor=rng.uniform(0.02, 0.1),
        half_size_lines=mb_to_lines(rng.uniform(0.1, 0.4)),
        max_lines=_MAX_LINES,
    )
    return profile_kwargs, curve


def _friendly(rng: np.random.Generator) -> Tuple[AppProfile, MissCurve]:
    # Smoothly improving with capacity across the whole LLC range.
    profile_kwargs = dict(
        apki=rng.uniform(4.0, 15.0),
        base_cpi=rng.uniform(0.6, 1.0),
        mlp=rng.uniform(1.2, 2.5),
    )
    curve = exponential_curve(
        miss_at_zero=rng.uniform(0.5, 0.9),
        miss_floor=rng.uniform(0.05, 0.2),
        half_size_lines=mb_to_lines(rng.uniform(0.75, 2.5)),
        max_lines=_MAX_LINES,
    )
    return profile_kwargs, curve


def _fitting(rng: np.random.Generator) -> Tuple[AppProfile, MissCurve]:
    # A working set that fits abruptly at some size within the LLC.
    profile_kwargs = dict(
        apki=rng.uniform(3.0, 12.0),
        base_cpi=rng.uniform(0.6, 1.0),
        mlp=rng.uniform(1.2, 2.0),
    )
    curve = knee_curve(
        miss_at_zero=rng.uniform(0.6, 0.95),
        miss_floor=rng.uniform(0.03, 0.1),
        knee_lines=mb_to_lines(rng.uniform(1.0, 5.0)),
        max_lines=_MAX_LINES,
        sharpness=rng.uniform(6.0, 12.0),
    )
    return profile_kwargs, curve


def _streaming(rng: np.random.Generator) -> Tuple[AppProfile, MissCurve]:
    # Scans with no reuse at LLC sizes: high APKI, flat high miss ratio.
    profile_kwargs = dict(
        apki=rng.uniform(15.0, 40.0),
        base_cpi=rng.uniform(0.7, 1.1),
        mlp=rng.uniform(2.0, 6.0),
    )
    curve = flat_curve(
        miss_ratio=rng.uniform(0.85, 1.0),
        max_lines=_MAX_LINES,
    )
    return profile_kwargs, curve


_GENERATORS = {
    "n": _insensitive,
    "f": _friendly,
    "t": _fitting,
    "s": _streaming,
}


def random_batch_workload(
    batch_class: str, rng: np.random.Generator, instance: int = 0
) -> BatchWorkload:
    """Draw a random batch app of the given class.

    ``instance`` disambiguates multiple apps of the same class within
    one mix (they get distinct pool names and parameters).
    """
    if batch_class not in BATCH_CLASSES:
        raise ValueError(f"unknown batch class {batch_class!r}")
    pool = _NAME_POOLS[batch_class]
    base_name = pool[int(rng.integers(len(pool)))]
    profile_kwargs, curve = _GENERATORS[batch_class](rng)
    name = f"{base_name}.{instance}"
    profile = AppProfile(name=name, **profile_kwargs)
    return BatchWorkload(
        name=name, batch_class=batch_class, profile=profile, miss_curve=curve
    )


def make_batch_workload(
    batch_class: str, seed: int, instance: int = 0
) -> BatchWorkload:
    """Deterministic batch app from a seed (for reproducible mixes)."""
    rng = np.random.default_rng(seed)
    return random_batch_workload(batch_class, rng, instance)
