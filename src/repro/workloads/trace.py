"""Synthetic address-trace generation for trace-driven experiments.

The mix engine is analytic, but two parts of the reproduction need real
address streams: the Figure 2 reuse-breakdown characterization and the
validation of the trace-driven cache arrays (set-associative, zcache,
Vantage, way-partitioning).

Each latency-critical app's trace is structured the way Section 3.4
describes the workloads: a **hot shared working set** reused across
requests (zipfian popularity — e.g. the search index, the key-value
table, database pages), plus a **per-request private footprint**
(request parsing, temporaries) that is never reused by later requests.
The balance between the two, and the hot-set size relative to the
cache, determine how many hits land on lines last touched by earlier
requests — the paper's *inertia* signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .latency_critical import LCWorkload

__all__ = ["ZipfSampler", "TraceConfig", "lc_trace_config", "generate_request_trace"]


class ZipfSampler:
    """Bounded zipfian sampler over ranks ``0..n-1`` (p(r) ~ 1/(r+1)^a)."""

    def __init__(self, num_items: int, alpha: float = 0.9):
        if num_items < 1:
            raise ValueError("need at least one item")
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.num_items = num_items
        self.alpha = alpha
        weights = 1.0 / np.power(np.arange(1, num_items + 1, dtype=float), alpha)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` ranks (popular ranks are low numbers)."""
        uniforms = rng.random(count)
        return np.searchsorted(self._cdf, uniforms).astype(np.int64)


@dataclass(frozen=True)
class TraceConfig:
    """Shape of a synthetic LC request trace.

    ``hot_lines`` is the cross-request shared working set;
    ``private_lines_per_request`` are fresh lines unique to a request;
    ``shared_fraction`` of accesses target the hot set.
    """

    hot_lines: int
    private_lines_per_request: int
    accesses_per_request: int
    shared_fraction: float
    # Mildly skewed popularity: steep zipfians concentrate accesses on
    # a few lines that repeat *within* a request, understating the
    # cross-request reuse the paper measures (Figure 2: >50% of hits
    # come from lines last touched by earlier requests).
    zipf_alpha: float = 0.5

    def __post_init__(self) -> None:
        if self.hot_lines < 1 or self.accesses_per_request < 1:
            raise ValueError("hot set and accesses must be positive")
        if self.private_lines_per_request < 0:
            raise ValueError("private footprint must be non-negative")
        if not 0.0 <= self.shared_fraction <= 1.0:
            raise ValueError("shared_fraction must be in [0, 1]")


def lc_trace_config(
    workload: LCWorkload,
    cache_lines: int,
    scale: float = 1.0,
) -> TraceConfig:
    """Derive a trace shape from an LC workload model.

    The hot set is sized from the workload's miss curve: it spans the
    capacity range over which the curve still improves (twice the
    allocation where the curve flattens would always fit, so we use the
    curve's characteristic scale relative to the 2 MB target).  The
    shared fraction comes from the measured cross-request reuse
    fraction (Figure 2).  ``scale`` shrinks everything proportionally
    so the trace-driven experiments run at laptop scale.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    # Hot set: the allocation beyond which extra capacity stops paying.
    curve = workload.miss_curve
    floor = float(curve.miss_ratios[-1])
    span = float(curve.miss_ratios[0]) - floor
    sizes = curve.sizes
    if span <= 1e-9:
        hot = max(1, int(cache_lines * 0.5 * scale))
    else:
        # First size where 90% of the achievable gain is realized.
        gains = (curve.miss_ratios[0] - curve.miss_ratios) / span
        idx = int(np.searchsorted(gains, 0.9))
        idx = min(idx, len(sizes) - 1)
        hot = max(16, int(float(sizes[idx]) * scale))
    accesses = max(32, int(workload.profile.accesses_for(workload.work.mean()) * scale))
    # The curve's floor is the share of accesses that miss at any
    # capacity — compulsory traffic.  Private (never-reused) lines are
    # sized so first touches account for exactly that share; remaining
    # private accesses re-touch those lines within the request.
    private_count = accesses * (1.0 - workload.reuse_fraction)
    private = int(round(accesses * floor))
    private = max(1, min(private, int(private_count)) if private_count >= 1 else 1)
    # Keep per-line touch counts sane for very low floors.
    private = max(private, int(private_count / 16))
    return TraceConfig(
        hot_lines=hot,
        private_lines_per_request=private,
        accesses_per_request=accesses,
        shared_fraction=workload.reuse_fraction,
    )


def generate_request_trace(
    config: TraceConfig,
    num_requests: int,
    rng: np.random.Generator,
) -> List[np.ndarray]:
    """Generate per-request arrays of line addresses.

    Shared accesses draw zipfian ranks from the hot set (address space
    ``[0, hot_lines)``); private accesses walk fresh addresses above
    the hot set, each touched once or twice, never reused by later
    requests.
    """
    if num_requests < 1:
        raise ValueError("need at least one request")
    sampler = ZipfSampler(config.hot_lines, config.zipf_alpha)
    next_private = np.int64(config.hot_lines)
    requests: List[np.ndarray] = []
    for _ in range(num_requests):
        total = config.accesses_per_request
        shared_count = int(round(total * config.shared_fraction))
        private_count = total - shared_count
        shared = sampler.sample(shared_count, rng)
        if private_count > 0 and config.private_lines_per_request > 0:
            lines = np.arange(
                next_private,
                next_private + config.private_lines_per_request,
                dtype=np.int64,
            )
            next_private += config.private_lines_per_request
            picks = rng.integers(0, lines.size, size=private_count)
            private = lines[picks]
        else:
            private = np.empty(0, dtype=np.int64)
        merged = np.concatenate([shared, private])
        rng.shuffle(merged)
        requests.append(merged)
    return requests
