"""Parametric miss-curve generators.

Real miss curves come from UMONs; for the synthetic workload models we
construct curves from a small set of shapes that span the behaviours
the paper describes: smooth exponential decline (cache-friendly apps
and most LC workloads), a knee (cache-fitting apps, and moses, whose
reuse only appears beyond ~4 MB), and flat curves (streaming or
insensitive apps).  All sizes are in cache lines.
"""

from __future__ import annotations

import numpy as np

from ..monitor.miss_curve import MissCurve

__all__ = [
    "exponential_curve",
    "knee_curve",
    "flat_curve",
    "plateau_then_decline_curve",
    "DEFAULT_POINTS",
]

#: Sample density of generated curves; matches the paper's 256-point
#: post-interpolation UMON resolution (plus the zero point).
DEFAULT_POINTS = 257


def _sizes(max_lines: float, points: int) -> np.ndarray:
    if max_lines <= 0:
        raise ValueError("max_lines must be positive")
    if points < 2:
        raise ValueError("need at least two points")
    return np.linspace(0.0, float(max_lines), points)


def exponential_curve(
    miss_at_zero: float,
    miss_floor: float,
    half_size_lines: float,
    max_lines: float,
    points: int = DEFAULT_POINTS,
) -> MissCurve:
    """Smoothly declining curve: halves its excess every ``half_size``.

    ``m(s) = floor + (m0 - floor) * 2^(-s / half_size)``.  Models apps
    with a working set of graded hotness (shore, specjbb, most
    cache-friendly SPEC apps).
    """
    if not 0 <= miss_floor <= miss_at_zero <= 1:
        raise ValueError("need 0 <= floor <= m0 <= 1")
    if half_size_lines <= 0:
        raise ValueError("half_size_lines must be positive")
    sizes = _sizes(max_lines, points)
    ratios = miss_floor + (miss_at_zero - miss_floor) * np.exp2(
        -sizes / half_size_lines
    )
    return MissCurve(sizes, ratios)


def knee_curve(
    miss_at_zero: float,
    miss_floor: float,
    knee_lines: float,
    max_lines: float,
    sharpness: float = 8.0,
    points: int = DEFAULT_POINTS,
) -> MissCurve:
    """Cache-fitting shape: high until the working set fits, then low.

    A logistic drop centred at ``knee_lines``; ``sharpness`` controls
    how abrupt the transition is (higher = sharper).
    """
    if not 0 <= miss_floor <= miss_at_zero <= 1:
        raise ValueError("need 0 <= floor <= m0 <= 1")
    if knee_lines <= 0:
        raise ValueError("knee_lines must be positive")
    sizes = _sizes(max_lines, points)
    logistic = 1.0 / (1.0 + np.exp(-sharpness * (sizes - knee_lines) / knee_lines))
    at_zero = 1.0 / (1.0 + np.exp(sharpness))
    # Normalize so m(0) == miss_at_zero exactly.
    frac = (logistic - at_zero) / (1.0 - at_zero)
    ratios = miss_at_zero - (miss_at_zero - miss_floor) * np.clip(frac, 0.0, 1.0)
    return MissCurve(sizes, ratios)


def flat_curve(miss_ratio: float, max_lines: float) -> MissCurve:
    """Size-insensitive curve (streaming apps, or tiny working sets)."""
    return MissCurve.constant(miss_ratio, max_lines)


def plateau_then_decline_curve(
    miss_plateau: float,
    miss_floor: float,
    plateau_lines: float,
    half_size_lines: float,
    max_lines: float,
    points: int = DEFAULT_POINTS,
) -> MissCurve:
    """Flat at ``miss_plateau`` until ``plateau_lines``, then exponential.

    Models moses: "no reuse at 2MB, but ... significant reuse at
    around 4MB" (paper Section 7.1) — nothing to gain until the
    allocation covers the plateau, then steady gains.
    """
    if not 0 <= miss_floor <= miss_plateau <= 1:
        raise ValueError("need 0 <= floor <= plateau <= 1")
    if plateau_lines < 0 or half_size_lines <= 0:
        raise ValueError("invalid plateau or half size")
    sizes = _sizes(max_lines, points)
    excess = np.where(
        sizes <= plateau_lines,
        1.0,
        np.exp2(-(sizes - plateau_lines) / half_size_lines),
    )
    ratios = miss_floor + (miss_plateau - miss_floor) * excess
    return MissCurve(sizes, ratios)
