"""Workload-mix construction (paper Section 6).

The paper's methodology: classify batch apps into four types, build
random three-app batch mixes for each of the 20 multisets of three
types (two mixes per combination, 40 total), and combine each with the
10 latency-critical configurations (5 apps x {20%, 60%} load) for
10 x 40 = 400 six-app mixes.  Each six-app mix runs three instances of
the same LC workload (distinct request streams) plus the three batch
apps, pinned to cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations_with_replacement
from typing import List, Sequence, Tuple

import numpy as np

from .batch import BATCH_CLASSES, BatchWorkload, random_batch_workload
from .latency_critical import LC_NAMES, LCWorkload, make_lc_workload

__all__ = [
    "LOW_LOAD",
    "HIGH_LOAD",
    "load_label",
    "MixSpec",
    "batch_type_combos",
    "make_batch_mix",
    "make_all_batch_mixes",
    "make_mix_specs",
]

#: The paper's two operating points for LC apps (Section 6).
LOW_LOAD = 0.2
HIGH_LOAD = 0.6

#: LC instances and batch apps per six-core mix.
LC_INSTANCES = 3
BATCH_APPS = 3


def load_label(load: float) -> str:
    """``"lo"``/``"hi"`` bucket for an LC load (midpoint threshold)."""
    return "lo" if load <= (LOW_LOAD + HIGH_LOAD) / 2 else "hi"


@dataclass(frozen=True)
class MixSpec:
    """One six-app mix: an LC workload at a load plus three batch apps."""

    mix_id: str
    lc_workload: LCWorkload
    load: float
    batch_apps: Tuple[BatchWorkload, ...]
    batch_combo: str

    def __post_init__(self) -> None:
        if len(self.batch_apps) != BATCH_APPS:
            raise ValueError(f"a mix needs exactly {BATCH_APPS} batch apps")
        if not 0.0 < self.load < 1.0:
            raise ValueError("load must be in (0, 1)")

    @property
    def load_label(self) -> str:
        return load_label(self.load)


def batch_type_combos() -> List[Tuple[str, str, str]]:
    """The 20 multisets of three batch types (nnn, nnf, ..., sss)."""
    return list(combinations_with_replacement(BATCH_CLASSES, 3))


def make_batch_mix(
    combo: Sequence[str], seed: int
) -> Tuple[BatchWorkload, ...]:
    """One random three-app batch mix for a type combination."""
    if len(combo) != BATCH_APPS:
        raise ValueError(f"combo must name {BATCH_APPS} types")
    rng = np.random.default_rng(seed)
    return tuple(
        random_batch_workload(cls, rng, instance=i) for i, cls in enumerate(combo)
    )


def make_all_batch_mixes(
    mixes_per_combo: int = 2, seed: int = 2014
) -> List[Tuple[str, Tuple[BatchWorkload, ...]]]:
    """All batch mixes: ``mixes_per_combo`` per type combination.

    With the paper's defaults this yields 20 x 2 = 40 mixes; smaller
    values produce scaled-down but methodologically identical sets.
    """
    if mixes_per_combo < 1:
        raise ValueError("need at least one mix per combination")
    mixes: List[Tuple[str, Tuple[BatchWorkload, ...]]] = []
    for combo_index, combo in enumerate(batch_type_combos()):
        label = "".join(combo)
        for rep in range(mixes_per_combo):
            mix_seed = seed + combo_index * 1000 + rep
            mixes.append((f"{label}.{rep}", make_batch_mix(combo, mix_seed)))
    return mixes


def make_mix_specs(
    lc_names: Sequence[str] | None = None,
    loads: Sequence[float] = (LOW_LOAD, HIGH_LOAD),
    mixes_per_combo: int = 2,
    seed: int = 2014,
    target_mb: float = 2.0,
) -> List[MixSpec]:
    """The full cross product of LC configurations and batch mixes.

    Paper scale: 5 LC apps x 2 loads x 40 batch mixes = 400 specs.
    Pass smaller ``lc_names``/``loads``/``mixes_per_combo`` for scaled
    runs; the construction is deterministic in ``seed``.
    """
    names = tuple(lc_names) if lc_names is not None else LC_NAMES
    unknown = set(names) - set(LC_NAMES)
    if unknown:
        raise ValueError(f"unknown LC workloads: {sorted(unknown)}")
    batch_mixes = make_all_batch_mixes(mixes_per_combo, seed)
    specs: List[MixSpec] = []
    for name in names:
        workload = make_lc_workload(name, target_mb=target_mb)
        for load in loads:
            for combo_label, batch_apps in batch_mixes:
                specs.append(
                    MixSpec(
                        mix_id=f"{name}-{load_label(load)}-{combo_label}",
                        lc_workload=workload,
                        load=load,
                        batch_apps=batch_apps,
                        batch_combo=combo_label,
                    )
                )
    return specs
