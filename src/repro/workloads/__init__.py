"""Workload models: latency-critical apps, batch apps, traces, arrivals."""

from .arrivals import InterruptCoalescer, PoissonArrivals, generate_arrivals
from .batch import (
    BATCH_CLASSES,
    BATCH_CLASS_NAMES,
    BatchWorkload,
    make_batch_workload,
    random_batch_workload,
)
from .curve_shapes import (
    exponential_curve,
    flat_curve,
    knee_curve,
    plateau_then_decline_curve,
)
from .latency_critical import (
    DEFAULT_TARGET_MB,
    LC_NAMES,
    TABLE1_ROWS,
    LCWorkload,
    all_lc_workloads,
    make_lc_workload,
)
from .mixes import (
    HIGH_LOAD,
    LOW_LOAD,
    MixSpec,
    batch_type_combos,
    make_all_batch_mixes,
    make_batch_mix,
    make_mix_specs,
)
from .service_time import (
    DeterministicWork,
    LognormalWork,
    MixtureWork,
    TruncatedNormalWork,
    WorkDistribution,
)
from .trace import TraceConfig, ZipfSampler, generate_request_trace, lc_trace_config

__all__ = [
    "PoissonArrivals",
    "InterruptCoalescer",
    "generate_arrivals",
    "BATCH_CLASSES",
    "BATCH_CLASS_NAMES",
    "BatchWorkload",
    "make_batch_workload",
    "random_batch_workload",
    "exponential_curve",
    "flat_curve",
    "knee_curve",
    "plateau_then_decline_curve",
    "LC_NAMES",
    "TABLE1_ROWS",
    "DEFAULT_TARGET_MB",
    "LCWorkload",
    "all_lc_workloads",
    "make_lc_workload",
    "LOW_LOAD",
    "HIGH_LOAD",
    "MixSpec",
    "batch_type_combos",
    "make_batch_mix",
    "make_all_batch_mixes",
    "make_mix_specs",
    "WorkDistribution",
    "DeterministicWork",
    "TruncatedNormalWork",
    "LognormalWork",
    "MixtureWork",
    "TraceConfig",
    "ZipfSampler",
    "lc_trace_config",
    "generate_request_trace",
]
