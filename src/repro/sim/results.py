"""Result containers for mix simulations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..server.latency import tail_mean

__all__ = ["LCInstanceResult", "BatchAppResult", "MixResult"]


@dataclass
class LCInstanceResult:
    """Measured behaviour of one latency-critical instance."""

    name: str
    latencies: List[float] = field(default_factory=list)  # cycles, post-warmup
    requests_served: int = 0
    activations: int = 0
    deboosts: int = 0
    watermarks: int = 0

    def tail95(self) -> float:
        return tail_mean(self.latencies, 95.0)

    def mean_latency(self) -> float:
        return float(np.mean(self.latencies))


@dataclass
class BatchAppResult:
    """Measured behaviour of one batch app over the run."""

    name: str
    instructions: float = 0.0
    cycles: float = 0.0
    baseline_ipc: float = 0.0  # IPC with a private 2 MB LLC (steady)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def speedup(self) -> float:
        if self.baseline_ipc <= 0:
            return 0.0
        return self.ipc / self.baseline_ipc


@dataclass
class MixResult:
    """Everything measured from one six-app mix run."""

    mix_id: str
    policy: str
    lc_instances: List[LCInstanceResult]
    batch_apps: List[BatchAppResult]
    duration_cycles: float
    baseline_tail_cycles: float = 0.0

    def all_lc_latencies(self) -> np.ndarray:
        """Pooled latencies across the three LC instances.

        The paper reports per-mix tails over all instances together.
        """
        pools = [inst.latencies for inst in self.lc_instances if inst.latencies]
        if not pools:
            return np.empty(0)
        return np.concatenate([np.asarray(p) for p in pools])

    def tail95(self) -> float:
        return tail_mean(self.all_lc_latencies(), 95.0)

    def tail_degradation(self) -> float:
        """Tail latency vs the isolated 2 MB private baseline."""
        if self.baseline_tail_cycles <= 0:
            raise ValueError("baseline tail not set")
        return self.tail95() / self.baseline_tail_cycles

    def weighted_speedup(self) -> float:
        """Batch multiprogrammed speedup vs private LLCs (paper Sec 6)."""
        if not self.batch_apps:
            return 1.0
        return float(np.mean([b.speedup for b in self.batch_apps]))

    def summary(self) -> Dict[str, float]:
        return {
            "tail_degradation": self.tail_degradation(),
            "weighted_speedup": self.weighted_speedup(),
            "duration_cycles": self.duration_cycles,
        }
