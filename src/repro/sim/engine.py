"""Event-driven six-app mix simulator (paper Sections 6-7).

The engine executes one workload mix — three instances of a
latency-critical (LC) workload plus three batch apps — on a shared LLC
under a partitioning policy.  It is *analytic at the access level*
(miss curves + the fill-state transient model of :mod:`repro.sim.fill`)
but *exact at the event level*: request arrivals, FIFO queueing,
idle/active transitions, periodic reconfigurations, de-boost and
watermark interrupts are all discrete events in one global timeline.

Two execution modes:

* **Partitioned** (UCP/StaticLC/OnOff/Ubik/Fixed): each app owns a
  partition with Vantage-style fill transients; policies set targets.
* **Unmanaged** (LRU): the shared-occupancy fluid model replaces
  partitions; apps contend through insertion rates.

The policy only sees monitor data (noisy UMON curves, counters), never
engine-internal state, so policy decisions carry hardware-realistic
information error.

Parallelism note (see ``docs/ARCHITECTURE.md``, "Trace sharding"):
one engine run is a single sequential event timeline — the six apps
are coupled through policy decisions, the shared batch-space integral,
and one RNG, so a *joint* mix replay cannot be split without changing
its semantics.  What *is* independent is each LC instance's isolated
baseline run (:meth:`MixEngine.isolated`): one instance, no batch
apps, a fixed partition, its own seed.  The runtime's trace sharding
(:mod:`repro.runtime.sharding`) exploits exactly that boundary.

The replay *can*, however, be batched **across sweep cells**: grid
cells that share streams and differ only in policy/scheme parameters
pass one :class:`~repro.sim.grid_replay.GroupShared` context via the
``shared`` parameter, hoisting every group-constant sub-computation
(curve segments, initial rates, stream statistics, first-interval view
statics) out of the per-cell loops while each cell keeps its own exact
event timeline — outputs stay bit-identical to the ungrouped run.
:mod:`repro.sim.lockstep` goes further still: inside a replay group
the per-cell event loop itself is no longer the unit of execution —
the lockstep engine advances *all* cells together over the group's
shared arrival arrays with SoA driver state, falling back to this
engine's scalar handlers only for cell-divergent events
(``REPRO_LOCKSTEP=0`` restores the grouped per-cell loop).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cache.schemes import SchemeModel
from ..cache.sharing import SharedOccupancyModel
from ..core.deboost import DeBoostTracker
from .bandwidth import BandwidthModel
from ..cpu import CoreModel, make_core_model
from ..monitor.miss_curve import MissCurve
from ..policies.base import AppView, BoostPlan, Decision, Policy, PolicyContext
from ..workloads.batch import BatchWorkload
from ..workloads.latency_critical import LCWorkload
from .config import CMPConfig
from .fill import FillState, GroupFillState
from .grid_replay import GroupShared
from .results import BatchAppResult, LCInstanceResult, MixResult

__all__ = ["LCInstanceSpec", "MixEngine"]

#: Chunks per service walk used to localize de-boost crossings.
_WALK_CHUNKS = 12

#: Epoch cap for the unmanaged (LRU) occupancy integration, cycles.
_LRU_EPOCH = 320_000  # 100 us at 3.2 GHz

_COMPLETION_TOL = 1e-6


@dataclass(frozen=True)
class LCInstanceSpec:
    """One LC instance: its workload model and pre-drawn request stream."""

    workload: LCWorkload
    arrivals: np.ndarray  # visible arrival times, cycles, sorted
    works: np.ndarray  # instructions per request
    deadline_cycles: float  # Ubik deadline: 95p latency at target size
    target_tail_cycles: float  # baseline tail target (mean beyond p95)
    load: float  # offered load, for initial estimates

    def __post_init__(self) -> None:
        if len(self.arrivals) != len(self.works):
            raise ValueError("arrivals and works must have equal length")
        if len(self.arrivals) == 0:
            raise ValueError("need at least one request")


@dataclass
class _IntervalStats:
    """Per-app counters over one reconfiguration interval."""

    accesses: float = 0.0
    misses: float = 0.0
    idle_time: float = 0.0
    activations: int = 0
    latencies: List[float] = field(default_factory=list)

    def reset(self) -> None:
        self.accesses = 0.0
        self.misses = 0.0
        self.idle_time = 0.0
        self.activations = 0
        self.latencies = []


class _App:
    """Engine-internal per-app state."""

    def __init__(
        self,
        index: int,
        name: str,
        kind: str,
        curve: MissCurve,
        profile,
        core: CoreModel,
        scheme: Optional[SchemeModel],
        shared: Optional[GroupShared] = None,
    ):
        self.index = index
        self.name = name
        self.kind = kind
        self.curve = curve
        self.profile = profile
        self.hit_interval = core.hit_interval(profile)
        self.miss_penalty = core.miss_penalty(profile)
        self.base_miss_penalty = self.miss_penalty  # before contention
        self.base_cpi = core.base_cpi(profile)
        if shared is None:
            self.fill = FillState(
                curve, self.hit_interval, self.miss_penalty, scheme=scheme
            )
        else:
            # Segment scope pins the exact (curve, scheme) pair, so
            # cells with different schemes never alias each other's
            # segments; retaining both keeps the ids stable.
            shared.retain(curve, scheme)
            self.fill = GroupFillState(
                curve,
                self.hit_interval,
                self.miss_penalty,
                scheme=scheme,
                shared_segments=shared.segments,
                seg_scope=(id(curve), id(scheme)),
                curve_tables=shared.tables_for(curve),
            )
        self.last_commit = 0.0
        self.stats = _IntervalStats()
        self.total_accesses = 0.0
        self.total_misses = 0.0
        self.measured_curve = curve  # refreshed with noise each interval

    @property
    def is_lc(self) -> bool:
        return self.kind == "lc"


class _LCApp(_App):
    def __init__(self, index, name, spec: LCInstanceSpec, core, scheme, shared=None):
        super().__init__(
            index, name, "lc", spec.workload.miss_curve, spec.workload.profile,
            core, scheme, shared,
        )
        self.spec = spec
        apki = spec.workload.profile.apki
        # Stream-constant statistics, computed once per stream: within
        # a replay group every cell replays the same frozen work array,
        # so the group context serves these to all siblings (the first
        # cell computes the same expressions the ungrouped path runs).
        stats = (
            shared.stream_stats.get((id(spec.works), apki))
            if shared is not None
            else None
        )
        if stats is not None:
            self.req_accesses, self.mean_req_accesses, self.tail_req_accesses = stats
        else:
            self.req_accesses = spec.works * apki / 1000.0
            self.mean_req_accesses = float(np.mean(self.req_accesses))
            self.tail_req_accesses = float(np.percentile(self.req_accesses, 95))
            if shared is not None:
                shared.retain(spec.works)
                shared.stream_stats[(id(spec.works), apki)] = (
                    self.req_accesses,
                    self.mean_req_accesses,
                    self.tail_req_accesses,
                )
        self.arrival_ptr = 0
        self.queue: List[int] = []
        self.serving: Optional[int] = None
        self.remaining = 0.0
        self.active = False
        self.version = 0
        self.tracker: Optional[DeBoostTracker] = None
        self.result = LCInstanceResult(name=name)
        self.requests_done = 0
        self._fixed_end = float("inf")  # completion time of zero-access requests

    @property
    def exhausted(self) -> bool:
        return (
            self.arrival_ptr >= len(self.spec.arrivals)
            and not self.queue
            and self.serving is None
        )


class _BatchApp(_App):
    def __init__(self, index, workload: BatchWorkload, core, scheme, baseline_ipc,
                 shared=None):
        super().__init__(
            index, workload.name, "batch", workload.miss_curve,
            workload.profile, core, scheme, shared,
        )
        self.result = BatchAppResult(name=workload.name, baseline_ipc=baseline_ipc)


class MixEngine:
    """Runs one mix under one policy; see module docstring."""

    def __init__(
        self,
        lc_specs: List[LCInstanceSpec],
        batch_workloads: List[BatchWorkload],
        policy: Policy,
        config: CMPConfig,
        scheme: Optional[SchemeModel] = None,
        seed: int = 0,
        umon_noise: float = 0.02,
        warmup_fraction: float = 0.05,
        baseline_lines: Optional[float] = None,
        mix_id: str = "mix",
        trace_partitions: bool = False,
        bandwidth: Optional[BandwidthModel] = None,
        shared: Optional[GroupShared] = None,
    ):
        if not lc_specs:
            raise ValueError("need at least one LC instance")
        if umon_noise < 0:
            raise ValueError("umon_noise must be non-negative")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        if shared is not None and bandwidth is not None:
            # Bandwidth contention rescales miss penalties per interval;
            # the bandwidth study runs outside replay groups, so reject
            # the combination rather than audit every shared key for it.
            raise ValueError("grouped replay does not support bandwidth contention")
        self.config = config
        self.policy = policy
        self.scheme = scheme if policy.uses_partitioning else None
        self.rng = np.random.default_rng(seed)
        self.umon_noise = umon_noise
        self.warmup_fraction = warmup_fraction
        self.mix_id = mix_id
        self.bandwidth = bandwidth
        self.shared = shared
        self.llc_lines = config.llc_lines
        core = make_core_model(config.core_kind, config.mem_latency_cycles)
        self.core = core
        base_lines = (
            baseline_lines
            if baseline_lines is not None
            else lc_specs[0].workload.target_lines
        )

        self.apps: List[_App] = []
        self.lc_apps: List[_LCApp] = []
        self.batch_apps: List[_BatchApp] = []
        for i, spec in enumerate(lc_specs):
            app = _LCApp(
                len(self.apps), f"{spec.workload.name}#{i}", spec, core,
                self.scheme, shared,
            )
            self.apps.append(app)
            self.lc_apps.append(app)
        for workload in batch_workloads:
            baseline_ipc = core.ipc(
                workload.profile, float(workload.miss_curve(base_lines))
            )
            app = _BatchApp(
                len(self.apps), workload, core, self.scheme, baseline_ipc, shared
            )
            self.apps.append(app)
            self.batch_apps.append(app)

        self.now = 0.0
        self._events: List[Tuple[float, int, str, int, int]] = []
        self._seq = itertools.count()
        self._interval_start = 0.0
        self._batch_space_integral = 0.0
        self._batch_space_last_t = 0.0
        self._avg_batch_lines = self._batch_space_now()
        self._first_interval = True
        #: Optional (time, target, resident) samples per app index,
        #: recorded at every commit — the raw data of paper Figs 4/6.
        self.trace_partitions = trace_partitions
        self.partition_trace: Dict[int, List[Tuple[float, float, float]]] = (
            {a.index: [] for a in self.apps} if trace_partitions else {}
        )

    @classmethod
    def isolated(
        cls,
        spec: LCInstanceSpec,
        config: CMPConfig,
        target_lines: float,
        seed: int,
        warmup_fraction: float = 0.05,
        mix_id: str = "isolated",
    ) -> "MixEngine":
        """An engine running one LC instance alone at a fixed partition.

        This is the paper's private-LLC baseline configuration (noise
        off, no batch apps, a :class:`~repro.policies.fixed.FixedPolicy`
        pinned at ``target_lines``) — and the unit of work the runtime's
        trace sharding fans across workers: isolated instances share no
        state, so any subset can run anywhere and merge exactly.
        Both :meth:`repro.sim.mix_runner.MixRunner.baseline_instance`
        and the scaleout study's baseline build their engines here so
        the sharded and serial paths cannot drift apart.
        """
        from ..policies.fixed import FixedPolicy

        return cls(
            lc_specs=[spec],
            batch_workloads=[],
            policy=FixedPolicy({0: float(target_lines)}),
            config=config,
            scheme=None,
            seed=seed,
            umon_noise=0.0,
            warmup_fraction=warmup_fraction,
            mix_id=mix_id,
        )

    # ------------------------------------------------------------------
    # Event queue helpers
    # ------------------------------------------------------------------
    def _push(self, time: float, kind: str, app_idx: int = -1, version: int = 0):
        heapq.heappush(self._events, (time, next(self._seq), kind, app_idx, version))

    # ------------------------------------------------------------------
    # Policy interfacing
    # ------------------------------------------------------------------
    def _refresh_measured_curves(self) -> None:
        for app in self.apps:
            if self.umon_noise > 0:
                app.measured_curve = app.curve.with_noise(self.rng, self.umon_noise)
            else:
                app.measured_curve = app.curve

    def _make_views(self) -> List[AppView]:
        if self.shared is not None and self._first_interval:
            return self._make_first_interval_views(self.shared)
        duration = max(self.now - self._interval_start, 1.0)
        views: List[AppView] = []
        for app in self.apps:
            if self._first_interval:
                access_rate = self._initial_access_rate(app)
            else:
                access_rate = app.stats.accesses / duration
            view = AppView(
                index=app.index,
                name=app.name,
                kind=app.kind,
                curve=app.measured_curve,
                apki=app.profile.apki,
                hit_interval=app.hit_interval,
                miss_penalty=app.miss_penalty,
                access_rate=access_rate,
            )
            if isinstance(app, _LCApp):
                view.target_lines = app.spec.workload.target_lines
                view.deadline_cycles = app.spec.deadline_cycles
                view.target_tail_cycles = app.spec.target_tail_cycles
                view.idle_fraction = (
                    1.0 - app.spec.load
                    if self._first_interval
                    else min(1.0, app.stats.idle_time / duration)
                )
                view.activation_rate = (
                    app.spec.load / max(app.spec.workload.mean_service_cycles(self.core), 1.0)
                    * (1.0 - app.spec.load)
                    if self._first_interval
                    else app.stats.activations / duration
                )
                view.recent_latencies = tuple(app.stats.latencies)
                served = max(app.requests_done, 1)
                view.accesses_per_request = (
                    app.mean_req_accesses
                    if self._first_interval
                    else app.total_accesses / served
                )
                view.tail_accesses_per_request = app.tail_req_accesses
            views.append(view)
        return views

    def _make_first_interval_views(self, shared: GroupShared) -> List[AppView]:
        """First-interval views from group-shared statics.

        Until the first reconfiguration every view field except
        ``recent_latencies`` and the noisy ``measured_curve`` is a pure
        function of the specs — identical across the cells of a replay
        group — so the tuple of those fields is computed once per group
        and reused.  Each entry holds exactly the values the general
        path below derives on its ``self._first_interval`` branches.
        """
        views: List[AppView] = []
        for app in self.apps:
            static = shared.view_static.get(app.index)
            if static is None:
                rate = self._initial_access_rate(app)
                if isinstance(app, _LCApp):
                    static = (
                        rate,
                        1.0 - app.spec.load,
                        app.spec.load
                        / max(app.spec.workload.mean_service_cycles(self.core), 1.0)
                        * (1.0 - app.spec.load),
                        app.mean_req_accesses,
                        app.tail_req_accesses,
                        app.spec.workload.target_lines,
                        app.spec.deadline_cycles,
                        app.spec.target_tail_cycles,
                    )
                else:
                    static = (rate,)
                shared.view_static[app.index] = static
            view = AppView(
                index=app.index,
                name=app.name,
                kind=app.kind,
                curve=app.measured_curve,
                apki=app.profile.apki,
                hit_interval=app.hit_interval,
                miss_penalty=app.miss_penalty,
                access_rate=static[0],
            )
            if isinstance(app, _LCApp):
                view.idle_fraction = static[1]
                view.activation_rate = static[2]
                view.accesses_per_request = static[3]
                view.tail_accesses_per_request = static[4]
                view.target_lines = static[5]
                view.deadline_cycles = static[6]
                view.target_tail_cycles = static[7]
                view.recent_latencies = tuple(app.stats.latencies)
            views.append(view)
        return views

    def _initial_access_rate(self, app: _App) -> float:
        shared = self.shared
        if shared is not None:
            rate = shared.rates.get(app.index)
            if rate is None:
                rate = self._compute_initial_access_rate(app)
                shared.rates[app.index] = rate
            return rate
        return self._compute_initial_access_rate(app)

    def _compute_initial_access_rate(self, app: _App) -> float:
        if isinstance(app, _LCApp):
            target = app.spec.workload.target_lines
            busy_rate = 1.0 / self.core.access_interval(
                app.profile, float(app.curve(target))
            )
            return app.spec.load * busy_rate
        share = self.llc_lines / max(1, len(self.apps))
        return 1.0 / self.core.access_interval(app.profile, float(app.curve(share)))

    def _make_context(self) -> PolicyContext:
        return PolicyContext(
            llc_lines=self.llc_lines,
            apps=self._make_views(),
            current_targets={a.index: a.fill.target for a in self.apps},
            now=self.now,
            avg_batch_lines=self._avg_batch_lines,
            lc_active={a.index: a.active for a in self.lc_apps},
            rng=self.rng,
            lc_boosted={
                a.index: a.tracker is not None and not a.tracker.fired
                for a in self.lc_apps
            },
        )

    # ------------------------------------------------------------------
    # Committing progress
    # ------------------------------------------------------------------
    def _commit(self, app: _App, upto: float) -> None:
        dt = upto - app.last_commit
        if dt < -1e-6:
            raise RuntimeError("time went backwards in commit")
        if dt <= 0:
            app.last_commit = upto
            return
        if isinstance(app, _BatchApp):
            adv = app.fill.advance_cycles(dt)
            instr = adv.accesses * app.profile.instructions_per_access
            app.result.instructions += instr
            app.result.cycles += dt
            app.stats.accesses += adv.accesses
            app.stats.misses += adv.misses
        else:
            lc = app  # type: _LCApp
            if lc.serving is not None and lc.remaining > 0:
                adv = lc.fill.advance_cycles(dt)
                done = min(adv.accesses, lc.remaining)
                lc.remaining -= done
                self._note_lc_progress(lc, adv.accesses, adv.misses)
                if lc.tracker is not None and not lc.tracker.fired:
                    lc.tracker.accumulate(adv.accesses, adv.misses, lc.fill.resident)
            elif lc.serving is None:
                lc.stats.idle_time += dt
            # Serving with zero LLC accesses: busy but cache-silent.
        app.last_commit = upto
        if self.trace_partitions:
            self.partition_trace[app.index].append(
                (upto, app.fill.target, app.fill.resident)
            )

    def _note_lc_progress(self, lc: _LCApp, accesses: float, misses: float):
        lc.stats.accesses += accesses
        lc.stats.misses += misses
        lc.total_accesses += accesses
        lc.total_misses += misses

    def _commit_batch(self, upto: float) -> None:
        for app in self.batch_apps:
            self._commit(app, upto)

    def _batch_space_now(self) -> float:
        lc_held = sum(a.fill.target for a in self.lc_apps)
        return max(0.0, self.llc_lines - lc_held)

    def _note_batch_space(self) -> None:
        dt = self.now - self._batch_space_last_t
        if dt > 0:
            self._batch_space_integral += self._batch_space_now() * dt
            self._batch_space_last_t = self.now

    # ------------------------------------------------------------------
    # Decision application
    # ------------------------------------------------------------------
    def _apply_decision(self, decision: Optional[Decision]) -> None:
        if decision is None:
            return
        self._note_batch_space()
        changed_lc: List[_LCApp] = []
        for idx, lines in decision.targets.items():
            app = self.apps[idx]
            if abs(app.fill.target - lines) < 1e-9:
                continue
            self._commit(app, self.now)
            app.fill.set_target(lines)
            if isinstance(app, _LCApp) and app.serving is not None:
                changed_lc.append(app)
        for idx, plan in decision.boost_plans.items():
            app = self.apps[idx]
            if not isinstance(app, _LCApp):
                raise ValueError("boost plans only apply to LC apps")
            active_ratio = float(app.curve(plan.active_lines))
            app.tracker = DeBoostTracker(plan, active_ratio)
        self._note_batch_space()
        for lc in changed_lc:
            lc.version += 1
            self._schedule_service(lc)

    # ------------------------------------------------------------------
    # Service walking
    # ------------------------------------------------------------------
    def _schedule_service(self, lc: _LCApp) -> None:
        """Walk the in-flight request and schedule its future events.

        The walk advances a detached fill clone through the request in
        ``_WALK_CHUNKS`` chunks, checking the de-boost and watermark
        crossings after each.  Chunks inside a fill transient integrate
        one at a time (residency, and hence the miss ratio, moves every
        chunk); once the partition sits at its target the miss ratio is
        constant, so all remaining chunks are evaluated **in one numpy
        batch**: the per-chunk cycle/projection/actual accumulators
        become seeded prefix sums (``np.cumsum`` over ``[seed, inc...]``
        is exactly the sequential ``+=`` recurrence, element for
        element) and the crossing checks become boolean masks.  The
        first triggered index reproduces the scalar loop's break
        behaviour, so event times are bit-identical to the chunked
        walk the golden suite pinned.
        """
        if lc.serving is None:
            return
        fill = lc.fill.clone()
        remaining = lc.remaining
        t = self.now
        tracker = lc.tracker
        proj = tracker.projected if tracker and not tracker.fired else 0.0
        actual = tracker.actual if tracker and not tracker.fired else 0.0
        filled = tracker.filled if tracker and not tracker.fired else False
        armed = tracker is not None and not tracker.fired
        limit = self._next_reconfig_time()

        if remaining <= 0:
            self._push(t, "complete", lc.index, lc.version)
            return

        chunk = max(remaining / _WALK_CHUNKS, 1.0)
        deboost_at: Optional[float] = None
        watermark_at: Optional[float] = None
        while remaining > _COMPLETION_TOL:
            if fill.filling:
                # Transient: exact closed-form integration, one chunk
                # at a time (each chunk moves the resident count).
                step = min(chunk, remaining)
                adv = fill.advance_accesses(step)
                t += adv.cycles
                remaining -= step
                if armed:
                    plan = tracker.plan
                    proj += step * tracker.active_miss_ratio
                    actual += adv.misses
                    if fill.resident >= plan.boost_lines * (1.0 - 1e-9):
                        filled = True
                    guard = plan.guard_fraction * proj
                    if proj >= actual + guard and proj > 0:
                        deboost_at = t
                        fill.set_target(plan.active_lines)
                        armed = False
                    elif (
                        plan.watermark_factor is not None
                        and filled
                        and proj > 0
                        and actual > proj * plan.watermark_factor
                    ):
                        watermark_at = t
                        break
                if t >= limit:
                    break
                continue

            # Steady state: replay the remaining chunk sequence (the
            # same min/subtract recurrence the scalar loop runs), then
            # batch the accumulators and crossing checks.  Grouped
            # replay takes the fused scalar scan instead — one pass,
            # no array temporaries — evaluating the identical
            # recurrences (``np.cumsum`` over ``[seed, inc...]`` *is*
            # the sequential ``+=``) with first-true crossing indices,
            # so both arms feed the same reconciliation below with the
            # same k's and the same chunk-boundary times.
            p = fill.miss_ratio()
            k_deboost = None
            k_water = None
            if self.shared is None:
                steps: List[float] = []
                rems: List[float] = []
                r = remaining
                while r > _COMPLETION_TOL:
                    s = min(chunk, r)
                    steps.append(s)
                    r -= s
                    rems.append(r)
                step_arr = np.asarray(steps)
                miss_arr = step_arr * p
                cyc_arr = step_arr * fill.hit_interval + miss_arr * fill.miss_penalty
                t_seq = np.cumsum(np.concatenate(((t,), cyc_arr)))[1:]
                limit_mask = t_seq >= limit
                k_limit = int(np.argmax(limit_mask)) if limit_mask.any() else None
                if armed:
                    plan = tracker.plan
                    if not filled and fill.resident >= plan.boost_lines * (1.0 - 1e-9):
                        filled = True
                    proj_arr = np.cumsum(
                        np.concatenate(((proj,), step_arr * tracker.active_miss_ratio))
                    )[1:]
                    act_arr = np.cumsum(np.concatenate(((actual,), miss_arr)))[1:]
                    deboost_mask = (
                        proj_arr >= act_arr + plan.guard_fraction * proj_arr
                    ) & (proj_arr > 0)
                    if deboost_mask.any():
                        k_deboost = int(np.argmax(deboost_mask))
                    if plan.watermark_factor is not None and filled:
                        water_mask = (
                            ~deboost_mask
                            & (proj_arr > 0)
                            & (act_arr > proj_arr * plan.watermark_factor)
                        )
                        if water_mask.any():
                            k_water = int(np.argmax(water_mask))
            else:
                hit_c, mp = fill.hit_interval, fill.miss_penalty
                if armed:
                    plan = tracker.plan
                    if not filled and fill.resident >= plan.boost_lines * (1.0 - 1e-9):
                        filled = True
                    amr = tracker.active_miss_ratio
                    guard_f = plan.guard_fraction
                    wf = plan.watermark_factor
                else:
                    amr, guard_f, wf = 0.0, 0.0, None
                t_cur, proj_cur, act_cur = t, proj, actual
                r = remaining
                k = 0
                k_limit = None
                t_seq = []
                rems = []
                while r > _COMPLETION_TOL:
                    s = chunk if chunk < r else r
                    r -= s
                    miss = s * p
                    cyc = s * hit_c + miss * mp
                    t_cur = t_cur + cyc
                    t_seq.append(t_cur)
                    rems.append(r)
                    if k_limit is None and t_cur >= limit:
                        k_limit = k
                    if armed:
                        proj_cur = proj_cur + s * amr
                        act_cur = act_cur + miss
                        db = (proj_cur >= act_cur + guard_f * proj_cur) and proj_cur > 0
                        if db and k_deboost is None:
                            k_deboost = k
                        if (wf is not None and filled and k_water is None and not db
                                and proj_cur > 0 and act_cur > proj_cur * wf):
                            k_water = k
                    k += 1

            if armed:
                # A crossing is only live while the walk is still going
                # and still armed: a watermark (or the reconfig limit)
                # at an earlier chunk ends/disarms the walk first.
                if k_water is not None and k_deboost is not None:
                    if k_water < k_deboost:
                        k_deboost = None
                    else:
                        k_water = None
                if k_deboost is not None and k_limit is not None and k_limit < k_deboost:
                    k_deboost = None
                if k_water is not None and k_limit is not None and k_limit < k_water:
                    k_water = None

            if k_deboost is not None:
                deboost_at = float(t_seq[k_deboost])
                fill.set_target(tracker.plan.active_lines)
                armed = False
                t = float(t_seq[k_deboost])
                remaining = rems[k_deboost]
                if k_limit is not None and k_limit == k_deboost:
                    break
                # Re-enter: the de-boost may have moved the target (and
                # the miss ratio), so later chunks need a fresh batch.
                continue
            if k_water is not None:
                watermark_at = float(t_seq[k_water])
                break
            if k_limit is not None:
                t = float(t_seq[k_limit])
                remaining = rems[k_limit]
                break
            t = float(t_seq[-1])
            remaining = rems[-1]

        if deboost_at is not None:
            self._push(deboost_at, "deboost", lc.index, lc.version)
        if watermark_at is not None:
            self._push(watermark_at, "watermark", lc.index, lc.version)
            return
        if remaining <= _COMPLETION_TOL and t <= limit:
            self._push(t, "complete", lc.index, lc.version)
        # Otherwise the reconfig event will re-walk this app.

    def _next_reconfig_time(self) -> float:
        interval = self.config.reconfig_interval_cycles
        k = int(self.now // interval) + 1
        return k * interval

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _start_request(self, lc: _LCApp, req_idx: int) -> None:
        lc.serving = req_idx
        lc.remaining = float(lc.req_accesses[req_idx])
        if lc.remaining <= 0:
            # App with negligible LLC traffic: fixed-duration service.
            duration = float(lc.spec.works[req_idx]) * lc.base_cpi
            lc.version += 1
            self._push(self.now + duration, "complete", lc.index, lc.version)
            return
        lc.version += 1
        self._schedule_service(lc)

    def _handle_arrival(self, lc: _LCApp, req_idx: int) -> None:
        self._commit(lc, self.now)
        lc.arrival_ptr = max(lc.arrival_ptr, req_idx + 1)
        lc.queue.append(req_idx)
        if not lc.active:
            lc.active = True
            lc.stats.activations += 1
            lc.result.activations += 1
            lc.fill.apply_idle_loss(self.rng)
            lc.fill.begin_transient(self.rng)
            decision = self.policy.on_lc_active(self._make_context(), lc.index)
            self._apply_decision(decision)
            next_req = lc.queue.pop(0)
            self._start_request(lc, next_req)

    def _handle_complete(self, lc: _LCApp) -> None:
        self._commit(lc, self.now)
        lc.remaining = 0.0
        req_idx = lc.serving
        lc.serving = None
        arrival = float(lc.spec.arrivals[req_idx])
        latency = self.now - arrival
        lc.requests_done += 1
        warmup = int(len(lc.spec.arrivals) * self.warmup_fraction)
        if req_idx >= warmup:
            lc.result.latencies.append(latency)
            lc.stats.latencies.append(latency)
        lc.result.requests_served += 1
        if lc.queue:
            self._start_request(lc, lc.queue.pop(0))
            return
        lc.active = False
        if lc.tracker is not None:
            lc.tracker = None
        decision = self.policy.on_lc_idle(self._make_context(), lc.index)
        self._apply_decision(decision)

    def _handle_deboost(self, lc: _LCApp) -> None:
        self._commit(lc, self.now)
        if lc.tracker is not None:
            lc.tracker.fired = True
        lc.result.deboosts += 1
        decision = self.policy.on_deboost(self._make_context(), lc.index)
        self._apply_decision(decision)

    def _handle_watermark(self, lc: _LCApp) -> None:
        self._commit(lc, self.now)
        if lc.tracker is not None:
            lc.tracker.fired = True
        lc.result.watermarks += 1
        decision = self.policy.on_watermark(self._make_context(), lc.index)
        self._apply_decision(decision)
        if lc.serving is not None:
            lc.version += 1
            self._schedule_service(lc)

    def _apply_bandwidth_contention(self, duration: float) -> None:
        """Inflate effective miss penalties from last-interval traffic.

        Bandwidth has no inertia (Section 2.1): the channel reacts in
        tens of cycles, so updating the effective penalty once per
        reconfiguration interval is a faithful coarse-grained model.
        The MLP profiler would measure the inflated penalty, so
        policies see it too (through AppView.miss_penalty).
        """
        if self.bandwidth is None:
            return
        total_miss_rate = sum(app.stats.misses for app in self.apps) / duration
        multiplier = self.bandwidth.penalty_multiplier(total_miss_rate)
        for app in self.apps:
            app.miss_penalty = app.base_miss_penalty * multiplier
            app.fill.miss_penalty = app.miss_penalty

    def _handle_reconfig(self) -> None:
        for app in self.apps:
            self._commit(app, self.now)
        self._note_batch_space()
        duration = max(self.now - self._interval_start, 1.0)
        self._avg_batch_lines = self._batch_space_integral / duration
        self._apply_bandwidth_contention(duration)
        self._refresh_measured_curves()
        decision = self.policy.on_interval(self._make_context())
        self._first_interval = False
        self._apply_decision(decision)
        for app in self.apps:
            app.stats.reset()
        self._interval_start = self.now
        self._batch_space_integral = 0.0
        self._batch_space_last_t = self.now
        # Re-walk every serving app: the reconfig may have moved targets
        # and always moves the walk limit to the next boundary.
        for lc in self.lc_apps:
            if lc.serving is not None and lc.remaining > 0:
                lc.version += 1
                self._schedule_service(lc)

    # ------------------------------------------------------------------
    # Main loops
    # ------------------------------------------------------------------
    def run(self) -> MixResult:
        if not self.policy.uses_partitioning:
            return self._run_unmanaged()
        return self._run_partitioned()

    def _initial_bandwidth_estimate(self) -> None:
        """Seed the contention model before any interval has elapsed.

        Memory pressure exists from cycle zero; estimate each app's
        steady miss rate at its initial allocation and apply the
        multiplier so short runs see contention too.
        """
        if self.bandwidth is None:
            return
        total = 0.0
        for app in self.apps:
            p = min(1.0, float(app.curve(app.fill.target)))
            total += self._initial_access_rate(app) * p
        multiplier = self.bandwidth.penalty_multiplier(total)
        for app in self.apps:
            app.miss_penalty = app.base_miss_penalty * multiplier
            app.fill.miss_penalty = app.miss_penalty

    def _run_partitioned(self) -> MixResult:
        self._refresh_measured_curves()
        decision = self.policy.initialize(self._make_context())
        self._apply_decision(decision)
        # Warm start: resident working sets match the initial targets
        # (the paper fast-forwards through warmup before the ROI).
        for app in self.apps:
            app.fill.resident = app.fill.effective_target
        self._initial_bandwidth_estimate()
        for lc in self.lc_apps:
            for req_idx, t in enumerate(lc.spec.arrivals):
                self._push(float(t), "arrival", lc.index, req_idx)
        self._push(self._next_reconfig_time(), "reconfig")

        while self._events:
            time, __, kind, app_idx, version = heapq.heappop(self._events)
            if kind == "reconfig":
                if all(lc.exhausted for lc in self.lc_apps):
                    continue
                self.now = time
                self._handle_reconfig()
                self._push(self._next_reconfig_time(), "reconfig")
                continue
            if kind == "arrival":
                self.now = time
                lc = self.apps[app_idx]
                self._handle_arrival(lc, version)  # version slot = req idx
                continue
            lc = self.apps[app_idx]
            if version != lc.version:
                continue  # stale event
            self.now = time
            if kind == "complete":
                self._handle_complete(lc)
            elif kind == "deboost":
                self._handle_deboost(lc)
            elif kind == "watermark":
                self._handle_watermark(lc)
            else:  # pragma: no cover
                raise RuntimeError(f"unknown event {kind}")
            if kind == "complete" and all(lc2.exhausted for lc2 in self.lc_apps):
                break

        self._commit_batch(self.now)
        return self._collect()

    # ------------------------------------------------------------------
    # Unmanaged (shared LRU) mode
    # ------------------------------------------------------------------
    def _run_unmanaged(self) -> MixResult:
        model = SharedOccupancyModel(self.llc_lines)
        n = len(self.apps)
        occ = np.full(n, self.llc_lines / n, dtype=float)
        # Per-LC arrival times as plain floats, materialized **once**:
        # the request index is just the list position, so the old
        # per-run (time, index) tuple lists carried no information.
        arrival_times = [lc.spec.arrivals.tolist() for lc in self.lc_apps]
        ptrs = [0] * len(self.lc_apps)

        while not all(lc.exhausted for lc in self.lc_apps):
            # Per-app miss ratio and access interval at the frozen
            # occupancies, computed once per epoch and shared by the
            # candidate-time scan and the advancement loop (both used
            # to evaluate the identical expressions independently).
            p_vals = [0.0] * n
            per_access_vals = [0.0] * n
            for app in self.apps:
                p = min(1.0, float(app.curve(occ[app.index])))
                p_vals[app.index] = p
                per_access_vals[app.index] = app.hit_interval + p * app.miss_penalty

            # Candidate event times.
            t_next = self.now + _LRU_EPOCH
            for k, lc in enumerate(self.lc_apps):
                if ptrs[k] < len(arrival_times[k]):
                    t_next = min(t_next, arrival_times[k][ptrs[k]])
                if lc.serving is not None:
                    if lc.remaining > 0:
                        per_access = per_access_vals[lc.index]
                        t_next = min(t_next, self.now + lc.remaining * per_access)
                    else:
                        t_next = min(t_next, lc._fixed_end)
            dt = max(t_next - self.now, 0.0)

            # Advance everyone by dt at frozen occupancies.
            rates = np.zeros(n)
            for app in self.apps:
                p = p_vals[app.index]
                per_access = per_access_vals[app.index]
                if isinstance(app, _BatchApp):
                    accesses = dt / per_access
                    app.result.instructions += (
                        accesses * app.profile.instructions_per_access
                    )
                    app.result.cycles += dt
                    rates[app.index] = p / per_access
                else:
                    lc = app
                    if lc.serving is not None and lc.remaining > 0:
                        accesses = min(dt / per_access, lc.remaining)
                        lc.remaining -= accesses
                        self._note_lc_progress(lc, accesses, accesses * p)
                        rates[lc.index] = p / per_access
                    elif lc.serving is None:
                        lc.stats.idle_time += dt
            if dt > 0:
                occ = model.step(occ, rates, dt)
                if self.bandwidth is not None:
                    multiplier = self.bandwidth.penalty_multiplier(
                        float(rates.sum())
                    )
                    for app in self.apps:
                        app.miss_penalty = app.base_miss_penalty * multiplier
            self.now = t_next

            # Completions.
            for lc in self.lc_apps:
                if lc.serving is None:
                    continue
                if float(lc.req_accesses[lc.serving]) > 0:
                    done = lc.remaining <= _COMPLETION_TOL
                else:
                    done = self.now >= lc._fixed_end - 1e-6
                if done:
                    self._complete_unmanaged(lc)

            # Arrivals.
            for k, lc in enumerate(self.lc_apps):
                times = arrival_times[k]
                while ptrs[k] < len(times) and times[ptrs[k]] <= self.now + 1e-9:
                    req_idx = ptrs[k]
                    ptrs[k] += 1
                    lc.arrival_ptr = ptrs[k]
                    lc.queue.append(req_idx)
                if lc.serving is None and lc.queue:
                    if not lc.active:
                        lc.active = True
                        lc.stats.activations += 1
                        lc.result.activations += 1
                    self._start_unmanaged(lc, lc.queue.pop(0))
        return self._collect()

    def _start_unmanaged(self, lc: _LCApp, req_idx: int) -> None:
        lc.serving = req_idx
        lc.remaining = float(lc.req_accesses[req_idx])
        if lc.remaining <= 0:
            duration = float(lc.spec.works[req_idx]) * lc.base_cpi
            lc._fixed_end = self.now + duration
        else:
            lc._fixed_end = float("inf")

    def _complete_unmanaged(self, lc: _LCApp) -> None:
        req_idx = lc.serving
        lc.serving = None
        lc.remaining = 0.0
        arrival = float(lc.spec.arrivals[req_idx])
        latency = self.now - arrival
        lc.requests_done += 1
        warmup = int(len(lc.spec.arrivals) * self.warmup_fraction)
        if req_idx >= warmup:
            lc.result.latencies.append(latency)
        lc.result.requests_served += 1
        if lc.queue:
            self._start_unmanaged(lc, lc.queue.pop(0))
        else:
            lc.active = False

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def _collect(self) -> MixResult:
        return MixResult(
            mix_id=self.mix_id,
            policy=self.policy.name,
            lc_instances=[lc.result for lc in self.lc_apps],
            batch_apps=[b.result for b in self.batch_apps],
            duration_cycles=self.now,
        )
