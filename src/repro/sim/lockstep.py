"""Lockstep structure-of-arrays replay of a whole replay group.

PR 7's grouped replay (:mod:`repro.sim.grid_replay`) removed redundant
*derivation* across the cells of a replay group but still advanced each
cell's event loop independently: one heap, one Python event pop at a
time, per cell.  This module is the next layer: a driver that advances
**all cells of a replay group in lockstep** over their shared arrival
schedule, plus an engine subclass whose per-cell hot paths are
restructured around the group invariants.

Layout — what is structure-of-arrays and what stays scalar:

* **Shared arrival schedule** (per group, built once): the three LC
  instances' arrival arrays merged into one ``(time, seq, app, req)``
  event stream.  A stable argsort of the concatenated arrays reproduces
  exactly the ``(time, seq)`` order in which the scalar oracle's heap
  pops its arrival events, because the oracle pushes arrivals app-major
  before anything else — seq *is* the concatenation position.
* **SoA scheduling state** (per group, preallocated numpy): the
  per-cell next-dynamic-event time/seq vectors and the ``[cell, app]``
  active mask.  Each lockstep step compares the whole group's
  next-event vectors against the next shared arrival as masked
  vectorized updates; the active mask routes arrivals to the
  bookkeeping-only fast path (an arrival to an active app can neither
  call the policy nor schedule events, so the driver skips the
  next-event rescan for those cells wholesale).
* **Scalar fallback** (per cell): everything whose float sequence must
  match the oracle bit-for-bit — fill/partition state, interval stats,
  queues, boost/watermark trackers, and every policy callback — stays
  in the existing :class:`~repro.sim.engine._LCApp` structures and
  handlers.  Cells in one group run *different policies*; their states
  diverge immediately, so batching that arithmetic across cells would
  change summation order and break bit identity.  The lockstep win
  comes from the shared schedule plus the per-cell fast paths below,
  not from cross-cell float math.

:class:`LockstepEngine` replaces the per-cell heap with the shared
schedule and a tiny linear-scan list for dynamic events, and overrides
the hot handlers with bit-exact restructurings:

* first-interval policy contexts reuse one cached view list (only
  ``recent_latencies`` and the post-refresh ``measured_curve`` can
  change before the first reconfiguration);
* steady-state commits inline :meth:`FillState.advance_cycles`' tail
  (the transient falls back to the closed-form parent path);
* service walks reuse a per-app scratch fill instead of cloning, and
  the steady-state chunk scan exits at the *first* crossing — sound
  because the parent's reconciliation always resolves to the earliest
  triggered chunk (see :meth:`LockstepEngine._schedule_service`);
* stream indexing reads group-cached Python float lists instead of
  numpy scalars (``tolist`` coercions are exact).

``REPRO_LOCKSTEP=0`` (or ``off``/``false``/``no``) restores the PR-7
grouped path under :meth:`~repro.sim.mix_runner.MixRunner.run_mix_group`;
``run_mix`` stays the scalar oracle either way.
``tests/sim/test_lockstep_equivalence.py`` and the golden suite pin the
results byte-identical across the three execution modes.
"""

from __future__ import annotations

import itertools
import os
from typing import List, Optional, Tuple

import numpy as np

from ..policies.base import PolicyContext
from .engine import _COMPLETION_TOL, _WALK_CHUNKS, MixEngine, _LCApp
from .fill import _EPS
from .results import MixResult

__all__ = ["LockstepEngine", "lockstep_enabled", "run_lockstep_group"]

#: Environment toggle: ``0``/``off``/``false``/``no`` disables lockstep.
_ENV_TOGGLE = "REPRO_LOCKSTEP"

#: Cells at which the driver's drain scan switches to vectorized masks.
#: Below this, numpy's per-op overhead loses to the Python scan; the
#: comparisons are elementwise either way, so the cut is timing-only.
_WIDE_GROUP = 12

_INF = float("inf")


def lockstep_enabled() -> bool:
    """Whether the environment enables lockstep replay (default on)."""
    toggle = os.environ.get(_ENV_TOGGLE, "").strip().lower()
    return toggle not in ("0", "off", "false", "no")


class LockstepEngine(MixEngine):
    """A :class:`MixEngine` driven from a shared arrival schedule.

    Requires a :class:`~repro.sim.grid_replay.GroupShared` context (the
    schedule and float-list caches live there).  Produces results
    bit-identical to the parent: every override either replays the
    parent's float operations in the parent's order or falls back to
    the parent outright.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        if self.shared is None:
            raise ValueError("lockstep replay requires a replay-group context")
        shared = self.shared
        self._schedule = shared.lockstep_schedule_for(
            [lc.spec.arrivals for lc in self.lc_apps]
        )
        self._n_arrivals = sum(len(lc.spec.arrivals) for lc in self.lc_apps)
        for lc in self.lc_apps:
            lc._ls_arrivals = shared.floats_for(lc.spec.arrivals)
            lc._ls_works = shared.floats_for(lc.spec.works)
            lc._ls_req_accesses = shared.floats_for(lc.req_accesses)
            lc._ls_warmup = int(len(lc.spec.arrivals) * self.warmup_fraction)
            lc._ls_scratch_fill = None
        self._dyn: List[Tuple[float, int, str, int, int]] = []
        #: Index of the earliest pending dynamic event, set by the
        #: latest :meth:`ls_next` scan and consumed by
        #: :meth:`ls_pump_one` (see the contract on that method).
        self._ls_best = 0
        self._ls_views = None
        self._ls_lc_views: List[Tuple] = []
        #: Row of the group's [cell, app] active mask, when driven.
        self._ls_active_row = None

    # ------------------------------------------------------------------
    # Event plumbing: shared schedule + linear-scan dynamic list
    # ------------------------------------------------------------------
    def _push(self, time: float, kind: str, app_idx: int = -1, version: int = 0):
        self._dyn.append((time, next(self._seq), kind, app_idx, version))

    def ls_begin(self) -> None:
        """The setup phase of :meth:`MixEngine._run_partitioned`.

        The dynamic-event seq counter starts at the arrival count so
        the initial reconfig — and every later push — receives exactly
        the seq the oracle's shared :mod:`itertools` counter would have
        assigned after pushing all arrivals.
        """
        self._refresh_measured_curves()
        decision = self.policy.initialize(self._make_context())
        self._apply_decision(decision)
        # Warm start: resident working sets match the initial targets
        # (the paper fast-forwards through warmup before the ROI).
        for app in self.apps:
            app.fill.resident = app.fill.effective_target
        self._initial_bandwidth_estimate()
        self._dyn = []
        self._seq = itertools.count(self._n_arrivals)
        self._push(self._next_reconfig_time(), "reconfig")

    def ls_next(self) -> Optional[Tuple[float, int]]:
        """(time, seq) of the earliest pending dynamic event, if any.

        The winning index is remembered in ``_ls_best`` so a directly
        following :meth:`ls_pump_one` can pop it without rescanning.
        """
        dyn = self._dyn
        if not dyn:
            return None
        best = 0
        bt, bs = dyn[0][0], dyn[0][1]
        for i in range(1, len(dyn)):
            ev = dyn[i]
            t = ev[0]
            if t < bt or (t == bt and ev[1] < bs):
                best, bt, bs = i, t, ev[1]
        self._ls_best = best
        return bt, bs

    def ls_pump_one(self) -> bool:
        """Process the earliest dynamic event; True = run finished.

        Contract: must directly follow an :meth:`ls_next` on this
        engine with no intervening mutation of its dynamic list — the
        pop reuses that scan's winning index.  Both drivers honour
        this: every pump is preceded by the ``ls_next`` that published
        the event's ``(time, seq)``, and the only call between them,
        :meth:`ls_arrival_busy`, never pushes or pops events (arrivals
        through :meth:`ls_arrival` are followed by a fresh ``ls_next``).

        Mirrors one iteration of the oracle's event loop for the
        non-arrival kinds: stale versions are consumed without touching
        ``now``, an all-exhausted reconfig is dropped without a repush,
        and a completion that exhausts every LC instance ends the run.
        """
        time, __, kind, app_idx, version = self._dyn.pop(self._ls_best)
        if kind == "complete":
            lc = self.apps[app_idx]
            if version != lc.version:
                return False  # stale event
            self.now = time
            self._handle_complete(lc)
            # Still active means a next request started (serving set),
            # so this LC is not exhausted and the all() scan is False.
            if not lc.active and all(
                lc2.exhausted for lc2 in self.lc_apps
            ):
                return True
            return False
        if kind == "reconfig":
            if all(lc.exhausted for lc in self.lc_apps):
                return False
            self.now = time
            self._handle_reconfig()
            self._push(self._next_reconfig_time(), "reconfig")
            return False
        lc = self.apps[app_idx]
        if version != lc.version:
            return False  # stale event
        self.now = time
        if kind == "deboost":
            self._handle_deboost(lc)
        elif kind == "watermark":
            self._handle_watermark(lc)
        else:  # pragma: no cover
            raise RuntimeError(f"unknown event {kind}")
        return False

    def ls_arrival(self, time: float, app_pos: int, req_idx: int) -> None:
        """Deliver one shared-schedule arrival (general path)."""
        self.now = time
        self._handle_arrival(self.lc_apps[app_pos], req_idx)

    def ls_arrival_busy(self, time: float, app_pos: int, req_idx: int) -> None:
        """Arrival to an already-active app: bookkeeping only.

        Exactly the ``lc.active`` branch of
        :meth:`MixEngine._handle_arrival` — commit, advance the arrival
        pointer, enqueue.  No policy callback and no event push can
        happen here, which is what lets the group driver skip the
        next-event rescan for every cell routed through this path.
        """
        lc = self.lc_apps[app_pos]
        self.now = time
        self._commit(lc, time)
        lc.arrival_ptr = max(lc.arrival_ptr, req_idx + 1)
        lc.queue.append(req_idx)

    def ls_finish(self) -> MixResult:
        self._commit_batch(self.now)
        return self._collect()

    def _run_partitioned(self) -> MixResult:
        """Standalone single-cell pump over the shared schedule."""
        self.ls_begin()
        sched_t, sched_seq, sched_app, sched_req = self._schedule
        n_ev = len(sched_t)
        finished = False
        k = 0
        while k < n_ev:
            tk = sched_t[k]
            sk = sched_seq[k]
            nxt = self.ls_next()
            while nxt is not None and (
                nxt[0] < tk or (nxt[0] == tk and nxt[1] < sk)
            ):
                if self.ls_pump_one():
                    finished = True
                    break
                nxt = self.ls_next()
            if finished:
                break
            self.ls_arrival(tk, sched_app[k], sched_req[k])
            k += 1
        while not finished and self._dyn:
            self.ls_next()
            if self.ls_pump_one():
                break
        return self.ls_finish()

    # ------------------------------------------------------------------
    # Per-cell fast paths (each bit-exact against the parent)
    # ------------------------------------------------------------------
    def _refresh_measured_curves(self) -> None:
        # New noise draws invalidate the cached first-interval views
        # (their ``curve`` field is the measured curve by reference).
        self._ls_views = None
        super()._refresh_measured_curves()

    def _make_context(self) -> PolicyContext:
        """First-interval contexts from one cached view list.

        Until the first reconfiguration every view field except
        ``recent_latencies`` is constant (the measured curves refresh
        only at initialize/reconfig, and a refresh drops the cache), so
        the AppView objects are built once and only the latency tuples
        are rewritten per call.  Policies treat views and context as
        read-only inputs — the equivalence suite would catch any
        mutation as a divergence from the oracle.
        """
        if not self._first_interval:
            return super()._make_context()
        views = self._ls_views
        if views is None:
            views = self._make_first_interval_views(self.shared)
            self._ls_views = views
            self._ls_lc_views = [
                (view, app)
                for view, app in zip(views, self.apps)
                if app.is_lc
            ]
        else:
            for view, app in self._ls_lc_views:
                view.recent_latencies = tuple(app.stats.latencies)
        return PolicyContext(
            llc_lines=self.llc_lines,
            apps=views,
            current_targets={a.index: a.fill.target for a in self.apps},
            now=self.now,
            avg_batch_lines=self._avg_batch_lines,
            lc_active={a.index: a.active for a in self.lc_apps},
            rng=self.rng,
            lc_boosted={
                a.index: a.tracker is not None and not a.tracker.fired
                for a in self.lc_apps
            },
        )

    def _commit(self, app, upto: float) -> None:
        """Steady-state commits without the ``advance_cycles`` call.

        Once a partition sits at its target the advance reduces to the
        closing branch of :meth:`FillState.advance_cycles` — one miss
        ratio, one division.  That tail is inlined here (same
        expressions, same order); any transient falls back to the
        parent's closed-form integration.
        """
        dt = upto - app.last_commit
        if dt < -1e-6:
            raise RuntimeError("time went backwards in commit")
        if dt <= 0:
            app.last_commit = upto
            return
        fill = app.fill
        if app.is_lc:
            lc = app
            if lc.serving is not None and lc.remaining > 0:
                r = fill.resident
                if r < fill._eff_target - _EPS:  # filling
                    super()._commit(app, upto)
                    return
                if dt > 1e-12:
                    # fill.miss_ratio() with the memo check inlined.
                    base = (
                        fill._p_val
                        if fill._p_key == r
                        else fill.base_miss_ratio()
                    )
                    p = base * fill._miss_multiplier
                    if p > 1.0:
                        p = 1.0
                    per_access = fill.hit_interval + p * fill.miss_penalty
                    if per_access <= 0:
                        raise RuntimeError(
                            "app makes no progress: zero access interval"
                        )
                    accesses = dt / per_access
                    misses = accesses * p
                else:
                    accesses = 0.0
                    misses = 0.0
                done = accesses if accesses <= lc.remaining else lc.remaining
                lc.remaining -= done
                stats = lc.stats  # _note_lc_progress, inlined
                stats.accesses += accesses
                stats.misses += misses
                lc.total_accesses += accesses
                lc.total_misses += misses
                tracker = lc.tracker
                if tracker is not None and not tracker.fired:
                    tracker.accumulate(accesses, misses, r)
            elif lc.serving is None:
                lc.stats.idle_time += dt
            # Serving with zero LLC accesses: busy but cache-silent.
        else:
            r = fill.resident
            if r < fill._eff_target - _EPS:  # filling
                super()._commit(app, upto)
                return
            if dt > 1e-12:
                base = (
                    fill._p_val
                    if fill._p_key == r
                    else fill.base_miss_ratio()
                )
                p = base * fill._miss_multiplier
                if p > 1.0:
                    p = 1.0
                per_access = fill.hit_interval + p * fill.miss_penalty
                if per_access <= 0:
                    raise RuntimeError(
                        "app makes no progress: zero access interval"
                    )
                accesses = dt / per_access
                misses = accesses * p
            else:
                accesses = 0.0
                misses = 0.0
            app.result.instructions += (
                accesses * app.profile.instructions_per_access
            )
            app.result.cycles += dt
            app.stats.accesses += accesses
            app.stats.misses += misses
        app.last_commit = upto
        if self.trace_partitions:
            self.partition_trace[app.index].append(
                (upto, fill.target, fill.resident)
            )

    def _ls_scratch(self, lc: _LCApp):
        """The walk's detached fill, reused across walks.

        A clone resets exactly these fields; copying them into a kept
        instance is the same operation without the allocation.  The
        curve/scheme/shared wiring never changes over an app's life.
        """
        scratch = lc._ls_scratch_fill
        fill = lc.fill
        if scratch is None:
            scratch = lc._ls_scratch_fill = fill.clone()
            return scratch
        scratch.hit_interval = fill.hit_interval
        scratch.miss_penalty = fill.miss_penalty
        scratch._fill_efficiency = fill._fill_efficiency
        scratch._miss_multiplier = fill._miss_multiplier
        scratch.resident = fill.resident
        scratch.target = fill.target
        scratch._eff_target = fill._eff_target
        scratch._p_key = None
        scratch._seg_key = None
        return scratch

    def _schedule_service(self, lc: _LCApp) -> None:
        """The parent walk with a first-crossing steady-state scan.

        The parent scans every steady chunk, records the first de-boost
        / watermark / limit indices, then reconciles: the earliest one
        wins (watermark requires no de-boost at its own chunk, and ties
        with the limit resolve in favour of the crossing).  Stopping at
        the first chunk where *any* of the three triggers therefore
        reproduces the reconciled outcome — every earlier chunk
        computed the identical accumulator values and triggered
        nothing.  No per-chunk time/remaining lists are needed.
        """
        if lc.serving is None:
            return
        remaining = lc.remaining
        t = self.now
        tracker = lc.tracker
        proj = tracker.projected if tracker and not tracker.fired else 0.0
        actual = tracker.actual if tracker and not tracker.fired else 0.0
        filled = tracker.filled if tracker and not tracker.fired else False
        armed = tracker is not None and not tracker.fired
        limit = self._next_reconfig_time()

        if remaining <= 0:
            self._push(t, "complete", lc.index, lc.version)
            return

        fill = lc.fill
        if armed or fill.resident < fill._eff_target - _EPS:
            # Only an armed walk (de-boost may retarget) or a transient
            # (advance moves the resident count) mutates the fill; the
            # unarmed steady walk is read-only, so the committed state
            # can be used directly and the scratch copy skipped.
            fill = self._ls_scratch(lc)

        chunk = max(remaining / _WALK_CHUNKS, 1.0)
        deboost_at: Optional[float] = None
        watermark_at: Optional[float] = None
        while remaining > _COMPLETION_TOL:
            if fill.resident < fill._eff_target - _EPS:  # filling
                # Transient: exact closed-form integration, one chunk
                # at a time (each chunk moves the resident count).
                step = min(chunk, remaining)
                adv = fill.advance_accesses(step)
                t += adv.cycles
                remaining -= step
                if armed:
                    plan = tracker.plan
                    proj += step * tracker.active_miss_ratio
                    actual += adv.misses
                    if fill.resident >= plan.boost_lines * (1.0 - 1e-9):
                        filled = True
                    guard = plan.guard_fraction * proj
                    if proj >= actual + guard and proj > 0:
                        deboost_at = t
                        fill.set_target(plan.active_lines)
                        armed = False
                    elif (
                        plan.watermark_factor is not None
                        and filled
                        and proj > 0
                        and actual > proj * plan.watermark_factor
                    ):
                        watermark_at = t
                        break
                if t >= limit:
                    break
                continue

            # Steady state: one fused scan, first crossing decides.
            r0 = fill.resident  # fill.miss_ratio(), memo check inlined
            p = (
                fill._p_val if fill._p_key == r0 else fill.base_miss_ratio()
            ) * fill._miss_multiplier
            if p > 1.0:
                p = 1.0
            hit_c, mp = fill.hit_interval, fill.miss_penalty
            if not armed:
                # No tracker: the only possible crossing is the
                # reconfig limit, and every full chunk adds the same
                # ``s * hit_c + (s * p) * mp`` — identical operands
                # give identical bits, so the increment is hoisted.
                crossing = None
                t_cur = t
                r = remaining
                full_cost = chunk * hit_c + (chunk * p) * mp
                while r > _COMPLETION_TOL:
                    if chunk < r:
                        r -= chunk
                        t_cur = t_cur + full_cost
                    else:
                        s = r
                        r -= s
                        t_cur = t_cur + (s * hit_c + (s * p) * mp)
                    if t_cur >= limit:
                        crossing = "limit"
                        break
                t = t_cur
                remaining = r
                break  # limit or completion
            if armed:
                plan = tracker.plan
                if not filled and fill.resident >= plan.boost_lines * (1.0 - 1e-9):
                    filled = True
                amr = tracker.active_miss_ratio
                guard_f = plan.guard_fraction
                wf = plan.watermark_factor
            crossing = None
            at_limit = False
            t_cur, proj_cur, act_cur = t, proj, actual
            r = remaining
            while r > _COMPLETION_TOL:
                s = chunk if chunk < r else r
                r -= s
                miss = s * p
                t_cur = t_cur + (s * hit_c + miss * mp)
                at_limit = t_cur >= limit
                if armed:
                    proj_cur = proj_cur + s * amr
                    act_cur = act_cur + miss
                    db = (proj_cur >= act_cur + guard_f * proj_cur) and proj_cur > 0
                    if db:
                        crossing = "deboost"
                        break
                    if (wf is not None and filled
                            and proj_cur > 0 and act_cur > proj_cur * wf):
                        crossing = "watermark"
                        break
                if at_limit:
                    crossing = "limit"
                    break
            t = t_cur
            remaining = r
            if crossing == "deboost":
                deboost_at = t_cur
                fill.set_target(tracker.plan.active_lines)
                armed = False
                if at_limit:
                    break
                # Re-enter: the de-boost may have moved the target (and
                # the miss ratio), so later chunks need a fresh scan.
                continue
            if crossing == "watermark":
                watermark_at = t_cur
            break  # watermark, limit, or completion

        if deboost_at is not None:
            self._push(deboost_at, "deboost", lc.index, lc.version)
        if watermark_at is not None:
            self._push(watermark_at, "watermark", lc.index, lc.version)
            return
        if remaining <= _COMPLETION_TOL and t <= limit:
            self._push(t, "complete", lc.index, lc.version)
        # Otherwise the reconfig event will re-walk this app.

    def _start_request(self, lc: _LCApp, req_idx: int) -> None:
        lc.serving = req_idx
        lc.remaining = lc._ls_req_accesses[req_idx]
        if lc.remaining <= 0:
            # App with negligible LLC traffic: fixed-duration service.
            duration = lc._ls_works[req_idx] * lc.base_cpi
            lc.version += 1
            self._push(self.now + duration, "complete", lc.index, lc.version)
            return
        lc.version += 1
        self._schedule_service(lc)

    def _handle_complete(self, lc: _LCApp) -> None:
        self._commit(lc, self.now)
        lc.remaining = 0.0
        req_idx = lc.serving
        lc.serving = None
        latency = self.now - lc._ls_arrivals[req_idx]
        lc.requests_done += 1
        if req_idx >= lc._ls_warmup:
            lc.result.latencies.append(latency)
            lc.stats.latencies.append(latency)
        lc.result.requests_served += 1
        if lc.queue:
            self._start_request(lc, lc.queue.pop(0))
            return
        lc.active = False
        if self._ls_active_row is not None:
            self._ls_active_row[lc.index] = False
        if lc.tracker is not None:
            lc.tracker = None
        decision = self.policy.on_lc_idle(self._make_context(), lc.index)
        self._apply_decision(decision)


def run_lockstep_group(engines: List[LockstepEngine]) -> List[MixResult]:
    """Advance a replay group's engines in lockstep; results in order.

    Partitioned cells step together over the shared arrival schedule:
    each lockstep step drains, per cell, every dynamic event ordered
    before the next shared arrival (a masked comparison of the SoA
    next-event vectors), then delivers that arrival to every live cell
    — through the bookkeeping-only path where the ``[cell, app]``
    active mask proves no policy callback can happen.  Cells running
    non-partitioning policies (LRU) use the fluid-model scalar path
    unchanged; their results slot back in position.
    """
    results: List[Optional[MixResult]] = [None] * len(engines)
    driven: List[Tuple[int, LockstepEngine]] = []
    for i, engine in enumerate(engines):
        if engine.policy.uses_partitioning:
            driven.append((i, engine))
        else:
            results[i] = engine.run()
    if not driven:
        return results

    cells = [engine for _, engine in driven]
    n = len(cells)
    wide = n >= _WIDE_GROUP
    sched_t, sched_seq, sched_app, sched_req = cells[0]._schedule
    n_ev = len(sched_t)
    n_lc = len(cells[0].lc_apps)

    # SoA scheduling state: next dynamic event per cell + active mask.
    # Wide groups keep the vectors in numpy for the masked drain scan;
    # narrow groups use plain lists — per-element indexing of a numpy
    # array pays a boxing cost the Python scan never recoups there.
    if wide:
        next_t = np.full(n, _INF, dtype=np.float64)
        next_s = np.zeros(n, dtype=np.int64)
        active = np.zeros((n, n_lc), dtype=bool)
    else:
        next_t = [_INF] * n
        next_s = [0] * n
        active = [[False] * n_lc for _ in range(n)]
    finished = [False] * n

    rows = [active[c] for c in range(n)]
    for c, engine in enumerate(cells):
        engine.ls_begin()
        engine._ls_active_row = rows[c]
        nxt = engine.ls_next()
        if nxt is not None:
            next_t[c] = nxt[0]
            next_s[c] = nxt[1]

    def pump(c: int) -> None:
        engine = cells[c]
        if engine.ls_pump_one():
            finished[c] = True
            next_t[c] = _INF
            return
        nxt = engine.ls_next()
        if nxt is None:
            next_t[c] = _INF
        else:
            next_t[c] = nxt[0]
            next_s[c] = nxt[1]

    k = 0
    while True:
        if k < n_ev:
            tk = sched_t[k]
            sk = sched_seq[k]
        else:
            tk = _INF
            sk = -1
        # Drain every dynamic event ordered before the next arrival.
        while True:
            if wide:
                mask = (next_t < tk) | ((next_t == tk) & (next_s < sk))
                ready = np.nonzero(mask)[0]
                if ready.size == 0:
                    break
                for c in ready:
                    pump(int(c))
            else:
                pumped = False
                for c in range(n):
                    nt = next_t[c]
                    if nt < tk or (nt == tk and next_s[c] < sk):
                        pump(c)
                        pumped = True
                if not pumped:
                    break
        if k >= n_ev:
            break
        app_pos = sched_app[k]
        req_idx = sched_req[k]
        for c in range(n):
            if finished[c]:
                continue
            if rows[c][app_pos]:
                cells[c].ls_arrival_busy(tk, app_pos, req_idx)
            else:
                cells[c].ls_arrival(tk, app_pos, req_idx)
                nxt = cells[c].ls_next()
                if nxt is None:
                    next_t[c] = _INF
                else:
                    next_t[c] = nxt[0]
                    next_s[c] = nxt[1]
        if wide:
            active[:, app_pos] = True
        else:
            for row in rows:
                row[app_pos] = True
        k += 1

    for position, engine in driven:
        engine._ls_active_row = None
    for c, (position, engine) in enumerate(driven):
        results[position] = engine.ls_finish()
    return results
