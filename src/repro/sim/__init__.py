"""Simulation engine: CMP config, fill transients, the mix engine, runners."""

from .config import CMPConfig, CacheLevelConfig, CoreKind, westmere_config
from .engine import LCInstanceSpec, MixEngine
from .fill import Advance, FillState
from .mix_runner import BaselineResult, MixRunner
from .results import BatchAppResult, LCInstanceResult, MixResult
from .study_runner import run_bandwidth_point, run_scaleout_point
from .trace_sim import (
    PhasedGenerator,
    ScanGenerator,
    TraceApp,
    TraceDrivenSimulator,
    ZipfWorkingSetGenerator,
)

__all__ = [
    "CMPConfig",
    "CacheLevelConfig",
    "CoreKind",
    "westmere_config",
    "FillState",
    "Advance",
    "MixEngine",
    "LCInstanceSpec",
    "MixRunner",
    "BaselineResult",
    "MixResult",
    "LCInstanceResult",
    "BatchAppResult",
    "run_scaleout_point",
    "run_bandwidth_point",
    "TraceDrivenSimulator",
    "TraceApp",
    "ZipfWorkingSetGenerator",
    "ScanGenerator",
    "PhasedGenerator",
]
