"""Mix execution: baselines, request streams, and policy comparisons.

Implements the paper's measurement methodology (Section 6):

* each LC app is first run **alone** with a fixed 2 MB partition (the
  private-LLC baseline); the pooled tail of those runs is both the
  normalization denominator for *tail latency degradation* and the
  source of Ubik's deadline (the 95th-percentile latency at the target
  size);
* the same request streams (fixed work, randomized arrivals) are then
  replayed in the six-app mix under each policy, making comparisons
  across schemes sample-balanced;
* batch apps are normalized to their steady-state IPC with a private
  2 MB LLC, giving the weighted-speedup metric.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cache.schemes import SchemeModel
from ..cpu import make_core_model
from ..policies.base import Policy
from ..server.latency import percentile_latency, tail_mean
from ..workloads.arrivals import generate_arrivals
from ..workloads.latency_critical import LCWorkload
from ..workloads.mixes import MixSpec
from .config import CMPConfig
from .engine import LCInstanceSpec, MixEngine
from .results import MixResult

__all__ = ["BaselineResult", "MixRunner"]

#: Default request count per LC instance in scaled runs.
DEFAULT_REQUESTS = 300

#: Instances of the LC workload per mix (paper: three).
LC_INSTANCES = 3


@dataclass(frozen=True)
class BaselineResult:
    """Isolated-run latencies for one LC workload at one load."""

    tail95_cycles: float  # mean beyond p95: the degradation denominator
    p95_cycles: float  # pure percentile: Ubik's deadline
    latencies: Tuple[float, ...]


class MixRunner:
    """Runs mixes and caches isolated baselines."""

    def __init__(
        self,
        config: Optional[CMPConfig] = None,
        requests: int = DEFAULT_REQUESTS,
        seed: int = 1,
        umon_noise: float = 0.02,
        warmup_fraction: float = 0.05,
        store: Optional["ResultStore"] = None,
    ):
        self.config = config or CMPConfig()
        if requests < 20:
            raise ValueError("need at least 20 requests for tail metrics")
        self.requests = requests
        self.seed = seed
        self.umon_noise = umon_noise
        self.warmup_fraction = warmup_fraction
        #: Optional persistent result store; when set, isolated
        #: baselines are fetched from / written to it so every process
        #: sharing the store computes each baseline exactly once.
        self.store = store
        self._baseline_cache: Dict[Tuple[str, float, str], BaselineResult] = {}

    # ------------------------------------------------------------------
    # Request streams
    # ------------------------------------------------------------------
    def stream(
        self, workload: LCWorkload, load: float, instance: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(arrivals, works) for one instance, deterministic in seed."""
        name_key = zlib.crc32(workload.name.encode()) & 0xFFFF
        rng = np.random.default_rng((self.seed, name_key, instance))
        works = np.asarray(
            [workload.work.sample(rng) for _ in range(self.requests)]
        )
        core = make_core_model(
            self.config.core_kind, self.config.mem_latency_cycles
        )
        mean_service = workload.mean_service_cycles(core)
        arrivals = generate_arrivals(
            self.requests,
            load,
            mean_service,
            rng,
            coalescing_timeout_cycles=self.config.coalescing_timeout_cycles,
        )
        return arrivals, works

    #: Backwards-compatible alias from when the method was private.
    _stream = stream

    # ------------------------------------------------------------------
    # Baselines
    # ------------------------------------------------------------------
    def _baseline_fingerprint(self, workload: LCWorkload, load: float) -> str:
        """Store key capturing everything the baseline depends on."""
        from ..runtime.spec import BaselineSpec, config_fingerprint

        return BaselineSpec(
            lc_name=workload.name,
            load=load,
            core_kind=self.config.core_kind,
            requests=self.requests,
            seed=self.seed,
            warmup_fraction=self.warmup_fraction,
            target_lines=int(workload.target_lines),
            config_key=config_fingerprint(self.config),
        ).fingerprint()

    def baseline_instance(self, workload: LCWorkload, load: float, instance: int):
        """Run one LC instance alone at its target allocation.

        Returns the instance's
        :class:`~repro.sim.results.LCInstanceResult` (post-warmup
        latency pool plus served/activation counters).  This is the
        *shardable unit* of a baseline: instances share no state — each
        draws its own request stream (:meth:`stream`) and its own
        engine seed (``seed + instance``) — so any subset of instances
        can be simulated in any process and merged in instance order
        to reproduce :meth:`baseline` exactly.
        :class:`repro.runtime.sharding.ShardSpec` calls this for the
        instances its shard covers.
        """
        arrivals, works = self.stream(workload, load, instance)
        spec = LCInstanceSpec(
            workload=workload,
            arrivals=arrivals,
            works=works,
            deadline_cycles=1.0,  # unused by FixedPolicy
            target_tail_cycles=1.0,
            load=load,
        )
        engine = MixEngine.isolated(
            spec,
            config=self.config,
            target_lines=float(workload.target_lines),
            seed=self.seed + instance,
            warmup_fraction=self.warmup_fraction,
            mix_id=f"baseline-{workload.name}",
        )
        return engine.run().lc_instances[0]

    def baseline(self, workload: LCWorkload, load: float) -> BaselineResult:
        """Isolated run at the target allocation (cached).

        Lookup order: in-memory cache, then the persistent store (if
        attached), then a fresh three-instance isolated simulation
        whose result is written back to both layers.  The simulation
        itself is :meth:`baseline_instance` applied to instances
        ``0..LC_INSTANCES-1`` with the pools concatenated in instance
        order — the exact merge rule trace sharding replays, which is
        why a sharded baseline is bit-identical to this serial one.
        """
        key = (workload.name, load, self.config.core_kind)
        hit = self._baseline_cache.get(key)
        if hit is not None:
            return hit
        fingerprint = ""
        if self.store is not None:
            fingerprint = self._baseline_fingerprint(workload, load)
            stored = self.store.get_baseline(fingerprint)
            if stored is not None:
                self._baseline_cache[key] = stored
                return stored
        pooled: List[float] = []
        for instance in range(LC_INSTANCES):
            pooled.extend(self.baseline_instance(workload, load, instance).latencies)
        baseline = BaselineResult(
            tail95_cycles=tail_mean(pooled, 95.0),
            p95_cycles=percentile_latency(pooled, 95.0),
            latencies=tuple(pooled),
        )
        self._baseline_cache[key] = baseline
        if self.store is not None:
            self.store.put_baseline(fingerprint, baseline)
        return baseline

    # ------------------------------------------------------------------
    # Mix execution
    # ------------------------------------------------------------------
    def run_mix(
        self,
        spec: MixSpec,
        policy: Policy,
        scheme: Optional[SchemeModel] = None,
    ) -> MixResult:
        """Run one six-app mix under one policy."""
        baseline = self.baseline(spec.lc_workload, spec.load)
        lc_specs = []
        for instance in range(LC_INSTANCES):
            arrivals, works = self.stream(spec.lc_workload, spec.load, instance)
            lc_specs.append(
                LCInstanceSpec(
                    workload=spec.lc_workload,
                    arrivals=arrivals,
                    works=works,
                    deadline_cycles=baseline.p95_cycles,
                    target_tail_cycles=baseline.tail95_cycles,
                    load=spec.load,
                )
            )
        engine = MixEngine(
            lc_specs=lc_specs,
            batch_workloads=list(spec.batch_apps),
            policy=policy,
            config=self.config,
            scheme=scheme,
            seed=self.seed,
            umon_noise=self.umon_noise,
            warmup_fraction=self.warmup_fraction,
            baseline_lines=float(spec.lc_workload.target_lines),
            mix_id=spec.mix_id,
        )
        result = engine.run()
        result.baseline_tail_cycles = baseline.tail95_cycles
        return result
