"""Mix execution: baselines, request streams, and policy comparisons.

Implements the paper's measurement methodology (Section 6):

* each LC app is first run **alone** with a fixed 2 MB partition (the
  private-LLC baseline); the pooled tail of those runs is both the
  normalization denominator for *tail latency degradation* and the
  source of Ubik's deadline (the 95th-percentile latency at the target
  size);
* the same request streams (fixed work, randomized arrivals) are then
  replayed in the six-app mix under each policy, making comparisons
  across schemes sample-balanced;
* batch apps are normalized to their steady-state IPC with a private
  2 MB LLC, giving the weighted-speedup metric.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cache.schemes import SchemeModel
from ..cpu import make_core_model
from ..policies.base import Policy
from ..runtime.artifacts import get_artifacts, stream_key
from ..server.latency import percentile_latency, tail_mean
from ..workloads.arrivals import generate_arrivals
from ..workloads.latency_critical import LCWorkload
from ..workloads.mixes import MixSpec
from .config import CMPConfig
from .engine import LCInstanceSpec, MixEngine
from .grid_replay import GroupShared
from .lockstep import LockstepEngine, lockstep_enabled, run_lockstep_group
from .results import MixResult

__all__ = ["BaselineResult", "MixRunner"]

#: Default request count per LC instance in scaled runs.
DEFAULT_REQUESTS = 300

#: Instances of the LC workload per mix (paper: three).
LC_INSTANCES = 3


@dataclass(frozen=True)
class BaselineResult:
    """Isolated-run latencies for one LC workload at one load."""

    tail95_cycles: float  # mean beyond p95: the degradation denominator
    p95_cycles: float  # pure percentile: Ubik's deadline
    latencies: Tuple[float, ...]


class MixRunner:
    """Runs mixes and caches isolated baselines."""

    def __init__(
        self,
        config: Optional[CMPConfig] = None,
        requests: int = DEFAULT_REQUESTS,
        seed: int = 1,
        umon_noise: float = 0.02,
        warmup_fraction: float = 0.05,
        store: Optional["ResultStore"] = None,
    ):
        self.config = config or CMPConfig()
        if requests < 20:
            raise ValueError("need at least 20 requests for tail metrics")
        self.requests = requests
        self.seed = seed
        self.umon_noise = umon_noise
        self.warmup_fraction = warmup_fraction
        #: Optional persistent result store; when set, isolated
        #: baselines are fetched from / written to it so every process
        #: sharing the store computes each baseline exactly once.
        self.store = store
        #: In-memory baselines keyed by the full ``BaselineSpec``
        #: fingerprint — not runner identity — so a long-lived
        #: per-process worker runner evaluating specs with differing
        #: ``requests``/``seed``/``warmup_fraction`` can never alias
        #: two distinct baselines.
        self._baseline_cache: Dict[str, BaselineResult] = {}
        #: Fingerprints memoized per (name, target_lines, load): those
        #: are the only ``BaselineSpec`` inputs that vary per call (the
        #: rest are runner constants), so the cache-hit path stays a
        #: dict lookup instead of a JSON + SHA-256 walk per run_mix.
        self._fingerprint_memo: Dict[Tuple[str, int, float], str] = {}

    # ------------------------------------------------------------------
    # Request streams
    # ------------------------------------------------------------------
    def stream(
        self, workload: LCWorkload, load: float, instance: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(arrivals, works) for one instance, deterministic in seed.

        Streams are served from the process-wide artifact cache
        (:mod:`repro.runtime.artifacts`) keyed by the content signature
        of every input — workload, load, instance, request count, seed,
        and the full config fingerprint — so a sweep synthesizes each
        distinct stream once per process: the baseline phase, every
        policy's replay, and every spec sharing the (lc, load) point
        reuse the same frozen arrays.  Synthesis itself is vectorized
        (:meth:`~repro.workloads.service_time.WorkDistribution.sample_many`),
        bit-identical to the scalar loop kept in
        :mod:`repro.workloads.reference`.
        """
        return get_artifacts().get_or_make(
            "stream",
            stream_key(
                workload, load, instance, self.requests, self.seed, self.config
            ),
            lambda: self._synthesize_stream(workload, load, instance),
        )

    def _synthesize_stream(
        self, workload: LCWorkload, load: float, instance: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Actually synthesize one instance's (arrivals, works) arrays."""
        name_key = zlib.crc32(workload.name.encode()) & 0xFFFF
        rng = np.random.default_rng((self.seed, name_key, instance))
        works = workload.work.sample_many(rng, self.requests)
        core = get_artifacts().get_or_make(
            "core_model",
            (self.config.core_kind, self.config.mem_latency_cycles),
            lambda: make_core_model(
                self.config.core_kind, self.config.mem_latency_cycles
            ),
        )
        mean_service = workload.mean_service_cycles(core)
        arrivals = generate_arrivals(
            self.requests,
            load,
            mean_service,
            rng,
            coalescing_timeout_cycles=self.config.coalescing_timeout_cycles,
        )
        # Streams may be shared across runs via the artifact cache;
        # freeze them so accidental mutation fails loudly instead of
        # corrupting a neighbour's simulation.
        arrivals.flags.writeable = False
        works.flags.writeable = False
        return arrivals, works

    # ------------------------------------------------------------------
    # Baselines
    # ------------------------------------------------------------------
    def _baseline_fingerprint(self, workload: LCWorkload, load: float) -> str:
        """Store key capturing everything the baseline depends on."""
        memo_key = (workload.name, int(workload.target_lines), float(load))
        hit = self._fingerprint_memo.get(memo_key)
        if hit is not None:
            return hit
        from ..runtime.artifacts import config_key
        from ..runtime.spec import BaselineSpec

        fingerprint = BaselineSpec(
            lc_name=workload.name,
            load=load,
            core_kind=self.config.core_kind,
            requests=self.requests,
            seed=self.seed,
            warmup_fraction=self.warmup_fraction,
            target_lines=int(workload.target_lines),
            config_key=config_key(self.config),
        ).fingerprint()
        self._fingerprint_memo[memo_key] = fingerprint
        return fingerprint

    def baseline_instance(self, workload: LCWorkload, load: float, instance: int):
        """Run one LC instance alone at its target allocation.

        Returns the instance's
        :class:`~repro.sim.results.LCInstanceResult` (post-warmup
        latency pool plus served/activation counters).  This is the
        *shardable unit* of a baseline: instances share no state — each
        draws its own request stream (:meth:`stream`) and its own
        engine seed (``seed + instance``) — so any subset of instances
        can be simulated in any process and merged in instance order
        to reproduce :meth:`baseline` exactly.
        :class:`repro.runtime.sharding.ShardSpec` calls this for the
        instances its shard covers.
        """
        arrivals, works = self.stream(workload, load, instance)
        spec = LCInstanceSpec(
            workload=workload,
            arrivals=arrivals,
            works=works,
            deadline_cycles=1.0,  # unused by FixedPolicy
            target_tail_cycles=1.0,
            load=load,
        )
        engine = MixEngine.isolated(
            spec,
            config=self.config,
            target_lines=float(workload.target_lines),
            seed=self.seed + instance,
            warmup_fraction=self.warmup_fraction,
            mix_id=f"baseline-{workload.name}",
        )
        return engine.run().lc_instances[0]

    def baseline(self, workload: LCWorkload, load: float) -> BaselineResult:
        """Isolated run at the target allocation (cached).

        Lookup order: this runner's in-memory cache, the process-wide
        artifact cache (which lets a long-lived worker serve a baseline
        to every spec in a batch, store or no store), the persistent
        store (if attached), then a fresh three-instance isolated
        simulation.  Whatever layer resolves it, the result is written
        back to every faster layer — and to the store when it was
        absent there, so a store populated with the artifact cache
        enabled holds the exact same documents as one populated with it
        off.  The simulation itself is :meth:`baseline_instance`
        applied to instances ``0..LC_INSTANCES-1`` with the pools
        concatenated in instance order — the exact merge rule trace
        sharding replays, which is why a sharded baseline is
        bit-identical to this serial one.
        """
        fingerprint = self._baseline_fingerprint(workload, load)
        hit = self._baseline_cache.get(fingerprint)
        if hit is not None:
            return hit
        artifacts = get_artifacts()
        baseline = artifacts.get("baseline", fingerprint)
        from_store = False
        computed = False
        if baseline is None and self.store is not None:
            baseline = self.store.get_baseline(fingerprint)
            from_store = baseline is not None
        if baseline is None:
            pooled: List[float] = []
            for instance in range(LC_INSTANCES):
                pooled.extend(
                    self.baseline_instance(workload, load, instance).latencies
                )
            baseline = BaselineResult(
                tail95_cycles=tail_mean(pooled, 95.0),
                p95_cycles=percentile_latency(pooled, 95.0),
                latencies=tuple(pooled),
            )
            computed = True
        self._baseline_cache[fingerprint] = baseline
        artifacts.put("baseline", fingerprint, baseline)
        if self.store is not None and not from_store:
            if computed or self.store.get(fingerprint) is None:
                self.store.put_baseline(fingerprint, baseline)
        return baseline

    # ------------------------------------------------------------------
    # Mix execution
    # ------------------------------------------------------------------
    def run_mix(
        self,
        spec: MixSpec,
        policy: Policy,
        scheme: Optional[SchemeModel] = None,
        shared: Optional[GroupShared] = None,
    ) -> MixResult:
        """Run one six-app mix under one policy.

        With ``shared`` unset this is the scalar per-cell replay — the
        **oracle** every grouped and lockstep execution is measured
        against: passing a
        :class:`~repro.sim.grid_replay.GroupShared` (one per replay
        group, as :meth:`run_mix_group` does) must leave the returned
        :class:`~repro.sim.results.MixResult` bit-identical.
        """
        baseline = self.baseline(spec.lc_workload, spec.load)
        lc_specs = self._mix_lc_specs(spec, baseline)
        engine = MixEngine(
            lc_specs=lc_specs,
            batch_workloads=list(spec.batch_apps),
            policy=policy,
            config=self.config,
            scheme=scheme,
            seed=self.seed,
            umon_noise=self.umon_noise,
            warmup_fraction=self.warmup_fraction,
            baseline_lines=float(spec.lc_workload.target_lines),
            mix_id=spec.mix_id,
            shared=shared,
        )
        result = engine.run()
        result.baseline_tail_cycles = baseline.tail95_cycles
        return result

    def _mix_lc_specs(
        self, spec: MixSpec, baseline: BaselineResult
    ) -> List[LCInstanceSpec]:
        """The three LC instance specs of one mix (shared-array streams)."""
        lc_specs = []
        for instance in range(LC_INSTANCES):
            arrivals, works = self.stream(spec.lc_workload, spec.load, instance)
            lc_specs.append(
                LCInstanceSpec(
                    workload=spec.lc_workload,
                    arrivals=arrivals,
                    works=works,
                    deadline_cycles=baseline.p95_cycles,
                    target_tail_cycles=baseline.tail95_cycles,
                    load=spec.load,
                )
            )
        return lc_specs

    def run_mix_group(
        self,
        spec: MixSpec,
        cells: List[Tuple[Policy, Optional[SchemeModel]]],
        lockstep: Optional[bool] = None,
    ) -> List[MixResult]:
        """Replay one mix under many policy/scheme cells as one group.

        All cells share a single
        :class:`~repro.sim.grid_replay.GroupShared` context, so the
        group-constant sub-computations (curve segments, rates, stream
        statistics, first-interval view statics) run once and every
        later cell rides on them.  By default (``REPRO_LOCKSTEP`` on)
        the group's partitioned cells advance **in lockstep** through
        :func:`~repro.sim.lockstep.run_lockstep_group` — one shared
        arrival schedule driving every cell's engine step by step;
        ``lockstep=False`` (or ``REPRO_LOCKSTEP=0``) restores the PR-7
        per-cell loop over the same shared context.  Results come back
        in ``cells`` order, each bit-identical to the corresponding
        per-cell :meth:`run_mix` in **both** modes — the equivalence
        suites pin that contract at group sizes 1 through 8 and wider.

        The first cell is counted as a ``replay_group`` miss (it built
        the group state) and each subsequent cell as a hit, surfacing
        the sharing through ``repro cache --stats`` next to the other
        artifact kinds.
        """
        if lockstep is None:
            lockstep = lockstep_enabled()
        shared = GroupShared()
        artifacts = get_artifacts()
        if not lockstep:
            results = []
            for position, (policy, scheme) in enumerate(cells):
                artifacts.count("replay_group", hit=position > 0)
                results.append(
                    self.run_mix(spec, policy, scheme=scheme, shared=shared)
                )
            return results
        baseline = self.baseline(spec.lc_workload, spec.load)
        lc_specs = self._mix_lc_specs(spec, baseline)
        engines = []
        for position, (policy, scheme) in enumerate(cells):
            artifacts.count("replay_group", hit=position > 0)
            engines.append(
                LockstepEngine(
                    lc_specs=lc_specs,
                    batch_workloads=list(spec.batch_apps),
                    policy=policy,
                    config=self.config,
                    scheme=scheme,
                    seed=self.seed,
                    umon_noise=self.umon_noise,
                    warmup_fraction=self.warmup_fraction,
                    baseline_lines=float(spec.lc_workload.target_lines),
                    mix_id=spec.mix_id,
                    shared=shared,
                )
            )
        results = run_lockstep_group(engines)
        for result in results:
            result.baseline_tail_cycles = baseline.tail95_cycles
        return results
