"""Grouped (structure-of-shared-state) replay of sweep-grid cells.

A policy sweep evaluates many grid *cells* — (mix, policy, scheme)
triples — whose six-app event loops replay the **same** request streams
over the **same** miss curves and differ only in the policy/scheme
parameters steering them.  PR 5's artifact cache removed the redundant
*derivation* (baselines, streams, workload objects); this module
removes the redundant group-constant sub-computations from the replay;
and :mod:`repro.sim.lockstep` takes the last step, advancing the whole
group's event loops in lockstep over one shared arrival schedule — the
per-cell event loop is no longer the irreducible unit.

This module batches that replay **across cells**.  Cells that share
identical streams are routed into one *replay group* and advanced
through :class:`~repro.sim.engine.MixEngine` with one
:class:`GroupShared` context: every group-constant sub-computation —
curve-segment evaluations (the PR-4 per-epoch memos, hoisted from
per-engine to per-group), initial access rates, stream statistics,
first-interval view statics — is computed by the first cell that needs
it and served to every sibling.  Policy decisions stay per-cell (each
cell keeps its own event loop, RNG, fill states and partition targets),
which is what preserves bit-identity: the shared layer only memoizes
*pure* values keyed by the exact inputs they depend on, so a grouped
cell performs the identical float operations in the identical order as
the scalar per-cell replay — the oracle
:meth:`~repro.sim.mix_runner.MixRunner.run_mix` runs without a group.

What makes two cells groupable (the *group-planning rules*):

* the same mix reference (LC workload, load, batch combo, rep —
  hence the same arrival/work arrays and miss curves),
* the same engine-visible run parameters: core kind, request count,
  seed, UMON noise, warmup fraction.

Policy and scheme are deliberately **excluded** — differing decisions
are exactly what a group exists to compare.  Scheme objects are still
pinned into every shared key that could observe them (segment scopes
include ``id(scheme)``), so heterogeneous-scheme cells in one group
split into disjoint key spaces and stay exact.

``REPRO_GRID_REPLAY=0`` (or ``off``/``false``/``no``) disables grouping
everywhere; the golden suite pins store trees byte-identical with the
toggle on and off.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Hashable, Iterable, List, Tuple

import numpy as np

__all__ = ["GroupShared", "grid_replay_enabled", "plan_groups"]

#: Environment toggle: ``0``/``off``/``false``/``no`` disables grouping.
_ENV_TOGGLE = "REPRO_GRID_REPLAY"


def grid_replay_enabled() -> bool:
    """Whether the environment enables grouped replay (default on)."""
    toggle = os.environ.get(_ENV_TOGGLE, "").strip().lower()
    return toggle not in ("0", "off", "false", "no")


class GroupShared:
    """Shared memo context for one replay group.

    One instance lives for the duration of one group's replays and is
    handed to every :class:`~repro.sim.engine.MixEngine` in the group.
    All tables are **value memos**: keys capture every input the cached
    value depends on, so a hit returns exactly what the missing cell
    would have computed.  Keys that identify unhashable inputs (miss
    curves, schemes, stream arrays) use ``id()`` — valid only while the
    keyed object is alive, which is why :meth:`retain` pins a strong
    reference to every such object for the group's lifetime: without
    it, a garbage-collected curve could hand its ``id`` to a fresh
    object and silently alias someone else's segments.
    """

    def __init__(self) -> None:
        #: ((id(curve), id(scheme)), resident, target) -> (p0, b, dr).
        self.segments: Dict[Tuple, Tuple[float, float, float]] = {}
        #: app index -> initial access rate (group cells share apps).
        self.rates: Dict[int, float] = {}
        #: (id(works), apki) -> (req_accesses, mean, tail) per stream.
        self.stream_stats: Dict[Tuple, Tuple] = {}
        #: app index -> static first-interval AppView fields.
        self.view_static: Dict[int, Tuple] = {}
        #: id(curve) -> (sizes as floats, miss ratios as floats).
        self.curve_tables: Dict[int, Tuple[List[float], List[float]]] = {}
        #: id(array) -> the array as a Python float list (exact).
        self.float_lists: Dict[int, List[float]] = {}
        #: ids of the group's arrival arrays -> merged event schedule.
        self.lockstep_schedules: Dict[Tuple, Tuple] = {}
        self._retained: List[Any] = []

    def retain(self, *objects: Any) -> None:
        """Pin id-keyed objects alive for the group's lifetime."""
        self._retained.extend(objects)

    def tables_for(self, curve) -> Tuple[List[float], List[float]]:
        """Python float tables of ``curve`` (for ``bisect``), cached.

        Entries are the same ``float(sizes[i])``/``float(ratios[i])``
        coercions :meth:`FillState._segment` performs per lookup, so a
        binary search over them lands on bit-identical breakpoints.
        """
        key = id(curve)
        tables = self.curve_tables.get(key)
        if tables is None:
            tables = (
                [float(x) for x in curve.sizes],
                [float(x) for x in curve.miss_ratios],
            )
            self.curve_tables[key] = tables
            self._retained.append(curve)
        return tables

    def floats_for(self, array: np.ndarray) -> List[float]:
        """``array`` as a cached Python float list.

        ``tolist`` on a float64 array yields exactly the ``float(x)``
        coercions the scalar engine performs per element, so indexing
        the list reproduces the oracle's values bit-for-bit without a
        numpy scalar extraction per event.
        """
        key = id(array)
        hit = self.float_lists.get(key)
        if hit is None:
            hit = array.tolist()
            self.float_lists[key] = hit
            self._retained.append(array)
        return hit

    def lockstep_schedule_for(self, arrival_arrays: List[np.ndarray]) -> Tuple:
        """The group's merged arrival schedule, built once.

        Returns ``(times, seqs, app_positions, req_indices)`` as Python
        lists, sorted by ``(time, seq)`` where ``seq`` is the position
        in the app-major concatenation of the arrival arrays.  The
        scalar oracle pushes its arrival events app-major before any
        other event, so its heap assigns exactly these seqs and pops
        arrivals in exactly this order — a stable argsort of the
        concatenated times *is* the oracle's arrival ordering.
        """
        key = tuple(id(array) for array in arrival_arrays)
        hit = self.lockstep_schedules.get(key)
        if hit is None:
            times = np.concatenate(arrival_arrays)
            order = np.argsort(times, kind="stable")
            lengths = [len(array) for array in arrival_arrays]
            apps = np.repeat(np.arange(len(arrival_arrays)), lengths)
            reqs = np.concatenate([np.arange(length) for length in lengths])
            hit = (
                times[order].tolist(),
                order.tolist(),
                apps[order].tolist(),
                reqs[order].tolist(),
            )
            self.lockstep_schedules[key] = hit
            self._retained.extend(arrival_arrays)
        return hit


def plan_groups(keys: Iterable[Hashable]) -> List[List[int]]:
    """Partition positions into replay groups by key equality.

    ``keys[i]`` must capture everything two cells need in common to
    share one :class:`GroupShared` (see the module docstring's
    group-planning rules).  Returns groups in first-appearance order,
    each a list of original positions in input order — so callers can
    execute groups and scatter results back without reordering anything
    observable.
    """
    buckets: Dict[Hashable, List[int]] = {}
    order: List[List[int]] = []
    for pos, key in enumerate(keys):
        bucket = buckets.get(key)
        if bucket is None:
            bucket = buckets[key] = []
            order.append(bucket)
        bucket.append(pos)
    return order
