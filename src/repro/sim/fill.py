"""Partition fill state: the engine's transient model (paper Sec 5.1).

Under Vantage, a partition below its target grows by **one line per
miss** and loses nothing until it reaches the target.  An application's
instantaneous miss ratio is therefore its miss curve evaluated at its
*resident* line count, and execution obeys

    dr/dn     = e * p(r)          (growth: e = fill efficiency, 1 for Vantage)
    dT/dn     = c + p(r) * M      (cycles per access)

where ``n`` counts LLC accesses, ``c`` is the all-hit access interval
and ``M`` the effective miss penalty.  Because miss curves are
piecewise linear, both equations integrate in closed form per segment:
on a segment with ``p(r) = p0 * exp(e*b*n)`` (slope ``b``), the misses
in a growth step equal ``delta_r / e`` exactly — each miss adds one
line — and cycles follow as ``c*n + M*misses``.

The engine uses the *exact* integral; Ubik's controller uses the
paper's conservative upper bounds (:mod:`repro.core.transient`), so the
simulation exposes the controller's real safety margin.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from ..cache.schemes import SchemeModel
from ..monitor.miss_curve import MissCurve

__all__ = ["Advance", "FillState", "GroupFillState"]

_EPS = 1e-12


@dataclass(frozen=True)
class Advance:
    """Result of advancing an app: cycles spent, work done, misses seen."""

    cycles: float
    accesses: float
    misses: float

    def merged(self, other: "Advance") -> "Advance":
        return Advance(
            cycles=self.cycles + other.cycles,
            accesses=self.accesses + other.accesses,
            misses=self.misses + other.misses,
        )


class FillState:
    """Resident-lines tracker with closed-form execution advancement.

    Parameters
    ----------
    curve:
        The app's true steady-state miss curve.
    hit_interval:
        Cycles between LLC accesses when all hit (the paper's ``c``).
    miss_penalty:
        Effective stall cycles per miss (the paper's ``M``).
    scheme:
        Partitioning-scheme imperfection model; defaults to ideal
        (Vantage-on-zcache) behaviour.
    """

    def __init__(
        self,
        curve: MissCurve,
        hit_interval: float,
        miss_penalty: float,
        scheme: SchemeModel | None = None,
        resident: float = 0.0,
        target: float = 0.0,
    ):
        if hit_interval < 0 or miss_penalty < 0:
            raise ValueError("c and M must be non-negative")
        self.curve = curve
        self.hit_interval = float(hit_interval)
        self.miss_penalty = float(miss_penalty)
        self.scheme = scheme
        self._fill_efficiency = 1.0
        self._miss_multiplier = 1.0
        self.resident = float(resident)
        self.target = 0.0
        # Value-keyed memos for the two curve lookups on the engine's
        # event hot path.  Keys are the exact state values the result
        # depends on, so staleness is impossible: any state change
        # changes the key and forces a recompute of the same expression
        # the uncached code evaluated — cached results are bit-identical
        # by construction.
        self._p_key: float | None = None  # resident -> base miss ratio
        self._p_val = 0.0
        self._seg_key: tuple | None = None  # (resident, target) -> segment
        self._seg_val: tuple = (0.0, 0.0, 0.0)
        self.set_target(target)
        if resident > self.effective_target:
            self.resident = self.effective_target

    def clone(self) -> "FillState":
        """A detached copy for projection walks (no shared mutable state).

        The engine's service walk advances a clone to *predict* event
        times without disturbing the committed state; memos start cold
        (they are value-keyed, so warm and cold caches agree exactly).
        """
        clone = FillState.__new__(FillState)
        clone.curve = self.curve
        clone.hit_interval = self.hit_interval
        clone.miss_penalty = self.miss_penalty
        clone.scheme = self.scheme
        clone._fill_efficiency = self._fill_efficiency
        clone._miss_multiplier = self._miss_multiplier
        clone.resident = self.resident
        clone.target = self.target
        clone._p_key = None
        clone._p_val = 0.0
        clone._seg_key = None
        clone._seg_val = (0.0, 0.0, 0.0)
        return clone

    # ------------------------------------------------------------------
    # Target management
    # ------------------------------------------------------------------
    def set_target(self, lines: float) -> None:
        """Retarget the partition; shrinking releases lines immediately."""
        if lines < 0:
            raise ValueError("target must be non-negative")
        if self.scheme is not None and lines > 0:
            lines = float(self.scheme.quantize(lines))
            self._miss_multiplier = self.scheme.miss_multiplier(
                lines, self.curve.max_size
            )
        else:
            self._miss_multiplier = 1.0
        self.target = float(lines)
        if self.resident > self.effective_target:
            self.resident = self.effective_target

    @property
    def effective_target(self) -> float:
        """Lines the scheme actually lets the partition retain."""
        if self.scheme is None:
            return self.target
        return self.scheme.effective_target(self.target)

    def begin_transient(self, rng: np.random.Generator | None = None) -> None:
        """Start a fill transient; draws the scheme's fill efficiency."""
        if self.scheme is None or rng is None:
            self._fill_efficiency = 1.0
        else:
            self._fill_efficiency = self.scheme.draw_fill_efficiency(rng)

    def apply_idle_loss(self, rng: np.random.Generator | None = None) -> None:
        """Soft-partitioning leakage accrued over an idle period."""
        if self.scheme is None or rng is None:
            return
        loss = self.scheme.draw_idle_loss(rng)
        if loss > 0:
            self.resident *= 1.0 - loss

    # ------------------------------------------------------------------
    # Miss-ratio evaluation
    # ------------------------------------------------------------------
    def base_miss_ratio(self) -> float:
        """Miss ratio from the curve at current residency (no penalty)."""
        if self._p_key != self.resident:
            self._p_val = float(self.curve(self.resident))
            self._p_key = self.resident
        return self._p_val

    def miss_ratio(self) -> float:
        """Observed miss ratio, including associativity penalties."""
        return min(1.0, self.base_miss_ratio() * self._miss_multiplier)

    @property
    def filling(self) -> bool:
        """True while the partition is still growing toward its target."""
        return self.resident < self.effective_target - _EPS

    # ------------------------------------------------------------------
    # Advancement
    # ------------------------------------------------------------------
    def advance_accesses(self, accesses: float) -> Advance:
        """Execute ``accesses`` LLC accesses from the current state."""
        if accesses < 0:
            raise ValueError("accesses must be non-negative")
        remaining = float(accesses)
        cycles = 0.0
        misses = 0.0
        while remaining > _EPS and self.filling:
            step = self._growth_step(max_accesses=remaining)
            if step is None:
                break  # zero miss ratio: growth stalled, behave as steady
            seg_n, seg_dr = step
            seg_misses = seg_dr / self._fill_efficiency * self._miss_multiplier
            cycles += self.hit_interval * seg_n + self.miss_penalty * seg_misses
            misses += seg_misses
            self.resident += seg_dr
            remaining -= seg_n
        if remaining > _EPS:
            p = self.miss_ratio()
            seg_misses = remaining * p
            cycles += remaining * self.hit_interval + seg_misses * self.miss_penalty
            misses += seg_misses
            remaining = 0.0
        return Advance(cycles=cycles, accesses=accesses, misses=misses)

    def advance_cycles(self, budget: float) -> Advance:
        """Execute for ``budget`` cycles; returns work actually done."""
        if budget < 0:
            raise ValueError("budget must be non-negative")
        remaining = float(budget)
        accesses = 0.0
        misses = 0.0
        while remaining > _EPS and self.filling:
            step = self._growth_step(max_accesses=None)
            if step is None:
                break
            seg_n, seg_dr = step
            seg_misses = seg_dr / self._fill_efficiency * self._miss_multiplier
            seg_cycles = self.hit_interval * seg_n + self.miss_penalty * seg_misses
            if seg_cycles <= remaining:
                remaining -= seg_cycles
                accesses += seg_n
                misses += seg_misses
                self.resident += seg_dr
                continue
            part_n = self._invert_segment_time(remaining)
            part_dr = self._growth_over(part_n)
            part_misses = part_dr / self._fill_efficiency * self._miss_multiplier
            accesses += part_n
            misses += part_misses
            self.resident += part_dr
            remaining = 0.0
        if remaining > _EPS:
            p = self.miss_ratio()
            per_access = self.hit_interval + p * self.miss_penalty
            if per_access <= 0:
                raise RuntimeError("app makes no progress: zero access interval")
            seg_n = remaining / per_access
            accesses += seg_n
            misses += seg_n * p
            remaining = 0.0
        return Advance(cycles=budget - remaining, accesses=accesses, misses=misses)

    # ------------------------------------------------------------------
    # Segment machinery
    # ------------------------------------------------------------------
    def _segment(self):
        """Current curve segment: (p0, slope b, lines to segment end).

        Memoized on ``(resident, target)`` — the exact values the
        result depends on — because one growth step queries the same
        segment several times (:meth:`_growth_step`,
        :meth:`_growth_over`, :meth:`_invert_segment_time`).
        """
        key = (self.resident, self.target)
        if key == self._seg_key:
            return self._seg_val
        sizes = self.curve.sizes
        ratios = self.curve.miss_ratios
        idx = int(np.searchsorted(sizes, self.resident, side="right")) - 1
        idx = max(0, min(idx, sizes.size - 2))
        s_lo, s_hi = float(sizes[idx]), float(sizes[idx + 1])
        m_lo, m_hi = float(ratios[idx]), float(ratios[idx + 1])
        b = (m_hi - m_lo) / (s_hi - s_lo)
        p0 = m_lo + b * (self.resident - s_lo)
        seg_end = min(s_hi, self.effective_target)
        result = (p0, b, max(0.0, seg_end - self.resident))
        self._seg_key = key
        self._seg_val = result
        return result

    def _growth_step(self, max_accesses: float | None):
        """One growth step within the current segment.

        Returns ``(accesses, lines_grown)`` for growing to the segment
        end (or target), clipped to ``max_accesses``; ``None`` if the
        miss ratio is zero (no growth possible).
        """
        p0, b, dr_seg = self._segment()
        e = self._fill_efficiency
        if p0 <= _EPS:
            return None
        if dr_seg <= _EPS:
            # Floating-point corner: effectively at target already.
            # Snap and treat the remainder as steady-state execution.
            self.resident = self.effective_target
            return None
        p1 = p0 + b * dr_seg
        if abs(p1 - p0) < 1e-9 * max(p0, 1e-30):
            # Effectively constant miss ratio on this stretch.
            n_full = dr_seg / (e * p0)
            if max_accesses is None or n_full <= max_accesses:
                return n_full, dr_seg
            return max_accesses, e * p0 * max_accesses
        if p1 <= _EPS:
            # Curve hits zero inside the segment: solve growth to the
            # zero crossing, which takes unbounded accesses; clip.
            p1 = _EPS
            dr_seg = (p1 - p0) / b
        n_full = math.log(p1 / p0) / (e * b)
        if max_accesses is None or n_full <= max_accesses:
            return n_full, dr_seg
        dr = self._growth_over(max_accesses)
        return max_accesses, dr

    def _growth_over(self, n: float) -> float:
        """Lines grown after ``n`` accesses within the current segment."""
        p0, b, dr_seg = self._segment()
        e = self._fill_efficiency
        if p0 <= _EPS or n <= 0:
            return 0.0
        if abs(b) < 1e-30:
            return min(e * p0 * n, dr_seg)
        grown = (p0 / b) * (math.exp(e * b * n) - 1.0)
        return min(max(grown, 0.0), dr_seg)

    def _invert_segment_time(self, budget: float) -> float:
        """Accesses achievable in ``budget`` cycles within this segment."""
        p0, __, __ = self._segment()
        per_access_max = self.hit_interval + p0 * self.miss_penalty
        if per_access_max <= 0:
            raise RuntimeError("zero-cost access: cannot invert time")
        lo, hi = 0.0, budget / max(self.hit_interval, _EPS) if self.hit_interval else 0.0
        if hi == 0.0:
            hi = budget / per_access_max * 4 + 1.0
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            dr = self._growth_over(mid)
            cost = (
                self.hit_interval * mid
                + self.miss_penalty * dr / self._fill_efficiency * self._miss_multiplier
            )
            if cost < budget:
                lo = mid
            else:
                hi = mid
        return lo


class GroupFillState(FillState):
    """A :class:`FillState` wired into a replay group's shared memos.

    The grid-replay engine (:mod:`repro.sim.grid_replay`) advances many
    sweep cells that share the same miss curves over the same request
    streams, so their fill states keep asking for the same curve
    segments.  This subclass performs the *identical float operations
    in the identical order* as the parent — its results are bit-equal
    by construction — while removing the redundancy:

    * the per-instance ``(resident, target)`` segment memo falls back
      to a **group-shared** table keyed by ``(scope, resident, target)``
      where ``scope`` pins the exact curve/scheme objects, so a segment
      computed by one cell is served to every sibling;
    * segment misses binary-search a pre-converted Python float list
      (``bisect_right`` equals ``np.searchsorted(side="right")``, and
      the list entries are the same ``float(sizes[i])`` values the
      parent coerced per lookup);
    * :meth:`base_miss_ratio` evaluates the curve with a scalar
      ``bisect`` + lerp over the same float tables instead of calling
      ``np.interp`` on a Python scalar — for an ascending knot grid the
      interpolant is the one multiply-add ``np.interp`` performs on the
      same segment, so the result is bit-equal (clamping included);
    * ``effective_target`` is maintained as the plain attribute
      ``_eff_target``, recomputed in :meth:`set_target` — the only
      place the target (and hence the value) can change — so the
      ``filling`` check and the advance loops skip the property
      dispatch and the scheme branch;
    * the advance/inversion loops hoist attribute reads to locals and
      replace ``min``/``max``/``abs`` builtins with conditional
      expressions that replicate their semantics exactly (first
      argument returned on equality, ``-0.0`` handling included);
    * the 80-iteration time inversion exits early once the bisection
      interval stops moving: when ``mid == lo`` (or ``mid == hi``) the
      midpoint can never change again, so ``lo`` is already the value
      the remaining iterations would return.

    ``tests/sim/test_grid_replay_equivalence.py`` pins the bit identity
    against the parent class across policies, loads, and seeds.
    """

    def __init__(
        self,
        curve: MissCurve,
        hit_interval: float,
        miss_penalty: float,
        scheme: SchemeModel | None = None,
        resident: float = 0.0,
        target: float = 0.0,
        *,
        shared_segments: dict,
        seg_scope: tuple,
        curve_tables: tuple,
    ):
        # The shared refs must exist before the parent constructor runs
        # (it may touch the segment machinery via ``set_target``).
        self._shared_segments = shared_segments
        self._seg_scope = seg_scope
        self._curve_tables = curve_tables
        super().__init__(
            curve, hit_interval, miss_penalty,
            scheme=scheme, resident=resident, target=target,
        )

    def clone(self) -> "GroupFillState":
        """Parent :meth:`FillState.clone`, preserving the group wiring."""
        clone = GroupFillState.__new__(GroupFillState)
        clone.curve = self.curve
        clone.hit_interval = self.hit_interval
        clone.miss_penalty = self.miss_penalty
        clone.scheme = self.scheme
        clone._fill_efficiency = self._fill_efficiency
        clone._miss_multiplier = self._miss_multiplier
        clone.resident = self.resident
        clone.target = self.target
        clone._p_key = None
        clone._p_val = 0.0
        clone._seg_key = None
        clone._seg_val = (0.0, 0.0, 0.0)
        clone._shared_segments = self._shared_segments
        clone._seg_scope = self._seg_scope
        clone._curve_tables = self._curve_tables
        clone._eff_target = self._eff_target
        return clone

    def set_target(self, lines: float) -> None:
        """Parent :meth:`FillState.set_target`, then refresh ``_eff_target``.

        ``effective_target`` depends only on the (immutable) scheme and
        the target, and ``set_target`` is the sole writer of the
        target, so recomputing the cached value here keeps it exact.
        """
        super().set_target(lines)
        self._eff_target = self.effective_target

    @property
    def filling(self) -> bool:
        """Parent :meth:`FillState.filling` over the cached target."""
        return self.resident < self._eff_target - _EPS

    def base_miss_ratio(self) -> float:
        """Parent :meth:`FillState.base_miss_ratio` without ``np.interp``.

        ``np.interp`` on a scalar inside an ascending grid finds the
        segment ``sizes[j] <= x < sizes[j+1]`` and evaluates
        ``slope * (x - sizes[j]) + ratios[j]``; outside the grid it
        clamps to the endpoint values.  This replica performs those
        exact operations on the cached float tables (same values the
        parent's ``float(...)`` coercion would produce), so the memo
        stores bit-identical ratios.
        """
        r = self.resident
        if self._p_key != r:
            sizes_l, ratios_l = self._curve_tables
            if r <= sizes_l[0]:
                val = ratios_l[0]
            elif r >= sizes_l[-1]:
                val = ratios_l[-1]
            else:
                j = bisect_right(sizes_l, r) - 1
                s_lo = sizes_l[j]
                m_lo = ratios_l[j]
                val = (
                    (ratios_l[j + 1] - m_lo) / (sizes_l[j + 1] - s_lo)
                ) * (r - s_lo) + m_lo
            self._p_val = val
            self._p_key = r
        return self._p_val

    def _segment(self):
        """Parent :meth:`FillState._segment` through the shared table.

        The instance memo stays authoritative (same key, same result);
        only its misses consult the group table, and only *its* misses
        recompute — with ``bisect_right`` over the cached float list in
        place of ``np.searchsorted`` and conditional expressions in
        place of ``min``/``max``, both exact replicas.
        """
        key = (self.resident, self.target)
        if key == self._seg_key:
            return self._seg_val
        skey = (self._seg_scope, self.resident, self.target)
        result = self._shared_segments.get(skey)
        if result is None:
            sizes_l, ratios_l = self._curve_tables[0], self._curve_tables[1]
            idx = bisect_right(sizes_l, self.resident) - 1
            n = len(sizes_l)
            if idx < 0:
                idx = 0
            elif idx > n - 2:
                idx = n - 2
            s_lo, s_hi = sizes_l[idx], sizes_l[idx + 1]
            m_lo, m_hi = ratios_l[idx], ratios_l[idx + 1]
            b = (m_hi - m_lo) / (s_hi - s_lo)
            p0 = m_lo + b * (self.resident - s_lo)
            eff = self._eff_target
            seg_end = s_hi if s_hi < eff else eff
            dr = seg_end - self.resident
            result = (p0, b, dr if dr > 0.0 else 0.0)
            self._shared_segments[skey] = result
        self._seg_key = key
        self._seg_val = result
        return result

    def advance_accesses(self, accesses: float) -> Advance:
        """Parent :meth:`FillState.advance_accesses`, loops fused.

        ``_growth_step``/``_growth_over`` are inlined with hoisted
        locals; every branch mirrors the parent's structure (including
        the near-flat-segment test and the zero-crossing clip), so the
        arithmetic — and hence every rounding — is unchanged.
        """
        if accesses < 0:
            raise ValueError("accesses must be non-negative")
        remaining = float(accesses)
        cycles = 0.0
        misses = 0.0
        hit, mp = self.hit_interval, self.miss_penalty
        e, mult = self._fill_efficiency, self._miss_multiplier
        eff_target = self._eff_target
        seg_key = self._seg_key
        seg_val = self._seg_val
        while remaining > _EPS and self.resident < eff_target - _EPS:
            key = (self.resident, self.target)
            if key == seg_key:
                p0, b, dr_seg = seg_val
            else:
                p0, b, dr_seg = seg_val = self._segment()
                seg_key = key
            if p0 <= _EPS:
                break
            if dr_seg <= _EPS:
                self.resident = eff_target
                break
            p1 = p0 + b * dr_seg
            ad = p1 - p0
            if ad < 0.0:
                ad = -ad
            thr = p0 if p0 > 1e-30 else 1e-30
            if ad < 1e-9 * thr:
                n_full = dr_seg / (e * p0)
                if n_full <= remaining:
                    seg_n, seg_dr = n_full, dr_seg
                else:
                    seg_n = remaining
                    g = e * p0 * remaining
                    seg_dr = g if g < dr_seg else dr_seg
            else:
                if p1 <= _EPS:
                    p1 = _EPS
                    dr_seg = (p1 - p0) / b
                n_full = math.log(p1 / p0) / (e * b)
                if n_full <= remaining:
                    seg_n, seg_dr = n_full, dr_seg
                else:
                    if p0 <= _EPS or remaining <= 0:
                        dr = 0.0
                    elif -1e-30 < b < 1e-30:
                        g = e * p0 * remaining
                        dr = g if g < dr_seg else dr_seg
                    else:
                        grown = (p0 / b) * (math.exp(e * b * remaining) - 1.0)
                        if grown < 0.0:
                            grown = 0.0
                        dr = grown if grown < dr_seg else dr_seg
                    seg_n, seg_dr = remaining, dr
            seg_misses = seg_dr / e * mult
            cycles += hit * seg_n + mp * seg_misses
            misses += seg_misses
            self.resident += seg_dr
            remaining -= seg_n
        if remaining > _EPS:
            p = self.miss_ratio()
            seg_misses = remaining * p
            cycles += remaining * hit + seg_misses * mp
            misses += seg_misses
            remaining = 0.0
        return Advance(cycles=cycles, accesses=accesses, misses=misses)

    def advance_cycles(self, budget: float) -> Advance:
        """Parent :meth:`FillState.advance_cycles`, loops fused."""
        if budget < 0:
            raise ValueError("budget must be non-negative")
        remaining = float(budget)
        accesses = 0.0
        misses = 0.0
        hit, mp = self.hit_interval, self.miss_penalty
        e, mult = self._fill_efficiency, self._miss_multiplier
        eff_target = self._eff_target
        while remaining > _EPS and self.resident < eff_target - _EPS:
            key = (self.resident, self.target)
            if key == self._seg_key:
                p0, b, dr_seg = self._seg_val
            else:
                p0, b, dr_seg = self._segment()
            if p0 <= _EPS:
                break
            if dr_seg <= _EPS:
                self.resident = eff_target
                break
            p1 = p0 + b * dr_seg
            ad = p1 - p0
            if ad < 0.0:
                ad = -ad
            thr = p0 if p0 > 1e-30 else 1e-30
            if ad < 1e-9 * thr:
                seg_n, seg_dr = dr_seg / (e * p0), dr_seg
            else:
                if p1 <= _EPS:
                    p1 = _EPS
                    dr_seg = (p1 - p0) / b
                seg_n, seg_dr = math.log(p1 / p0) / (e * b), dr_seg
            seg_misses = seg_dr / e * mult
            seg_cycles = hit * seg_n + mp * seg_misses
            if seg_cycles <= remaining:
                remaining -= seg_cycles
                accesses += seg_n
                misses += seg_misses
                self.resident += seg_dr
                continue
            part_n = self._invert_segment_time(remaining)
            if p0 <= _EPS or part_n <= 0:
                part_dr = 0.0
            elif -1e-30 < b < 1e-30:
                g = e * p0 * part_n
                part_dr = g if g < dr_seg else dr_seg
            else:
                grown = (p0 / b) * (math.exp(e * b * part_n) - 1.0)
                if grown < 0.0:
                    grown = 0.0
                part_dr = grown if grown < dr_seg else dr_seg
            part_misses = part_dr / e * mult
            accesses += part_n
            misses += part_misses
            self.resident += part_dr
            remaining = 0.0
        if remaining > _EPS:
            p = self.miss_ratio()
            per_access = hit + p * mp
            if per_access <= 0:
                raise RuntimeError("app makes no progress: zero access interval")
            seg_n = remaining / per_access
            accesses += seg_n
            misses += seg_n * p
            remaining = 0.0
        return Advance(cycles=budget - remaining, accesses=accesses, misses=misses)

    def _invert_segment_time(self, budget: float) -> float:
        """Parent inversion with hoisted constants and an early exit.

        Every ``mid``/``dr``/``cost`` the loop evaluates is the exact
        value the parent computes at the same iteration.  The exit is
        sound because once ``mid`` rounds to an endpoint the interval
        can no longer move: updating ``lo`` (or ``hi``) to ``mid``
        leaves ``0.5 * (lo + hi)`` — and therefore every subsequent
        comparison — unchanged, so the remaining iterations are
        no-ops and ``lo`` is already the parent's return value.
        """
        p0, b, dr_seg = self._segment()
        hit, mp = self.hit_interval, self.miss_penalty
        e, mult = self._fill_efficiency, self._miss_multiplier
        per_access_max = hit + p0 * mp
        if per_access_max <= 0:
            raise RuntimeError("zero-cost access: cannot invert time")
        lo, hi = 0.0, budget / max(hit, _EPS) if hit else 0.0
        if hi == 0.0:
            hi = budget / per_access_max * 4 + 1.0
        zero = p0 <= _EPS
        flat = -1e-30 < b < 1e-30
        ebe = e * b
        pob = 0.0 if flat else p0 / b
        ep0 = e * p0
        coeff = mp / e * mult
        exp = math.exp
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if zero or mid <= 0:
                dr = 0.0
            elif flat:
                g = ep0 * mid
                dr = g if g < dr_seg else dr_seg
            else:
                grown = pob * (exp(ebe * mid) - 1.0)
                if grown < 0.0:
                    grown = 0.0
                dr = grown if grown < dr_seg else dr_seg
            if hit * mid + coeff * dr < budget:
                if mid == lo:
                    break
                lo = mid
            else:
                if mid == hi:
                    break
                hi = mid
        return lo
