"""Simulated CMP configuration (paper Table 2).

The default configuration models the six-core Westmere-EP-like CMP the
paper simulates with zsim: 3.2 GHz cores, three-level cache hierarchy
with a shared, banked 12 MB L3, and 200-cycle main memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..units import mb_to_lines, kb_to_lines, ms_to_cycles, us_to_cycles

__all__ = [
    "CoreKind",
    "CacheLevelConfig",
    "CMPConfig",
    "westmere_config",
    "TABLE2_ROWS",
]


class CoreKind:
    """Core model selector (paper Section 6 and Figure 11)."""

    OOO = "ooo"
    IN_ORDER = "inorder"


@dataclass(frozen=True)
class CacheLevelConfig:
    """One level of the cache hierarchy."""

    name: str
    size_lines: int
    ways: int
    latency_cycles: int
    shared: bool = False
    banks: int = 1

    @property
    def size_kb(self) -> float:
        return self.size_lines * 64 / 1024

    @property
    def size_mb(self) -> float:
        return self.size_lines * 64 / (1024 * 1024)


@dataclass(frozen=True)
class CMPConfig:
    """Full CMP description used by the simulation engine.

    Attributes mirror paper Table 2.  ``reconfig_interval_cycles`` is
    the coarse-grained repartitioning period (50 ms in the paper);
    ``coalescing_timeout_cycles`` models NIC interrupt coalescing
    (50 us, Section 3.2).
    """

    num_cores: int = 6
    core_kind: str = CoreKind.OOO
    freq_hz: float = 3.2e9
    l1: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(
            name="L1", size_lines=kb_to_lines(32), ways=4, latency_cycles=1
        )
    )
    l2: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(
            name="L2", size_lines=kb_to_lines(256), ways=16, latency_cycles=7
        )
    )
    l3: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(
            name="L3",
            size_lines=mb_to_lines(12),
            ways=4,  # 4-way 52-candidate zcache by default
            latency_cycles=20,
            shared=True,
            banks=6,
        )
    )
    mem_latency_cycles: int = 200
    reconfig_interval_cycles: float = 0.0
    coalescing_timeout_cycles: float = 0.0

    def __post_init__(self) -> None:
        if self.reconfig_interval_cycles <= 0:
            object.__setattr__(
                self,
                "reconfig_interval_cycles",
                ms_to_cycles(50.0, self.freq_hz),
            )
        if self.coalescing_timeout_cycles <= 0:
            object.__setattr__(
                self,
                "coalescing_timeout_cycles",
                us_to_cycles(50.0, self.freq_hz),
            )
        if self.num_cores < 1:
            raise ValueError("need at least one core")
        if self.l3.size_lines <= 0:
            raise ValueError("L3 must have capacity")

    @property
    def llc_lines(self) -> int:
        """Total shared LLC capacity in lines."""
        return self.l3.size_lines

    def with_llc_mb(self, megabytes: float) -> "CMPConfig":
        """A copy of this config with a different LLC capacity."""
        return replace(self, l3=replace(self.l3, size_lines=mb_to_lines(megabytes)))

    def with_core_kind(self, kind: str) -> "CMPConfig":
        """A copy of this config with a different core model."""
        if kind not in (CoreKind.OOO, CoreKind.IN_ORDER):
            raise ValueError(f"unknown core kind: {kind!r}")
        return replace(self, core_kind=kind)


def westmere_config(core_kind: str = CoreKind.OOO) -> CMPConfig:
    """The paper's default simulated system (Table 2)."""
    return CMPConfig(core_kind=core_kind)


#: Human-readable rendering of Table 2 for the benchmark harness.
TABLE2_ROWS = (
    ("Cores", "6 x86-64 cores, Westmere-like OOO, 3.2GHz"),
    ("L1 caches", "32KB, 4-way set-associative, split D/I, 1-cycle latency"),
    ("L2 caches", "256KB private per-core, 16-way set-associative, inclusive, 7-cycle latency"),
    ("L3 cache", "6 banks, 2MB/bank (12MB total), 4-way 52-candidate zcache, 20 cycles, inclusive"),
    ("Coherence protocol", "MESI, 64B lines, in-cache directory, no silent drops; TSO"),
    ("Memory", "200-cycle latency"),
)
