"""Memory-bandwidth contention model (paper future work, Section 6).

The paper models fixed-latency memory and notes that "bandwidth has no
inertia, so Ubik should be easy to combine with bandwidth partitioning
techniques ... we leave such an evaluation to future work."  This
module supplies the missing piece's *problem statement*: an optional
queueing model of the memory channel that inflates every app's
effective miss penalty as total miss traffic approaches the channel's
sustainable throughput.

With it, the engine can demonstrate the motivation: cache partitioning
alone cannot protect latency-critical tails once co-runners saturate
memory bandwidth — the interference arrives through a resource Ubik
does not manage.

The model is an M/M/1-style load-latency curve applied at
reconfiguration granularity (bandwidth reacts in tens of cycles, so a
coarse feedback loop is faithful at 50 ms intervals):

    multiplier(rho) = 1 + alpha * rho / (1 - rho),   rho = traffic / peak
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BandwidthModel"]


@dataclass(frozen=True)
class BandwidthModel:
    """Miss-penalty inflation from memory-channel queueing.

    Parameters
    ----------
    peak_misses_per_kilocycle:
        Sustainable LLC-miss throughput of the memory system, in misses
        per thousand core cycles (all cores combined).  A Westmere-class
        part with 3 DDR3-1066 channels sustains very roughly 25 GB/s ~
        10-12 lines per kilocycle at 3.2 GHz.
    contention_weight:
        The ``alpha`` scale of the queueing term.
    max_utilization:
        Cap on modelled utilization (the channel never fully saturates
        in the model; requests throttle first).
    """

    peak_misses_per_kilocycle: float
    contention_weight: float = 1.0
    max_utilization: float = 0.95

    def __post_init__(self) -> None:
        if self.peak_misses_per_kilocycle <= 0:
            raise ValueError("peak throughput must be positive")
        if self.contention_weight < 0:
            raise ValueError("contention weight must be non-negative")
        if not 0.0 < self.max_utilization < 1.0:
            raise ValueError("max utilization must be in (0, 1)")

    def utilization(self, misses_per_cycle: float) -> float:
        """Channel utilization for a total miss rate (clamped)."""
        if misses_per_cycle < 0:
            raise ValueError("miss rate must be non-negative")
        rho = misses_per_cycle * 1000.0 / self.peak_misses_per_kilocycle
        return min(rho, self.max_utilization)

    def penalty_multiplier(self, misses_per_cycle: float) -> float:
        """Factor applied to every app's effective miss penalty."""
        rho = self.utilization(misses_per_cycle)
        return 1.0 + self.contention_weight * rho / (1.0 - rho)
