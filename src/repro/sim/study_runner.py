"""Engine drivers for the extension studies (scaleout, bandwidth).

The scaleout and bandwidth experiments used to build
:class:`~repro.sim.engine.MixEngine` instances inline, which kept them
off the runtime: no result store, no ``--jobs``, no scheduler.  Their
engine-driving code now lives here, below the runtime, as two plain
functions taking a declarative spec plus an optional store; the
experiment modules define the spec types and hand batches to a
:class:`~repro.runtime.session.Session`.

Both drivers reproduce the historical experiments' streams and seeds
exactly, so migrating onto the runtime changed no numbers.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..server.latency import percentile_latency, tail_mean
from ..workloads.arrivals import generate_arrivals
from ..workloads.batch import make_batch_workload
from ..workloads.latency_critical import make_lc_workload
from ..workloads.mixes import make_mix_specs
from .bandwidth import BandwidthModel
from .config import CMPConfig
from .engine import LCInstanceSpec, MixEngine
from .grid_replay import GroupShared, grid_replay_enabled
from .mix_runner import MixRunner

__all__ = [
    "run_scaleout_point",
    "run_bandwidth_point",
    "scaleout_baseline_instance",
]


# ----------------------------------------------------------------------
# Scaleout
# ----------------------------------------------------------------------
def _scaleout_stream(
    workload, load: float, instance: int, requests: int, seed: int, config
):
    """One instance's fixed-work stream (historical seeding preserved).

    The scaleout study predates :meth:`MixRunner.stream` and seeds
    differently — ``default_rng((seed, instance))``, service time from
    the default core — so its streams are derived here, once, for both
    the baseline shards and the joint replay.
    """
    rng = np.random.default_rng((seed, instance))
    works = np.asarray([workload.work.sample(rng) for _ in range(requests)])
    arrivals = generate_arrivals(
        requests,
        load,
        workload.mean_service_cycles(),
        rng,
        coalescing_timeout_cycles=config.coalescing_timeout_cycles,
    )
    return arrivals, works


def _scaleout_config(cores: int):
    """The size-parameterized machine: 2 MB of LLC per core."""
    return CMPConfig(num_cores=cores).with_llc_mb(2.0 * cores)


def _scaleout_lc_specs(
    workload, load: float, instances: int, requests: int, seed: int, config
) -> List[LCInstanceSpec]:
    """Per-instance fixed-work streams for the joint replay."""
    specs = []
    for instance in range(instances):
        arrivals, works = _scaleout_stream(
            workload, load, instance, requests, seed, config
        )
        specs.append(
            LCInstanceSpec(
                workload=workload,
                arrivals=arrivals,
                works=works,
                deadline_cycles=1.0,  # refined after the baseline run
                target_tail_cycles=1.0,
                load=load,
            )
        )
    return specs


def scaleout_baseline_instance(
    lc_name: str,
    load: float,
    requests: int,
    seed: int,
    cores: int,
    instance: int,
):
    """Run one scaleout LC instance alone on the ``cores``-core machine.

    This is the compute body of
    :class:`~repro.runtime.sharding.ScaleoutShardSpec`: the stream and
    engine seeding reproduce the study's historical serial loop exactly
    (stream RNG ``(seed, instance)``, engine seed ``seed`` shared by
    all instances), so shard merges are bit-identical to it.  Returns
    the instance's :class:`~repro.sim.results.LCInstanceResult`.
    """
    workload = make_lc_workload(lc_name)
    config = _scaleout_config(cores)
    arrivals, works = _scaleout_stream(
        workload, load, instance, requests, seed, config
    )
    spec = LCInstanceSpec(
        workload=workload,
        arrivals=arrivals,
        works=works,
        deadline_cycles=1.0,
        target_tail_cycles=1.0,
        load=load,
    )
    engine = MixEngine.isolated(
        spec,
        config=config,
        target_lines=float(workload.target_lines),
        seed=seed,
        mix_id="scaleout-baseline",
    )
    return engine.run().lc_instances[0]


def _scaleout_baseline(store, identity: dict) -> Tuple[float, float]:
    """Pooled tail of the study's streams run alone at the target size.

    Using the identical fixed-work streams keeps the comparison
    sample-balanced (the paper's methodology).  The per-instance work
    rides :class:`~repro.runtime.sharding.ScaleoutShardSpec` — one
    shard per instance, each deduplicated and crash-resumable through
    the store — and the slices merge through
    :func:`~repro.runtime.sharding.merge_shard_results`, the same
    fixed-instance-order reassembly the sweep baselines use, so the
    result is bit-identical to the historical serial loop.  The merged
    summary is stored under the same policy-independent
    ``scaleout_baseline`` fingerprint as before (every policy point
    reuses one computation) and the shard documents are reclaimed once
    it is persisted.
    """
    fingerprint = None
    if store is not None:
        from ..runtime.spec import SPEC_SCHEMA_VERSION, fingerprint_payload

        fingerprint = fingerprint_payload(
            dict(identity, kind="scaleout_baseline", v=SPEC_SCHEMA_VERSION)
        )
        doc = store.get(fingerprint)
        if doc is not None and doc.get("kind") == "scaleout_baseline":
            return doc["tail95_cycles"], doc["p95_cycles"]
    from ..runtime.sharding import merge_shard_results, plan_scaleout_shards

    instance_count = identity["cores"] // 2
    shards = plan_scaleout_shards(
        lc_name=identity["lc_name"],
        load=identity["load"],
        requests=identity["requests"],
        seed=identity["seed"],
        cores=identity["cores"],
        shards=instance_count,
    )
    merged = merge_shard_results([shard.execute(store) for shard in shards])
    tail95 = merged.baseline.tail95_cycles
    p95 = merged.baseline.p95_cycles
    if store is not None:
        store.put(
            fingerprint,
            {
                "kind": "scaleout_baseline",
                "tail95_cycles": tail95,
                "p95_cycles": p95,
            },
        )
        # The merged summary supersedes the per-shard latency pools.
        for shard in shards:
            store.discard(shard.fingerprint())
    return tail95, p95


def run_scaleout_point(spec, store=None):
    """One (machine size, policy) scaleout measurement.

    ``spec`` is a :class:`~repro.experiments.scaleout.ScaleoutSpec`;
    half the cores run LC instances, half batch apps, with the LLC
    growing proportionally (2 MB per core, as in the baseline).
    """
    from ..experiments.scaleout import ScaleOutResult

    cores = spec.cores
    workload = make_lc_workload(spec.lc_name)
    batch_classes = ("n", "f", "t", "s")
    config = _scaleout_config(cores)
    lc_instances = cores // 2
    batch_apps = [
        make_batch_workload(batch_classes[i % 4], seed=spec.seed + i, instance=i)
        for i in range(cores - lc_instances)
    ]
    lc_specs = _scaleout_lc_specs(
        workload, spec.load, lc_instances, spec.requests, spec.seed, config
    )
    tail95, p95 = _scaleout_baseline(
        store,
        identity={
            "cores": cores,
            "lc_name": spec.lc_name,
            "load": spec.load,
            "requests": spec.requests,
            "seed": spec.seed,
        },
    )
    lc_specs = [
        LCInstanceSpec(
            workload=s.workload,
            arrivals=s.arrivals,
            works=s.works,
            deadline_cycles=p95,
            target_tail_cycles=tail95,
            load=s.load,
        )
        for s in lc_specs
    ]
    policy = spec.policy.build()
    engine = MixEngine(
        lc_specs=lc_specs,
        batch_workloads=batch_apps,
        policy=policy,
        config=config,
        seed=spec.seed,
        baseline_lines=float(workload.target_lines),
        mix_id=f"scaleout-{cores}",
        # Scaleout points are dispatched one spec at a time, so each
        # replay forms a single-cell group: no cross-cell sharing, but
        # the grouped engine's fused scalar walks still apply (they are
        # bit-identical to the ungrouped path at any group size).
        shared=GroupShared() if grid_replay_enabled() else None,
    )
    result = engine.run()
    result.baseline_tail_cycles = tail95
    return ScaleOutResult(
        cores=cores,
        policy=policy.name,
        tail_degradation=result.tail_degradation(),
        weighted_speedup=result.weighted_speedup(),
    )


# ----------------------------------------------------------------------
# Bandwidth
# ----------------------------------------------------------------------
def run_bandwidth_point(spec, store=None):
    """One (channel capacity, policy) bandwidth-contention measurement.

    ``spec`` is a
    :class:`~repro.experiments.bandwidth_study.BandwidthSpec`.  The
    isolated baseline goes through :class:`MixRunner` with the store
    attached, so it is computed once and shared with the sweep grids.

    Bandwidth runs stay outside replay groups deliberately: contention
    rescales miss penalties per interval, and the engine refuses the
    ``shared``/``bandwidth`` combination rather than audit every
    group-shared key against that mutation.
    """
    from ..experiments.bandwidth_study import BandwidthPoint

    mix = make_mix_specs(
        lc_names=[spec.lc_name], loads=[spec.load], mixes_per_combo=1
    )[spec.mix_index]
    runner = MixRunner(requests=spec.requests, seed=spec.seed, store=store)
    baseline = runner.baseline(mix.lc_workload, spec.load)
    bandwidth = BandwidthModel(
        peak_misses_per_kilocycle=spec.peak_misses_per_kilocycle
    )
    policy = spec.policy.build()
    lc_specs = []
    for instance in range(3):
        arrivals, works = runner.stream(mix.lc_workload, spec.load, instance)
        lc_specs.append(
            LCInstanceSpec(
                workload=mix.lc_workload,
                arrivals=arrivals,
                works=works,
                deadline_cycles=baseline.p95_cycles,
                target_tail_cycles=baseline.tail95_cycles,
                load=spec.load,
            )
        )
    engine = MixEngine(
        lc_specs=lc_specs,
        batch_workloads=list(mix.batch_apps),
        policy=policy,
        config=CMPConfig(),
        seed=spec.seed,
        baseline_lines=float(mix.lc_workload.target_lines),
        mix_id=f"bw-{spec.peak_misses_per_kilocycle}",
        bandwidth=bandwidth,
    )
    result = engine.run()
    result.baseline_tail_cycles = baseline.tail95_cycles
    return BandwidthPoint(
        peak_misses_per_kilocycle=spec.peak_misses_per_kilocycle,
        policy=policy.name,
        tail_degradation=result.tail_degradation(),
        weighted_speedup=result.weighted_speedup(),
    )
