"""Trace-driven partitioned-cache simulation.

The mix engine is analytic; this module is its hardware-in-the-loop
counterpart: real address streams interleaved into a real
:class:`~repro.cache.vantage.VantageCache`, with per-app UMONs feeding
a partitioning policy's Lookahead, exactly the monitor -> controller ->
enforcement loop of paper Figure 3.  It has no timing model — it
measures *miss ratios* — and is used to validate that:

* UMON-measured curves drive Lookahead to sensible allocations on
  real streams (not just parametric curves);
* Vantage enforces those allocations with isolation;
* the closed loop reduces total misses versus static even splits.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cache.vantage import VantageCache
from ..monitor.umon import UtilityMonitor
from ..policies.lookahead import lookahead_partition
from ..workloads.trace import ZipfSampler

__all__ = [
    "AccessGenerator",
    "ZipfWorkingSetGenerator",
    "ScanGenerator",
    "PhasedGenerator",
    "TraceApp",
    "TraceWindowStats",
    "TraceSimResult",
    "TraceDrivenSimulator",
]


class AccessGenerator(abc.ABC):
    """A source of line addresses for one application."""

    @abc.abstractmethod
    def next_batch(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Produce the app's next ``count`` line addresses."""


class ZipfWorkingSetGenerator(AccessGenerator):
    """Zipfian reuse over a fixed working set (cache-friendly apps)."""

    def __init__(self, working_set_lines: int, alpha: float = 0.6, base: int = 0):
        if working_set_lines < 1:
            raise ValueError("working set must be positive")
        self.base = base
        self._sampler = ZipfSampler(working_set_lines, alpha)

    def next_batch(self, count: int, rng: np.random.Generator) -> np.ndarray:
        return self._sampler.sample(count, rng) + self.base


class ScanGenerator(AccessGenerator):
    """Sequential scan with no reuse (streaming apps)."""

    def __init__(self, base: int = 0):
        self._next = np.int64(base)

    def next_batch(self, count: int, rng: np.random.Generator) -> np.ndarray:
        out = np.arange(self._next, self._next + count, dtype=np.int64)
        self._next += count
        return out


class PhasedGenerator(AccessGenerator):
    """Alternates between two generators (phase-changing apps).

    Used to test that the closed loop *adapts*: when an app's working
    set changes, its UMON curve changes, and the next reconfiguration
    should reallocate.
    """

    def __init__(
        self,
        first: AccessGenerator,
        second: AccessGenerator,
        switch_after: int,
    ):
        if switch_after < 1:
            raise ValueError("switch_after must be positive")
        self.first = first
        self.second = second
        self.switch_after = switch_after
        self._produced = 0

    def next_batch(self, count: int, rng: np.random.Generator) -> np.ndarray:
        source = self.first if self._produced < self.switch_after else self.second
        self._produced += count
        return source.next_batch(count, rng)


@dataclass
class TraceApp:
    """One trace-driven application: a stream plus an access weight."""

    name: str
    generator: AccessGenerator
    weight: float = 1.0  # relative accesses per interleave round

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("weight must be positive")


@dataclass(frozen=True)
class TraceWindowStats:
    """Per-app statistics over one reconfiguration window."""

    window: int
    app: str
    accesses: int
    misses: int
    allocation_lines: int

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class TraceSimResult:
    """All windows of one trace-driven run."""

    windows: List[TraceWindowStats] = field(default_factory=list)

    def for_app(self, app: str) -> List[TraceWindowStats]:
        return [w for w in self.windows if w.app == app]

    def total_misses(self) -> int:
        return sum(w.misses for w in self.windows)

    def final_allocations(self) -> Dict[str, int]:
        last: Dict[str, TraceWindowStats] = {}
        for w in self.windows:
            last[w.app] = w
        return {name: w.allocation_lines for name, w in last.items()}


class TraceDrivenSimulator:
    """Interleaved access streams over Vantage, managed by Lookahead.

    Parameters
    ----------
    cache_lines:
        Shared cache capacity.
    apps:
        The co-running applications.
    reconfig_accesses:
        Total accesses between controller invocations (the access-level
        analogue of the 50 ms interval).
    managed:
        If False, partitions are fixed at an even split (the static
        baseline the closed loop is compared against).
    """

    def __init__(
        self,
        cache_lines: int,
        apps: Sequence[TraceApp],
        reconfig_accesses: int = 20_000,
        managed: bool = True,
        candidates: int = 52,
        seed: int = 0,
        umon_ways: int = 16,
        umon_sets: int = 4,
    ):
        if not apps:
            raise ValueError("need at least one app")
        if reconfig_accesses < len(apps):
            raise ValueError("window too small for the app count")
        self.cache_lines = cache_lines
        self.apps = list(apps)
        self.reconfig_accesses = reconfig_accesses
        self.managed = managed
        self.rng = np.random.default_rng(seed)
        self.cache = VantageCache(
            cache_lines, len(apps), candidates=candidates, seed=seed
        )
        self.umons = [
            UtilityMonitor.for_cache(cache_lines, ways=umon_ways, sets=umon_sets)
            for _ in apps
        ]
        even = cache_lines // len(apps)
        for index in range(len(apps)):
            self.cache.set_target(index, even)
        # Address-space separation so streams never alias.
        self._bases = [i << 40 for i in range(len(apps))]

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------
    def _reconfigure(self) -> None:
        curves = []
        for umon in self.umons:
            if umon.sampled < 16:
                return  # not enough signal yet; keep current targets
            curves.append(umon.miss_curve(points=65))
        weights = [app.weight for app in self.apps]
        allocations = lookahead_partition(
            curves, weights, self.cache_lines, buckets=64
        )
        for index, lines in enumerate(allocations):
            self.cache.set_target(index, int(lines))
        for umon in self.umons:
            umon.reset()

    def run(self, windows: int) -> TraceSimResult:
        """Run ``windows`` reconfiguration windows; returns statistics."""
        if windows < 1:
            raise ValueError("need at least one window")
        result = TraceSimResult()
        total_weight = sum(app.weight for app in self.apps)
        for window in range(windows):
            window_hits = [0] * len(self.apps)
            window_misses = [0] * len(self.apps)
            # Interleave in small rounds to approximate concurrency.
            rounds = 50
            per_round = [
                max(1, int(self.reconfig_accesses * app.weight / total_weight / rounds))
                for app in self.apps
            ]
            for _ in range(rounds):
                for index, app in enumerate(self.apps):
                    addrs = app.generator.next_batch(per_round[index], self.rng)
                    addrs = addrs + self._bases[index]
                    # UMON and cache share no state, so feeding each a
                    # whole batch preserves per-access semantics while
                    # using the vectorized/batched hot paths.
                    self.umons[index].observe_many(addrs)
                    hit_mask = self.cache.access_many(index, addrs)
                    batch_hits = int(np.count_nonzero(hit_mask))
                    window_hits[index] += batch_hits
                    window_misses[index] += int(hit_mask.size) - batch_hits
            for index, app in enumerate(self.apps):
                result.windows.append(
                    TraceWindowStats(
                        window=window,
                        app=app.name,
                        accesses=window_hits[index] + window_misses[index],
                        misses=window_misses[index],
                        allocation_lines=self.cache.target(index),
                    )
                )
            if self.managed:
                self._reconfigure()
        return result
