"""Statistical helpers for tail-latency measurement (paper Section 3.2).

Measuring tails accurately is expensive: only ~5% of requests influence
the metric.  The paper runs enough randomized-arrival repetitions to
reach 95% confidence intervals within a few percent; these helpers
provide the same machinery at reproduction scale — normal-approximation
CIs for means and bootstrap CIs for tail means, which have no clean
closed form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..server.latency import tail_mean

__all__ = [
    "ConfidenceInterval",
    "mean_confidence_interval",
    "bootstrap_confidence_interval",
    "tail_mean_confidence_interval",
    "relative_half_width",
]

#: Two-sided 95% z-score.
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a symmetric-coverage interval."""

    estimate: float
    low: float
    high: float
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if not self.low <= self.estimate <= self.high:
            raise ValueError("estimate must lie inside the interval")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2.0

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def mean_confidence_interval(samples: Sequence[float]) -> ConfidenceInterval:
    """Normal-approximation 95% CI for a mean."""
    arr = np.asarray(samples, dtype=float)
    if arr.size < 2:
        raise ValueError("need at least two samples")
    mean = float(arr.mean())
    sem = float(arr.std(ddof=1)) / math.sqrt(arr.size)
    return ConfidenceInterval(mean, mean - _Z95 * sem, mean + _Z95 * sem)


def bootstrap_confidence_interval(
    samples: Sequence[float],
    statistic: Callable[[np.ndarray], float],
    resamples: int = 500,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap 95% CI for an arbitrary statistic."""
    arr = np.asarray(samples, dtype=float)
    if arr.size < 2:
        raise ValueError("need at least two samples")
    if resamples < 10:
        raise ValueError("need at least 10 resamples")
    rng = np.random.default_rng(seed)
    stats = np.empty(resamples)
    for i in range(resamples):
        picks = rng.integers(0, arr.size, size=arr.size)
        stats[i] = statistic(arr[picks])
    estimate = float(statistic(arr))
    low = float(np.percentile(stats, 2.5))
    high = float(np.percentile(stats, 97.5))
    # Guard against tiny resample noise placing the estimate outside.
    low = min(low, estimate)
    high = max(high, estimate)
    return ConfidenceInterval(estimate, low, high)


def tail_mean_confidence_interval(
    latencies: Sequence[float],
    pct: float = 95.0,
    resamples: int = 500,
    seed: int = 0,
) -> ConfidenceInterval:
    """Bootstrap CI for the paper's tail metric (mean beyond ``pct``)."""
    return bootstrap_confidence_interval(
        latencies, lambda a: tail_mean(a, pct), resamples=resamples, seed=seed
    )


def relative_half_width(interval: ConfidenceInterval) -> float:
    """CI half-width relative to the estimate (the paper's +-x%)."""
    if interval.estimate == 0:
        raise ValueError("estimate is zero")
    return interval.half_width / abs(interval.estimate)
