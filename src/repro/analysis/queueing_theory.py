"""Analytic M/G/1 queueing results for cross-validating the simulator.

The paper's latency-critical servers are M/G/1-FIFO queues (Poisson
arrivals, general service times, one worker).  Classical results then
predict the load-latency behaviour of Figure 1a in closed form:

* **Pollaczek-Khinchine**: mean waiting time
  ``W = lambda * E[S^2] / (2 * (1 - rho))``, so mean latency is
  ``W + E[S]`` — the superlinear blow-up of Observation 3 is the
  ``1/(1-rho)`` pole.
* The **tail/mean gap** grows with the service-time coefficient of
  variation — Observation 1's app dependence.

These formulas provide an independent check of the FIFO simulator and
of the engine (which reproduces the simulator exactly under a fixed
partition): simulation and theory must agree within sampling error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["ServiceMoments", "mg1_mean_latency", "mg1_mean_wait", "moments_from_samples"]


@dataclass(frozen=True)
class ServiceMoments:
    """First two moments of a service-time distribution."""

    mean: float
    second_moment: float

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ValueError("mean service time must be positive")
        if self.second_moment < self.mean**2:
            raise ValueError("E[S^2] cannot be below E[S]^2")

    @property
    def variance(self) -> float:
        return self.second_moment - self.mean**2

    @property
    def scv(self) -> float:
        """Squared coefficient of variation (0 for deterministic)."""
        return self.variance / self.mean**2


def moments_from_samples(samples) -> ServiceMoments:
    """Empirical service moments from observed service times."""
    arr = np.asarray(samples, dtype=float)
    if arr.size < 2:
        raise ValueError("need at least two samples")
    if np.any(arr <= 0):
        raise ValueError("service times must be positive")
    return ServiceMoments(float(arr.mean()), float(np.mean(arr**2)))


def mg1_mean_wait(arrival_rate: float, moments: ServiceMoments) -> float:
    """Pollaczek-Khinchine mean waiting time (time in queue).

    ``W = lambda * E[S^2] / (2 * (1 - rho))`` with
    ``rho = lambda * E[S] < 1``.
    """
    if arrival_rate <= 0:
        raise ValueError("arrival rate must be positive")
    rho = arrival_rate * moments.mean
    if rho >= 1.0:
        raise ValueError(f"unstable queue: rho = {rho:.3f} >= 1")
    return arrival_rate * moments.second_moment / (2.0 * (1.0 - rho))


def mg1_mean_latency(arrival_rate: float, moments: ServiceMoments) -> float:
    """Mean end-to-end latency: waiting plus service."""
    return mg1_mean_wait(arrival_rate, moments) + moments.mean
