"""Terminal plotting for experiment reports.

The paper's figures are line plots and stacked bars; the benchmark
harness regenerates their *data*, and these helpers render it legibly
in a terminal: sparklines for series, horizontal bars for breakdowns,
and a multi-series scatter for the Figure 9-style distributions.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

__all__ = ["sparkline", "hbar", "series_plot", "distribution_plot"]

_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """One-line intensity plot of a series (resampled to ``width``)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("no values to plot")
    if arr.size != width:
        positions = np.linspace(0, arr.size - 1, width)
        arr = np.interp(positions, np.arange(arr.size), arr)
    lo, hi = float(arr.min()), float(arr.max())
    if hi - lo < 1e-12:
        return _SPARK_LEVELS[1] * width
    scaled = (arr - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1)
    return "".join(_SPARK_LEVELS[int(round(s))] for s in scaled)


def hbar(fraction: float, width: int = 40, fill: str = "#") -> str:
    """A horizontal bar for a fraction in [0, 1]."""
    if not 0.0 <= fraction <= 1.0 + 1e-9:
        raise ValueError("fraction must be in [0, 1]")
    count = int(round(min(fraction, 1.0) * width))
    return fill * count + " " * (width - count)


def series_plot(
    series: Dict[str, Sequence[float]],
    width: int = 60,
    label_width: int = 10,
) -> str:
    """Aligned sparklines with min/max annotations, one per series."""
    if not series:
        raise ValueError("no series to plot")
    lines: List[str] = []
    for name, values in series.items():
        arr = np.asarray(values, dtype=float)
        lines.append(
            f"{name[:label_width]:<{label_width}} "
            f"|{sparkline(arr, width)}| "
            f"[{arr.min():.3g}, {arr.max():.3g}]"
        )
    return "\n".join(lines)


def distribution_plot(
    series: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
    label_width: int = 10,
) -> str:
    """Figure 9-style plot: sorted per-scheme values as row scatter.

    Each series is drawn as its own letter on a shared y-scale; x is
    the (normalized) mix rank.
    """
    if not series:
        raise ValueError("no series to plot")
    all_vals = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    lo, hi = float(all_vals.min()), float(all_vals.max())
    if hi - lo < 1e-12:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "ouxs+*"
    legend = []
    for (name, values), marker in zip(series.items(), markers):
        arr = np.sort(np.asarray(values, dtype=float))
        legend.append(f"{marker}={name}")
        for i, v in enumerate(arr):
            x = int(i / max(1, arr.size - 1) * (width - 1))
            y = int((v - lo) / (hi - lo) * (height - 1))
            row = height - 1 - y
            grid[row][x] = marker
    lines = [f"{hi:>8.3g} +" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 9 + "|" + "".join(row))
    lines.append(f"{lo:>8.3g} +" + "".join(grid[-1]))
    lines.append(" " * 10 + f"(sorted mixes; {', '.join(legend)})")
    return "\n".join(lines)
