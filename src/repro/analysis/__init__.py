"""Measurement statistics, queueing theory, and terminal plotting."""

from .ascii_plot import distribution_plot, hbar, series_plot, sparkline
from .queueing_theory import (
    ServiceMoments,
    mg1_mean_latency,
    mg1_mean_wait,
    moments_from_samples,
)
from .stats import (
    ConfidenceInterval,
    bootstrap_confidence_interval,
    mean_confidence_interval,
    relative_half_width,
    tail_mean_confidence_interval,
)

__all__ = [
    "ConfidenceInterval",
    "mean_confidence_interval",
    "bootstrap_confidence_interval",
    "tail_mean_confidence_interval",
    "relative_half_width",
    "sparkline",
    "hbar",
    "series_plot",
    "distribution_plot",
    "ServiceMoments",
    "mg1_mean_wait",
    "mg1_mean_latency",
    "moments_from_samples",
]
