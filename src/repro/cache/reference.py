"""Naive reference cache models — the behavioural oracles.

These are the original per-access, ``List`` + ``dict`` implementations
of :class:`~repro.cache.set_assoc.SetAssociativeCache` and
:class:`~repro.cache.way_partition.WayPartitionedCache`, kept verbatim
after the flat-array rewrite for two jobs:

* **equivalence testing** — the property suite
  (``tests/cache/test_cache_equivalence.py``) drives randomized address
  streams through a naive model and its optimized twin and asserts
  access-for-access identical hits, evictions, and final LRU state;
* **benchmark baselining** — ``repro bench`` times the naive trace
  replay alongside the optimized one, so every ``BENCH_*.json`` records
  the speedup against the same pre-optimization code path rather than
  against a number measured on different hardware.

They are deliberately *not* exported from :mod:`repro.cache`: nothing
in the simulation stack should depend on them.

The shared behavioural contract both generations implement:

* an access **hits** iff the line is resident anywhere in its set (for
  the partitioned model: anywhere in the set, regardless of owner);
* a hit makes the line the most recently used of its set and evicts
  nothing;
* a miss inserts into the accessing partition's ways (the whole set
  for the unpartitioned model), filling an empty way first and
  otherwise evicting the least recently used candidate line.

Eviction *order* is part of the contract — see
:mod:`repro.cache.way_partition` for the precise tie-breaking rules.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .set_assoc import AccessResult

__all__ = ["NaiveSetAssociativeCache", "NaiveWayPartitionedCache"]


class NaiveSetAssociativeCache:
    """Per-set ``List`` + ``dict`` LRU cache (pre-rewrite reference).

    Each set keeps its resident lines in LRU order (most recent last);
    a hit does an O(ways) ``list.remove`` + ``append``, a full-set miss
    pops index 0.  Semantically identical to
    :class:`~repro.cache.set_assoc.SetAssociativeCache` — only slower.
    """

    def __init__(self, num_lines: int, ways: int):
        if num_lines < 1 or ways < 1:
            raise ValueError("capacity and ways must be positive")
        if num_lines % ways != 0:
            raise ValueError("num_lines must be a multiple of ways")
        self.num_lines = num_lines
        self.ways = ways
        self.num_sets = num_lines // ways
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self._where: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0

    def set_index(self, addr: int) -> int:
        """Set index for a line address (simple modulo hashing)."""
        return addr % self.num_sets

    def access(self, addr: int) -> AccessResult:
        """Access a line: LRU update on hit, LRU eviction on miss."""
        index = self.set_index(addr)
        lines = self._sets[index]
        if addr in self._where:
            lines.remove(addr)
            lines.append(addr)
            self.hits += 1
            return AccessResult(hit=True)
        self.misses += 1
        evicted = None
        if len(lines) >= self.ways:
            evicted = lines.pop(0)
            del self._where[evicted]
        lines.append(addr)
        self._where[addr] = index
        return AccessResult(hit=False, evicted=evicted)

    def __contains__(self, addr: int) -> bool:
        return addr in self._where

    @property
    def occupancy(self) -> int:
        """Lines currently resident."""
        return len(self._where)

    def lru_order(self, index: int) -> List[int]:
        """Resident lines of one set, least recently used first."""
        return list(self._sets[index])


class NaiveWayPartitionedCache:
    """Per-set tuple-table way-partitioned cache (pre-rewrite reference).

    Stores ``(addr, lru_time, owner)`` tuples per way and scans the
    partition's way range on every miss.  Semantically identical to
    :class:`~repro.cache.way_partition.WayPartitionedCache`.
    """

    def __init__(self, num_lines: int, ways: int, num_partitions: int):
        if num_lines < 1 or ways < 1:
            raise ValueError("capacity and ways must be positive")
        if num_lines % ways != 0:
            raise ValueError("num_lines must be a multiple of ways")
        if not 1 <= num_partitions <= ways:
            raise ValueError("way-partitioning supports at most `ways` partitions")
        self.num_lines = num_lines
        self.ways = ways
        self.num_sets = num_lines // ways
        self.num_partitions = num_partitions
        self._sets: List[List[Optional[tuple]]] = [
            [None] * ways for _ in range(self.num_sets)
        ]
        self._where: Dict[int, tuple] = {}
        self._clock = 0
        base = ways // num_partitions
        extra = ways % num_partitions
        self._way_count = [
            base + (1 if i < extra else 0) for i in range(num_partitions)
        ]
        self.hits = [0] * num_partitions
        self.misses = [0] * num_partitions

    def set_allocation(self, way_counts: List[int]) -> None:
        """Assign each partition a number of ways (must sum to <= ways)."""
        if len(way_counts) != self.num_partitions:
            raise ValueError("one way count per partition required")
        if any(w < 1 for w in way_counts):
            raise ValueError("each partition needs at least one way")
        if sum(way_counts) > self.ways:
            raise ValueError("allocations exceed total ways")
        self._way_count = list(way_counts)

    def _way_range(self, partition: int) -> range:
        start = sum(self._way_count[:partition])
        return range(start, start + self._way_count[partition])

    def access(self, partition: int, addr: int) -> AccessResult:
        """Access ``addr``: hit anywhere in the set, insert in own ways."""
        self._clock += 1
        index = addr % self.num_sets
        ways = self._sets[index]
        found = self._where.get(addr)
        if found is not None:
            __, way = found
            entry = ways[way]
            ways[way] = (entry[0], self._clock, entry[2])
            self.hits[partition] += 1
            return AccessResult(hit=True)
        self.misses[partition] += 1
        victim_way = None
        oldest = None
        for way in self._way_range(partition):
            entry = ways[way]
            if entry is None:
                victim_way = way
                oldest = None
                break
            if oldest is None or entry[1] < oldest:
                oldest = entry[1]
                victim_way = way
        if victim_way is None:  # pragma: no cover - guarded by constructor
            raise RuntimeError("partition has no ways")
        evicted = None
        old = ways[victim_way]
        if old is not None:
            evicted = old[0]
            del self._where[evicted]
        ways[victim_way] = (addr, self._clock, partition)
        self._where[addr] = (index, victim_way)
        return AccessResult(hit=False, evicted=evicted)

    def resident_lines(self, partition: int) -> int:
        """Lines whose *owner* is ``partition`` (wherever they sit)."""
        count = 0
        for ways in self._sets:
            for entry in ways:
                if entry is not None and entry[2] == partition:
                    count += 1
        return count

    def __contains__(self, addr: int) -> bool:
        return addr in self._where

    @property
    def occupancy(self) -> int:
        """Lines currently resident across all partitions."""
        return len(self._where)
