"""Occupancy dynamics of an *unmanaged* shared LRU cache.

With no partitioning, co-runners contend for LLC capacity through the
replacement policy.  The standard fluid approximation: each app inserts
lines at its miss rate, and once the cache is full every insertion
evicts a line belonging to app ``i`` with probability proportional to
app ``i``'s occupancy share.  This yields, for constant rates over an
interval, the linear ODE

    do_i/dt = r_i - R * o_i / C,      R = sum_j r_j

whose closed-form solution this module implements.  The model captures
exactly the inertia effect of paper Figures 2 and 4: an idle
latency-critical app (``r_i = 0``) sees its footprint decay
exponentially as batch apps insert, and must rebuild it at its own miss
rate when the next request arrives.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SharedOccupancyModel"]


class SharedOccupancyModel:
    """Closed-form stepper for shared-LRU occupancy competition."""

    def __init__(self, capacity_lines: float):
        if capacity_lines <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = float(capacity_lines)

    def step(
        self,
        occupancies: np.ndarray,
        insertion_rates: np.ndarray,
        dt: float,
    ) -> np.ndarray:
        """Advance occupancies by ``dt`` with constant insertion rates.

        ``insertion_rates`` are misses per cycle per app.  Returns the
        new occupancy vector; total occupancy never exceeds capacity
        and individual occupancies never go negative.
        """
        occ = np.asarray(occupancies, dtype=float).copy()
        rates = np.asarray(insertion_rates, dtype=float)
        if occ.shape != rates.shape:
            raise ValueError("occupancies and rates must have matching shape")
        if np.any(occ < 0) or np.any(rates < 0):
            raise ValueError("occupancies and rates must be non-negative")
        if dt < 0:
            raise ValueError("dt must be non-negative")
        if dt == 0 or not rates.any():
            return occ

        total_occ = occ.sum()
        if total_occ > self.capacity + 1e-6:
            raise ValueError("occupancies exceed capacity")

        # Phase 1: cache not yet full -- insertions land in free space.
        remaining = dt
        free = self.capacity - total_occ
        total_rate = rates.sum()
        if free > 1e-9:
            fill_time = free / total_rate
            phase = min(fill_time, remaining)
            occ += rates * phase
            remaining -= phase
            if remaining <= 1e-12:
                return occ

        # Phase 2: full cache -- exponential approach to the
        # proportional-share fixed point o_i* = (r_i / R) * C.
        fixed_point = rates / total_rate * self.capacity
        decay = np.exp(-total_rate * remaining / self.capacity)
        occ = fixed_point + (occ - fixed_point) * decay
        # Numerical guard: renormalize tiny drift.
        occ = np.clip(occ, 0.0, None)
        excess = occ.sum() - self.capacity
        if abs(excess) > 1e-6:
            occ *= self.capacity / occ.sum()
        return occ

    def equilibrium(self, insertion_rates: np.ndarray) -> np.ndarray:
        """Fixed-point occupancies for constant insertion rates."""
        rates = np.asarray(insertion_rates, dtype=float)
        if np.any(rates < 0):
            raise ValueError("rates must be non-negative")
        total = rates.sum()
        if total == 0:
            raise ValueError("at least one app must insert")
        return rates / total * self.capacity
