"""Trace-driven way-partitioning over a set-associative array.

Way-partitioning restricts each partition's *insertions* to its
assigned subset of ways; lookups still search the whole set.  Its
weaknesses — the reason Ubik needs Vantage (paper Sections 2.2 and
7.3) — all fall out of this model:

* partition sizes are coarse (multiples of one way's capacity);
* a partition's associativity equals its way count, degrading
  replacement quality for small partitions;
* resizing is slow and pattern-dependent: after a way is reassigned,
  the old owner's lines remain until the new owner happens to miss in
  each set, so transients cannot be bounded analytically.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .set_assoc import AccessResult

__all__ = ["WayPartitionedCache"]


class WayPartitionedCache:
    """Set-associative cache with per-partition way masks."""

    def __init__(self, num_lines: int, ways: int, num_partitions: int):
        if num_lines < 1 or ways < 1:
            raise ValueError("capacity and ways must be positive")
        if num_lines % ways != 0:
            raise ValueError("num_lines must be a multiple of ways")
        if not 1 <= num_partitions <= ways:
            raise ValueError("way-partitioning supports at most `ways` partitions")
        self.num_lines = num_lines
        self.ways = ways
        self.num_sets = num_lines // ways
        self.num_partitions = num_partitions
        # Per set: way -> (addr, lru_time, owner_partition); None if empty.
        self._sets: List[List[Optional[tuple]]] = [
            [None] * ways for _ in range(self.num_sets)
        ]
        self._where: Dict[int, tuple] = {}
        self._clock = 0
        # Contiguous way ranges per partition.
        base = ways // num_partitions
        extra = ways % num_partitions
        self._way_count = [base + (1 if i < extra else 0) for i in range(num_partitions)]
        self.hits = [0] * num_partitions
        self.misses = [0] * num_partitions

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def set_allocation(self, way_counts: List[int]) -> None:
        """Assign each partition a number of ways (must sum to <= ways)."""
        if len(way_counts) != self.num_partitions:
            raise ValueError("one way count per partition required")
        if any(w < 1 for w in way_counts):
            raise ValueError("each partition needs at least one way")
        if sum(way_counts) > self.ways:
            raise ValueError("allocations exceed total ways")
        self._way_count = list(way_counts)

    def allocation(self, partition: int) -> int:
        """Ways currently assigned to ``partition``."""
        self._check_partition(partition)
        return self._way_count[partition]

    def _way_range(self, partition: int) -> range:
        start = sum(self._way_count[:partition])
        return range(start, start + self._way_count[partition])

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------
    def access(self, partition: int, addr: int) -> AccessResult:
        """Access ``addr``: hit anywhere in the set, insert in own ways."""
        self._check_partition(partition)
        self._clock += 1
        index = addr % self.num_sets
        ways = self._sets[index]
        found = self._where.get(addr)
        if found is not None:
            __, way = found
            entry = ways[way]
            ways[way] = (entry[0], self._clock, entry[2])
            self.hits[partition] += 1
            return AccessResult(hit=True)
        self.misses[partition] += 1
        victim_way = None
        oldest = None
        for way in self._way_range(partition):
            entry = ways[way]
            if entry is None:
                victim_way = way
                oldest = None
                break
            if oldest is None or entry[1] < oldest:
                oldest = entry[1]
                victim_way = way
        if victim_way is None:  # pragma: no cover - guarded by constructor
            raise RuntimeError("partition has no ways")
        evicted = None
        old = ways[victim_way]
        if old is not None:
            evicted = old[0]
            del self._where[evicted]
        ways[victim_way] = (addr, self._clock, partition)
        self._where[addr] = (index, victim_way)
        return AccessResult(hit=False, evicted=evicted)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def resident_lines(self, partition: int) -> int:
        """Lines whose *owner* is ``partition`` (wherever they sit)."""
        self._check_partition(partition)
        count = 0
        for ways in self._sets:
            for entry in ways:
                if entry is not None and entry[2] == partition:
                    count += 1
        return count

    def __contains__(self, addr: int) -> bool:
        return addr in self._where

    @property
    def occupancy(self) -> int:
        return len(self._where)

    def partition_miss_ratio(self, partition: int) -> float:
        self._check_partition(partition)
        total = self.hits[partition] + self.misses[partition]
        return self.misses[partition] / total if total else 0.0

    def _check_partition(self, partition: int) -> None:
        if not 0 <= partition < self.num_partitions:
            raise ValueError(f"partition {partition} out of range")
