"""Trace-driven way-partitioning over a set-associative array.

Way-partitioning restricts each partition's *insertions* to its
assigned subset of ways; lookups still search the whole set.  Its
weaknesses — the reason Ubik needs Vantage (paper Sections 2.2 and
7.3) — all fall out of this model:

* partition sizes are coarse (multiples of one way's capacity);
* a partition's associativity equals its way count, degrading
  replacement quality for small partitions;
* resizing is slow and pattern-dependent: after a way is reassigned,
  the old owner's lines remain until the new owner happens to miss in
  each set, so transients cannot be bounded analytically.

Replacement-order contract
--------------------------

Eviction *order* is part of this model's observable behaviour (the
slow-transient experiments above depend on exactly which line leaves
when), so it is an explicit, tested contract rather than an accident
of the data structure:

1. Every access — hit or miss — advances a strictly monotonic access
   clock; a **hit** restamps the line with the clock wherever it sits
   in the set, regardless of which partition owns it.
2. A **miss** considers only the accessing partition's contiguous way
   range.  It claims the *lowest-indexed empty way* if one exists;
   otherwise it evicts the line with the **minimum LRU stamp** in the
   range (the least recently used candidate).
3. Stamps are unique (one clock tick per access), so the victim is
   always unique — there is no tie to break, and the historical
   list-ordered implementation (kept as
   :class:`repro.cache.reference.NaiveWayPartitionedCache`) picks the
   identical line.  ``tests/cache/test_way_partition.py`` pins the
   order and ``tests/cache/test_cache_equivalence.py`` property-tests
   the two implementations against each other.

Storage is the flat-array layout of
:mod:`repro.cache.set_assoc` (slot ``set * ways + way``) plus an owner
array, with a batched :meth:`WayPartitionedCache.access_many` hot
path.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .set_assoc import AccessResult

__all__ = ["WayPartitionedCache"]


class WayPartitionedCache:
    """Set-associative cache with per-partition way masks.

    See the module docstring for the replacement-order contract.
    """

    def __init__(self, num_lines: int, ways: int, num_partitions: int):
        if num_lines < 1 or ways < 1:
            raise ValueError("capacity and ways must be positive")
        if num_lines % ways != 0:
            raise ValueError("num_lines must be a multiple of ways")
        if not 1 <= num_partitions <= ways:
            raise ValueError("way-partitioning supports at most `ways` partitions")
        self.num_lines = num_lines
        self.ways = ways
        self.num_sets = num_lines // ways
        self.num_partitions = num_partitions
        # Flat preallocated slot arrays: slot = set * ways + way.
        self._tags: List[int] = [-1] * num_lines
        self._stamps: List[int] = [0] * num_lines
        self._owner: List[int] = [-1] * num_lines
        self._where: Dict[int, int] = {}  # addr -> slot
        self._clock = 0
        # Contiguous way ranges per partition.
        base = ways // num_partitions
        extra = ways % num_partitions
        self._way_count = [base + (1 if i < extra else 0) for i in range(num_partitions)]
        self.hits = [0] * num_partitions
        self.misses = [0] * num_partitions

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def set_allocation(self, way_counts: List[int]) -> None:
        """Assign each partition a number of ways (must sum to <= ways)."""
        if len(way_counts) != self.num_partitions:
            raise ValueError("one way count per partition required")
        if any(w < 1 for w in way_counts):
            raise ValueError("each partition needs at least one way")
        if sum(way_counts) > self.ways:
            raise ValueError("allocations exceed total ways")
        self._way_count = list(way_counts)

    def allocation(self, partition: int) -> int:
        """Ways currently assigned to ``partition``."""
        self._check_partition(partition)
        return self._way_count[partition]

    def _way_range(self, partition: int) -> range:
        start = sum(self._way_count[:partition])
        return range(start, start + self._way_count[partition])

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------
    def access(self, partition: int, addr: int) -> AccessResult:
        """Access ``addr``: hit anywhere in the set, insert in own ways."""
        self._check_partition(partition)
        self._clock += 1
        slot = self._where.get(addr)
        if slot is not None:
            self._stamps[slot] = self._clock
            self.hits[partition] += 1
            return AccessResult(hit=True)
        self.misses[partition] += 1
        way_range = self._way_range(partition)
        base = (addr % self.num_sets) * self.ways
        lo = base + way_range.start
        hi = base + way_range.stop
        tags = self._tags
        evicted: Optional[int] = None
        try:
            victim = tags.index(-1, lo, hi)
        except ValueError:
            stamps = self._stamps[lo:hi]
            victim = lo + stamps.index(min(stamps))
            evicted = tags[victim]
            del self._where[evicted]
        tags[victim] = addr
        self._stamps[victim] = self._clock
        self._owner[victim] = partition
        self._where[addr] = victim
        return AccessResult(hit=False, evicted=evicted)

    def access_many(self, partition: int, addrs) -> np.ndarray:
        """Access a whole address vector on behalf of one partition.

        Semantically identical to per-element :meth:`access` calls in
        order (same hits, evictions, stamps, and owners) without the
        per-access result allocation; returns the boolean hit mask.
        """
        self._check_partition(partition)
        addr_list = np.asarray(addrs, dtype=np.int64).tolist()
        way_range = self._way_range(partition)
        start, stop = way_range.start, way_range.stop
        tags = self._tags
        stamps = self._stamps
        owner = self._owner
        where = self._where
        get = where.get
        ways = self.ways
        num_sets = self.num_sets
        clock = self._clock
        hits = 0
        misses = 0
        out = bytearray(len(addr_list))
        for i, addr in enumerate(addr_list):
            clock += 1
            slot = get(addr)
            if slot is not None:
                stamps[slot] = clock
                hits += 1
                out[i] = 1
                continue
            misses += 1
            base = (addr % num_sets) * ways
            lo = base + start
            hi = base + stop
            try:
                victim = tags.index(-1, lo, hi)
            except ValueError:
                seg = stamps[lo:hi]
                victim = lo + seg.index(min(seg))
                del where[tags[victim]]
            tags[victim] = addr
            stamps[victim] = clock
            owner[victim] = partition
            where[addr] = victim
        self._clock = clock
        self.hits[partition] += hits
        self.misses[partition] += misses
        return np.frombuffer(bytes(out), dtype=np.bool_)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def resident_lines(self, partition: int) -> int:
        """Lines whose *owner* is ``partition`` (wherever they sit)."""
        self._check_partition(partition)
        return self._owner.count(partition)

    def __contains__(self, addr: int) -> bool:
        return addr in self._where

    @property
    def occupancy(self) -> int:
        """Lines currently resident across all partitions."""
        return len(self._where)

    @property
    def owners(self) -> np.ndarray:
        """Flat slot->owner-partition array (``-1`` = empty slot)."""
        return np.asarray(self._owner, dtype=np.int64)

    def lru_order(self, index: int) -> List[int]:
        """Resident lines of one set, least recently used first."""
        base = index * self.ways
        entries = [
            (self._stamps[base + way], self._tags[base + way])
            for way in range(self.ways)
            if self._tags[base + way] != -1
        ]
        return [tag for __, tag in sorted(entries)]

    def tags_of_set(self, index: int) -> List[int]:
        """One set's tags in way order (``-1`` = empty way)."""
        base = index * self.ways
        return self._tags[base : base + self.ways]

    def stamps_of_set(self, index: int) -> List[int]:
        """One set's LRU stamps in way order."""
        base = index * self.ways
        return self._stamps[base : base + self.ways]

    def partition_miss_ratio(self, partition: int) -> float:
        """Observed miss ratio of one partition (0 before any access)."""
        self._check_partition(partition)
        total = self.hits[partition] + self.misses[partition]
        return self.misses[partition] / total if total else 0.0

    def _check_partition(self, partition: int) -> None:
        if not 0 <= partition < self.num_partitions:
            raise ValueError(f"partition {partition} out of range")
