"""Cache substrates: trace-driven arrays, partitioning schemes, sharing models."""

from .schemes import (
    FIG13_SCHEMES,
    SchemeModel,
    vantage_setassoc,
    vantage_zcache,
    way_partitioning,
)
from .set_assoc import AccessResult, SetAssociativeCache
from .sharing import SharedOccupancyModel
from .vantage import VantageCache
from .way_partition import WayPartitionedCache
from .zcache import ZCache

__all__ = [
    "AccessResult",
    "SetAssociativeCache",
    "ZCache",
    "VantageCache",
    "WayPartitionedCache",
    "SharedOccupancyModel",
    "SchemeModel",
    "vantage_zcache",
    "vantage_setassoc",
    "way_partitioning",
    "FIG13_SCHEMES",
]
