"""Trace-driven set-associative cache with LRU replacement.

This is the reference array for the characterization experiments
(Figure 2's reuse breakdown) and the substrate for way-partitioning.
Addresses are line addresses (already shifted by the 64 B line size).

Storage layout (the PR-4 hot-path rewrite)
------------------------------------------

The cache keeps **flat preallocated line-indexed arrays** instead of
per-set Python lists: slot ``set * ways + way`` holds the line's tag
(``-1`` when empty) and an **integer LRU stamp** — a monotonically
increasing access clock.  Recency is ordered by stamp, so

* a **hit** is one dict probe plus one stamp store (O(1), versus the
  old O(ways) ``list.remove`` shuffle), and
* a **miss** claims the lowest-indexed empty way, else evicts the
  minimum-stamp (least recently used) line of the set.

Stamps are unique (the clock ticks once per access), so the victim is
always unique and identical to the old list-ordered choice; the naive
implementation is kept in :mod:`repro.cache.reference` and the
equivalence is property-tested access for access.

The flat arrays are plain Python lists — the fastest random-access
store the interpreter offers — mutated in place by both access paths;
the :attr:`SetAssociativeCache.tags` / :attr:`SetAssociativeCache.stamps`
properties materialize numpy views for introspection.  The batched
entry point :meth:`SetAssociativeCache.access_many` is the fast path:
it takes a numpy address vector, hoists the per-access state lookups
out of the loop, and returns a numpy hit mask without allocating a
per-access result object.  ``repro bench`` tracks its speedup over the
naive reference as the ``trace_replay`` kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

__all__ = ["AccessResult", "SetAssociativeCache"]


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    evicted: Optional[int] = None


class SetAssociativeCache:
    """A ``ways``-way set-associative cache of ``num_lines`` lines.

    Resident lines live in flat tag/stamp arrays (see the module
    docstring); recency within a set is ordered by integer LRU stamp,
    most recently used highest.
    """

    def __init__(self, num_lines: int, ways: int):
        if num_lines < 1 or ways < 1:
            raise ValueError("capacity and ways must be positive")
        if num_lines % ways != 0:
            raise ValueError("num_lines must be a multiple of ways")
        self.num_lines = num_lines
        self.ways = ways
        self.num_sets = num_lines // ways
        # Flat preallocated slot arrays: slot = set * ways + way.
        self._tags: List[int] = [-1] * num_lines
        self._stamps: List[int] = [0] * num_lines
        self._where: Dict[int, int] = {}  # addr -> slot
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def set_index(self, addr: int) -> int:
        """Set index for a line address (simple modulo hashing)."""
        return addr % self.num_sets

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------
    def access(self, addr: int) -> AccessResult:
        """Access a line: LRU update on hit, LRU eviction on miss."""
        self._clock += 1
        slot = self._where.get(addr)
        if slot is not None:
            self._stamps[slot] = self._clock
            self.hits += 1
            return AccessResult(hit=True)
        self.misses += 1
        tags = self._tags
        base = (addr % self.num_sets) * self.ways
        end = base + self.ways
        evicted: Optional[int] = None
        try:
            victim = tags.index(-1, base, end)
        except ValueError:
            stamps = self._stamps[base:end]
            victim = base + stamps.index(min(stamps))
            evicted = tags[victim]
            del self._where[evicted]
        tags[victim] = addr
        self._stamps[victim] = self._clock
        self._where[addr] = victim
        return AccessResult(hit=False, evicted=evicted)

    def access_many(self, addrs) -> np.ndarray:
        """Access a whole address vector; returns the boolean hit mask.

        Semantically identical to calling :meth:`access` per element in
        order — same hits, same evictions, same final LRU state — but
        without per-access result objects or method dispatch.  This is
        the trace-replay hot path (used by the Figure 2
        characterization and timed by ``repro bench``).  ``addrs`` is
        any integer array-like; a plain list of ints is used as-is, so
        callers that already hold one skip the round-trip conversion.
        """
        if type(addrs) is list:
            addr_list = addrs
        else:
            addr_list = np.asarray(addrs, dtype=np.int64).tolist()
        tags = self._tags
        stamps = self._stamps
        where = self._where
        get = where.get
        ways = self.ways
        num_sets = self.num_sets
        clock = self._clock
        hits = 0
        misses = 0
        out = bytearray(len(addr_list))
        for i, addr in enumerate(addr_list):
            clock += 1
            slot = get(addr)
            if slot is not None:
                stamps[slot] = clock
                hits += 1
                out[i] = 1
                continue
            misses += 1
            base = (addr % num_sets) * ways
            end = base + ways
            try:
                victim = tags.index(-1, base, end)
            except ValueError:
                seg = stamps[base:end]
                victim = base + seg.index(min(seg))
                del where[tags[victim]]
            tags[victim] = addr
            stamps[victim] = clock
            where[addr] = victim
        self._clock = clock
        self.hits += hits
        self.misses += misses
        return np.frombuffer(bytes(out), dtype=np.bool_)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __contains__(self, addr: int) -> bool:
        return addr in self._where

    def __len__(self) -> int:
        return len(self._where)

    @property
    def occupancy(self) -> int:
        """Lines currently resident."""
        return len(self._where)

    @property
    def miss_ratio(self) -> float:
        """Observed miss ratio so far (0 if no accesses yet)."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    @property
    def tags(self) -> np.ndarray:
        """Flat slot->tag array (``-1`` = empty), slot = set*ways + way."""
        return np.asarray(self._tags, dtype=np.int64)

    @property
    def stamps(self) -> np.ndarray:
        """Flat slot->LRU-stamp array (higher = more recently used)."""
        return np.asarray(self._stamps, dtype=np.int64)

    def lru_order(self, index: int) -> List[int]:
        """Resident lines of one set, least recently used first."""
        base = index * self.ways
        entries = [
            (self._stamps[base + way], self._tags[base + way])
            for way in range(self.ways)
            if self._tags[base + way] != -1
        ]
        return [tag for __, tag in sorted(entries)]

    def flush(self) -> None:
        """Empty the cache and reset statistics."""
        self._tags = [-1] * self.num_lines
        self._stamps = [0] * self.num_lines
        self._where.clear()
        self._clock = 0
        self.hits = 0
        self.misses = 0
