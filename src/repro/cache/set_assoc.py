"""Trace-driven set-associative cache with LRU replacement.

This is the reference array for the characterization experiments
(Figure 2's reuse breakdown) and the substrate for way-partitioning.
Addresses are line addresses (already shifted by the 64 B line size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["AccessResult", "SetAssociativeCache"]


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    evicted: Optional[int] = None


class SetAssociativeCache:
    """A ``ways``-way set-associative cache of ``num_lines`` lines.

    Each set keeps its resident lines in LRU order (most recent last).
    """

    def __init__(self, num_lines: int, ways: int):
        if num_lines < 1 or ways < 1:
            raise ValueError("capacity and ways must be positive")
        if num_lines % ways != 0:
            raise ValueError("num_lines must be a multiple of ways")
        self.num_lines = num_lines
        self.ways = ways
        self.num_sets = num_lines // ways
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self._where: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0

    def set_index(self, addr: int) -> int:
        """Set index for a line address (simple modulo hashing)."""
        return addr % self.num_sets

    def access(self, addr: int) -> AccessResult:
        """Access a line: LRU update on hit, LRU eviction on miss."""
        index = self.set_index(addr)
        lines = self._sets[index]
        if addr in self._where:
            lines.remove(addr)
            lines.append(addr)
            self.hits += 1
            return AccessResult(hit=True)
        self.misses += 1
        evicted = None
        if len(lines) >= self.ways:
            evicted = lines.pop(0)
            del self._where[evicted]
        lines.append(addr)
        self._where[addr] = index
        return AccessResult(hit=False, evicted=evicted)

    def __contains__(self, addr: int) -> bool:
        return addr in self._where

    def __len__(self) -> int:
        return len(self._where)

    @property
    def occupancy(self) -> int:
        """Lines currently resident."""
        return len(self._where)

    @property
    def miss_ratio(self) -> float:
        """Observed miss ratio so far (0 if no accesses yet)."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def flush(self) -> None:
        """Empty the cache and reset statistics."""
        self._sets = [[] for _ in range(self.num_sets)]
        self._where.clear()
        self.hits = 0
        self.misses = 0
