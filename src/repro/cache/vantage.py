"""Trace-driven Vantage partitioning on a zcache (ISCA 2011).

Vantage enforces fine-grained partitions statistically: every line is
tagged with its partition; on a miss, the replacement walk's candidates
are examined and the victim is drawn from partitions holding more lines
than their target ("over-target" partitions), via Vantage's two-stage
demotion/eviction.  The properties Ubik depends on (paper Section 5.1):

* a partition below its target size grows by **one line per miss** and
  suffers a negligible probability of losing a line, independent of the
  access pattern;
* partitions are isolated: one partition's insertions only displace
  lines of over-target partitions;
* resizing needs no moves or invalidations — just a new target.

This model reproduces those properties over the statistical zcache
candidate machinery, and is used to validate the behavioural transient
model the mix engine uses.

Slot state (tag, partition, LRU time) lives in flat preallocated
line-indexed arrays — plain Python lists, the fastest random-access
store the interpreter offers — shared by the scalar :meth:`access` and
the batched :meth:`access_many` hot path, so batching carries no
per-call conversion cost.  The per-miss candidate draw still comes
from the numpy RNG, one draw per miss, so scalar and batched execution
consume the exact same RNG stream.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .set_assoc import AccessResult

__all__ = ["VantageCache"]


class VantageCache:
    """Vantage fine-grained partitioning over an R-candidate array."""

    def __init__(
        self,
        num_lines: int,
        num_partitions: int,
        ways: int = 4,
        candidates: int = 52,
        seed: int = 0,
    ):
        if num_lines < 1:
            raise ValueError("capacity must be positive")
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        self.num_lines = num_lines
        self.num_partitions = num_partitions
        self.ways = ways
        self.candidates = min(candidates, num_lines)
        self._rng = np.random.default_rng(seed)
        # Flat preallocated slot arrays (see module docstring).
        self._slot_addr: List[int] = [-1] * num_lines
        self._slot_part: List[int] = [-1] * num_lines
        self._slot_time: List[int] = [0] * num_lines
        self._where: Dict[int, int] = {}
        self._free = list(range(num_lines - 1, -1, -1))
        self._clock = 0
        self._targets: List[int] = [0] * num_partitions
        self._actual: List[int] = [0] * num_partitions
        self.hits = np.zeros(num_partitions, dtype=np.int64)
        self.misses = np.zeros(num_partitions, dtype=np.int64)
        #: Lines lost by under-target partitions (should stay ~0).
        self.under_target_evictions = np.zeros(num_partitions, dtype=np.int64)

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def set_target(self, partition: int, lines: int) -> None:
        """Set a partition's target size; takes effect statistically."""
        self._check_partition(partition)
        if lines < 0:
            raise ValueError("target must be non-negative")
        self._targets[partition] = lines

    def target(self, partition: int) -> int:
        self._check_partition(partition)
        return int(self._targets[partition])

    def actual_size(self, partition: int) -> int:
        """Lines the partition currently holds."""
        self._check_partition(partition)
        return int(self._actual[partition])

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------
    def _evict_slot(self) -> int:
        """Pick and clear a victim slot (two-stage Vantage selection).

        Among R uniform candidate slots: the LRU line of an over-target
        partition; else the LRU of an at-target partition; else the
        global LRU of the candidates.  Ties (impossible while the clock
        is strictly monotonic) would resolve to the first-drawn
        candidate, matching ``np.argmin``.
        """
        slot_time = self._slot_time
        slot_part = self._slot_part
        actual = self._actual
        targets = self._targets
        picks = self._rng.integers(0, self.num_lines, size=self.candidates).tolist()
        best_over = best_at = best_any = None
        t_over = t_at = t_any = None
        for pick in picks:
            tm = slot_time[pick]
            if t_any is None or tm < t_any:
                t_any, best_any = tm, pick
            part = slot_part[pick]
            occupied = actual[part]
            target = targets[part]
            if occupied >= target:
                if t_at is None or tm < t_at:
                    t_at, best_at = tm, pick
                if occupied > target and (t_over is None or tm < t_over):
                    t_over, best_over = tm, pick
        slot = (
            best_over
            if best_over is not None
            else best_at if best_at is not None else best_any
        )
        victim_part = slot_part[slot]
        if actual[victim_part] < targets[victim_part]:
            self.under_target_evictions[victim_part] += 1
        actual[victim_part] -= 1
        del self._where[self._slot_addr[slot]]
        return slot

    def access(self, partition: int, addr: int) -> AccessResult:
        """Access ``addr`` on behalf of ``partition``."""
        self._check_partition(partition)
        self._clock += 1
        slot = self._where.get(addr)
        if slot is not None:
            self._slot_time[slot] = self._clock
            self.hits[partition] += 1
            return AccessResult(hit=True)
        self.misses[partition] += 1
        evicted: Optional[int] = None
        if self._free:
            slot = self._free.pop()
        else:
            slot = self._evict_slot()
            evicted = self._slot_addr[slot]  # unlinked, tag still readable
        self._slot_addr[slot] = addr
        self._slot_part[slot] = partition
        self._slot_time[slot] = self._clock
        self._where[addr] = slot
        self._actual[partition] += 1
        return AccessResult(hit=False, evicted=evicted)

    def access_many(self, partition: int, addrs) -> np.ndarray:
        """Access a whole address vector on behalf of one partition.

        Identical to per-element :meth:`access` calls in order — same
        slot state, same per-miss RNG draws — without the per-access
        result allocation and method dispatch.  Returns the boolean hit
        mask; this is the trace-driven simulator's hot path.
        """
        self._check_partition(partition)
        addr_list = np.asarray(addrs, dtype=np.int64).tolist()
        slot_time = self._slot_time
        slot_addr = self._slot_addr
        slot_part = self._slot_part
        actual = self._actual
        where = self._where
        get = where.get
        free = self._free
        clock = self._clock
        hits = 0
        misses = 0
        out = bytearray(len(addr_list))
        for i, addr in enumerate(addr_list):
            clock += 1
            slot = get(addr)
            if slot is not None:
                slot_time[slot] = clock
                hits += 1
                out[i] = 1
                continue
            misses += 1
            if free:
                slot = free.pop()
            else:
                slot = self._evict_slot()
            slot_addr[slot] = addr
            slot_part[slot] = partition
            slot_time[slot] = clock
            where[addr] = slot
            actual[partition] += 1
        self._clock = clock
        self.hits[partition] += hits
        self.misses[partition] += misses
        return np.frombuffer(bytes(out), dtype=np.bool_)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __contains__(self, addr: int) -> bool:
        return addr in self._where

    @property
    def occupancy(self) -> int:
        return len(self._where)

    def partition_miss_ratio(self, partition: int) -> float:
        self._check_partition(partition)
        total = int(self.hits[partition] + self.misses[partition])
        return float(self.misses[partition]) / total if total else 0.0

    def partition_sizes(self) -> List[int]:
        return [int(x) for x in self._actual]

    def _check_partition(self, partition: int) -> None:
        if not 0 <= partition < self.num_partitions:
            raise ValueError(f"partition {partition} out of range")
