"""Trace-driven Vantage partitioning on a zcache (ISCA 2011).

Vantage enforces fine-grained partitions statistically: every line is
tagged with its partition; on a miss, the replacement walk's candidates
are examined and the victim is drawn from partitions holding more lines
than their target ("over-target" partitions), via Vantage's two-stage
demotion/eviction.  The properties Ubik depends on (paper Section 5.1):

* a partition below its target size grows by **one line per miss** and
  suffers a negligible probability of losing a line, independent of the
  access pattern;
* partitions are isolated: one partition's insertions only displace
  lines of over-target partitions;
* resizing needs no moves or invalidations — just a new target.

This model reproduces those properties over the statistical zcache
candidate machinery, and is used to validate the behavioural transient
model the mix engine uses.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .set_assoc import AccessResult

__all__ = ["VantageCache"]


class VantageCache:
    """Vantage fine-grained partitioning over an R-candidate array."""

    def __init__(
        self,
        num_lines: int,
        num_partitions: int,
        ways: int = 4,
        candidates: int = 52,
        seed: int = 0,
    ):
        if num_lines < 1:
            raise ValueError("capacity must be positive")
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        self.num_lines = num_lines
        self.num_partitions = num_partitions
        self.ways = ways
        self.candidates = min(candidates, num_lines)
        self._rng = np.random.default_rng(seed)
        self._slot_addr = np.full(num_lines, -1, dtype=np.int64)
        self._slot_part = np.full(num_lines, -1, dtype=np.int64)
        self._slot_time = np.zeros(num_lines, dtype=np.int64)
        self._where: Dict[int, int] = {}
        self._free = list(range(num_lines - 1, -1, -1))
        self._clock = 0
        self._targets = np.zeros(num_partitions, dtype=np.int64)
        self._actual = np.zeros(num_partitions, dtype=np.int64)
        self.hits = np.zeros(num_partitions, dtype=np.int64)
        self.misses = np.zeros(num_partitions, dtype=np.int64)
        #: Lines lost by under-target partitions (should stay ~0).
        self.under_target_evictions = np.zeros(num_partitions, dtype=np.int64)

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def set_target(self, partition: int, lines: int) -> None:
        """Set a partition's target size; takes effect statistically."""
        self._check_partition(partition)
        if lines < 0:
            raise ValueError("target must be non-negative")
        self._targets[partition] = lines

    def target(self, partition: int) -> int:
        self._check_partition(partition)
        return int(self._targets[partition])

    def actual_size(self, partition: int) -> int:
        """Lines the partition currently holds."""
        self._check_partition(partition)
        return int(self._actual[partition])

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------
    def access(self, partition: int, addr: int) -> AccessResult:
        """Access ``addr`` on behalf of ``partition``."""
        self._check_partition(partition)
        self._clock += 1
        slot = self._where.get(addr)
        if slot is not None:
            self._slot_time[slot] = self._clock
            self.hits[partition] += 1
            return AccessResult(hit=True)
        self.misses[partition] += 1
        evicted: Optional[int] = None
        if self._free:
            slot = self._free.pop()
        else:
            slot = self._pick_victim(partition)
            evicted = int(self._slot_addr[slot])
            victim_part = int(self._slot_part[slot])
            if self._actual[victim_part] < self._targets[victim_part]:
                self.under_target_evictions[victim_part] += 1
            self._actual[victim_part] -= 1
            del self._where[evicted]
        self._slot_addr[slot] = addr
        self._slot_part[slot] = partition
        self._slot_time[slot] = self._clock
        self._where[addr] = slot
        self._actual[partition] += 1
        return AccessResult(hit=False, evicted=evicted)

    def _pick_victim(self, inserting: int) -> int:
        """Two-stage victim selection among R uniform candidates.

        Stage 1 (demotion targets): candidates from partitions holding
        at least their target, preferring over-target ones.  Stage 2:
        if every candidate belongs to under-target partitions (rare by
        construction), fall back to global LRU among candidates.
        """
        picks = self._rng.integers(0, self.num_lines, size=self.candidates)
        parts = self._slot_part[picks]
        actual = self._actual[parts]
        targets = self._targets[parts]
        over = actual > targets
        at_or_over = actual >= targets
        for mask in (over, at_or_over):
            if mask.any():
                group = picks[mask]
                times = self._slot_time[group]
                return int(group[int(np.argmin(times))])
        times = self._slot_time[picks]
        return int(picks[int(np.argmin(times))])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __contains__(self, addr: int) -> bool:
        return addr in self._where

    @property
    def occupancy(self) -> int:
        return len(self._where)

    def partition_miss_ratio(self, partition: int) -> float:
        self._check_partition(partition)
        total = int(self.hits[partition] + self.misses[partition])
        return float(self.misses[partition]) / total if total else 0.0

    def partition_sizes(self) -> List[int]:
        return [int(x) for x in self._actual]

    def _check_partition(self, partition: int) -> None:
        if not 0 <= partition < self.num_partitions:
            raise ValueError(f"partition {partition} out of range")
