"""Statistical zcache model (Sanchez & Kozyrakis, MICRO 2010).

A zcache decouples associativity from ways: on a miss, the replacement
walk considers R candidate lines spread (pseudo-)uniformly over the
whole array and evicts the least recently used among them.  The key
statistical property — which Vantage builds on — is that candidates are
an unbiased uniform sample of cache contents, independent of the access
pattern.  This model keeps exactly that property: it tracks per-line
last-access times and, on a miss, samples ``candidates`` occupied slots
uniformly at random and evicts the oldest.

Slot tags and last-access times live in flat preallocated line-indexed
arrays (plain Python lists — the fastest random-access store the
interpreter offers), shared by the scalar :meth:`ZCache.access` and
the batched :meth:`ZCache.access_many`, so batching carries no
per-call conversion cost.  Candidate draws come from the numpy RNG one
miss at a time in both paths, so scalar and batched execution consume
the exact same RNG stream.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .set_assoc import AccessResult

__all__ = ["ZCache"]


class ZCache:
    """Array of ``num_lines`` slots with R-candidate LRU replacement."""

    def __init__(
        self,
        num_lines: int,
        ways: int = 4,
        candidates: int = 52,
        seed: int = 0,
    ):
        if num_lines < 1:
            raise ValueError("capacity must be positive")
        if not 1 <= candidates:
            raise ValueError("need at least one replacement candidate")
        if ways < 1:
            raise ValueError("ways must be positive")
        self.num_lines = num_lines
        self.ways = ways
        self.candidates = min(candidates, num_lines)
        self._rng = np.random.default_rng(seed)
        self._slot_addr: List[int] = [-1] * num_lines
        self._slot_time: List[int] = [0] * num_lines
        self._where: Dict[int, int] = {}
        self._free = list(range(num_lines - 1, -1, -1))
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> AccessResult:
        """Access a line; on a miss, evict the LRU of R random candidates."""
        self._clock += 1
        slot = self._where.get(addr)
        if slot is not None:
            self._slot_time[slot] = self._clock
            self.hits += 1
            return AccessResult(hit=True)
        self.misses += 1
        evicted: Optional[int] = None
        if self._free:
            slot = self._free.pop()
        else:
            slot = self._pick_victim()
            evicted = self._slot_addr[slot]
            del self._where[evicted]
        self._slot_addr[slot] = addr
        self._slot_time[slot] = self._clock
        self._where[addr] = slot
        return AccessResult(hit=False, evicted=evicted)

    def access_many(self, addrs) -> np.ndarray:
        """Access a whole address vector; returns the boolean hit mask.

        Identical to per-element :meth:`access` calls in order (same
        slot state, same per-miss RNG draws) without the per-access
        result allocation and method dispatch.
        """
        addr_list = np.asarray(addrs, dtype=np.int64).tolist()
        slot_addr = self._slot_addr
        slot_time = self._slot_time
        where = self._where
        get = where.get
        free = self._free
        clock = self._clock
        hits = 0
        misses = 0
        pick_victim = self._pick_victim
        out = bytearray(len(addr_list))
        for i, addr in enumerate(addr_list):
            clock += 1
            slot = get(addr)
            if slot is not None:
                slot_time[slot] = clock
                hits += 1
                out[i] = 1
                continue
            misses += 1
            if free:
                slot = free.pop()
            else:
                slot = pick_victim()
                del where[slot_addr[slot]]
            slot_addr[slot] = addr
            slot_time[slot] = clock
            where[addr] = slot
        self._clock = clock
        self.hits += hits
        self.misses += misses
        return np.frombuffer(bytes(out), dtype=np.bool_)

    def _pick_victim(self) -> int:
        """The LRU slot among R uniform candidates (first-drawn wins a
        tie, matching ``np.argmin`` — though ties cannot occur while
        every occupied slot carries a unique clock value)."""
        picks = self._rng.integers(0, self.num_lines, size=self.candidates).tolist()
        return min(picks, key=self._slot_time.__getitem__)

    def __contains__(self, addr: int) -> bool:
        return addr in self._where

    def __len__(self) -> int:
        return len(self._where)

    @property
    def occupancy(self) -> int:
        return len(self._where)

    @property
    def miss_ratio(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
