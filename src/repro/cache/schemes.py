"""Behavioural partitioning-scheme models for the mix engine (Fig 13).

The mix engine is analytic, so it consumes a *descriptor* of the
partitioning scheme's imperfections rather than a tag array:

* ``granularity_lines`` — the allocation quantum (one line for
  Vantage; one way's capacity for way-partitioning).
* ``fill_efficiency`` — range of the per-transient growth-rate
  multiplier.  Vantage on a zcache grows a partition by exactly one
  line per miss (efficiency 1.0, deterministic).  Way-partitioning
  claims a reassigned way only as the new owner misses in each set, so
  growth is slower and *pattern-dependent*: the engine draws an
  efficiency uniformly from this range at every idle->active transient.
  Crucially, Ubik's controller always plans with the Vantage model, so
  a scheme whose real transients are slower makes Ubik miss deadlines —
  exactly the paper's Figure 13 result.
* ``assoc_penalty`` — miss-ratio inflation for small allocations:
  a way-partitioned partition with ``w`` ways has associativity ``w``.
* ``forced_eviction_frac`` / ``eviction_jitter`` — soft-partitioning
  losses: Vantage on low-associativity set-associative arrays cannot
  always find demotion candidates and leaks lines from under-target
  partitions (steady deficit plus per-idle-period jitter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = [
    "SchemeModel",
    "vantage_zcache",
    "vantage_setassoc",
    "way_partitioning",
    "FIG13_SCHEMES",
]


@dataclass(frozen=True)
class SchemeModel:
    """Imperfection descriptor for one partitioning scheme + array."""

    name: str
    granularity_lines: int
    fill_efficiency: Tuple[float, float]
    assoc_ways_per_partition: float  # associativity at full allocation; 0 = n/a
    assoc_penalty_coeff: float  # miss multiplier = 1 + coeff / ways_allocated
    forced_eviction_frac: float  # steady resident deficit (fraction of target)
    eviction_jitter: float  # extra per-idle-period resident loss (uniform max)
    max_partitions: int = 0  # 0 = unlimited

    def __post_init__(self) -> None:
        low, high = self.fill_efficiency
        if not 0.0 < low <= high <= 1.0:
            raise ValueError("fill efficiency range must satisfy 0 < low <= high <= 1")
        if self.granularity_lines < 1:
            raise ValueError("granularity must be at least one line")
        if not 0.0 <= self.forced_eviction_frac < 1.0:
            raise ValueError("forced eviction fraction must be in [0, 1)")
        if not 0.0 <= self.eviction_jitter < 1.0:
            raise ValueError("eviction jitter must be in [0, 1)")

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def quantize(self, lines: float) -> int:
        """Round an allocation to the scheme's quantum (floor, min 1)."""
        quanta = max(1, int(lines // self.granularity_lines))
        return quanta * self.granularity_lines

    def draw_fill_efficiency(self, rng: np.random.Generator) -> float:
        """Growth-rate multiplier for one partition-fill transient."""
        low, high = self.fill_efficiency
        if low == high:
            return low
        return float(rng.uniform(low, high))

    def miss_multiplier(self, allocation_lines: float, total_lines: float) -> float:
        """Associativity penalty at a given allocation.

        For way-partitioned arrays the partition's associativity equals
        its way count; small allocations inflate the miss ratio.
        """
        if self.assoc_penalty_coeff == 0.0 or allocation_lines <= 0:
            return 1.0
        way_lines = self.granularity_lines
        ways_allocated = max(1.0, allocation_lines / way_lines)
        return 1.0 + self.assoc_penalty_coeff / ways_allocated

    def effective_target(self, target_lines: float) -> float:
        """Lines a partition actually retains at steady state."""
        return target_lines * (1.0 - self.forced_eviction_frac)

    def draw_idle_loss(self, rng: np.random.Generator) -> float:
        """Fraction of resident lines additionally lost over an idle gap."""
        if self.eviction_jitter == 0.0:
            return 0.0
        return float(rng.uniform(0.0, self.eviction_jitter))


def vantage_zcache(llc_lines: int) -> SchemeModel:
    """Vantage on a 4-way 52-candidate zcache: the paper's default."""
    return SchemeModel(
        name="Vantage Z4/52",
        granularity_lines=1,
        fill_efficiency=(1.0, 1.0),
        assoc_ways_per_partition=52.0,
        assoc_penalty_coeff=0.0,
        forced_eviction_frac=0.0,
        eviction_jitter=0.0,
    )


def vantage_setassoc(llc_lines: int, ways: int) -> SchemeModel:
    """Vantage on a set-associative array: soft partitioning.

    With few ways Vantage loses its analytical guarantees; forced
    evictions leak lines from under-target partitions (paper Sec 7.3:
    SA16 hurts tails by up to 45%; SA64 behaves nearly like a zcache).
    """
    if ways not in (16, 64):
        raise ValueError("modelled configurations are 16 and 64 ways")
    if ways == 16:
        forced, jitter = 0.06, 0.15
    else:
        forced, jitter = 0.01, 0.03
    return SchemeModel(
        name=f"Vantage SA{ways}",
        granularity_lines=1,
        fill_efficiency=(1.0, 1.0),
        assoc_ways_per_partition=float(ways),
        assoc_penalty_coeff=0.0,
        forced_eviction_frac=forced,
        eviction_jitter=jitter,
    )


def way_partitioning(llc_lines: int, ways: int) -> SchemeModel:
    """Way-partitioning: coarse, slow, unpredictable transients."""
    if ways not in (16, 64):
        raise ValueError("modelled configurations are 16 and 64 ways")
    way_lines = max(1, llc_lines // ways)
    if ways == 16:
        fill = (0.25, 0.85)
        penalty = 0.45
    else:
        fill = (0.35, 0.95)
        penalty = 0.25
    return SchemeModel(
        name=f"WayPart SA{ways}",
        granularity_lines=way_lines,
        fill_efficiency=fill,
        assoc_ways_per_partition=float(ways),
        assoc_penalty_coeff=penalty,
        forced_eviction_frac=0.0,
        eviction_jitter=0.0,
        max_partitions=ways,
    )


def FIG13_SCHEMES(llc_lines: int):
    """The five scheme/array configurations of paper Figure 13."""
    return (
        way_partitioning(llc_lines, 16),
        way_partitioning(llc_lines, 64),
        vantage_setassoc(llc_lines, 16),
        vantage_setassoc(llc_lines, 64),
        vantage_zcache(llc_lines),
    )
