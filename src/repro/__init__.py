"""repro: a reproduction of *Ubik: Efficient Cache Sharing with Strict
QoS for Latency-Critical Workloads* (Kasture & Sanchez, ASPLOS 2014).

Quick tour — the declarative runtime API
----------------------------------------

>>> from repro import Session, RunSpec, MixRef, PolicySpec
>>> session = Session()                 # persistent store + executor
>>> spec = RunSpec(
...     mix=MixRef(lc_name="shore", load=0.2, combo="nft"),
...     policy=PolicySpec.of("ubik", slack=0.05),
...     requests=100,
... )
>>> record = session.run(spec)                       # doctest: +SKIP
>>> record.tail_degradation  # ~1.0: tail preserved  # doctest: +SKIP
>>> record.weighted_speedup  # >1.0: batch sped up   # doctest: +SKIP

Whole sweep grids run the same way (``session.sweep(scale)``), fanned
across cores with ``Session(jobs=N)`` and served from the on-disk
result store on repeat runs.  The imperative API remains::

>>> from repro import make_mix_specs, MixRunner, UbikPolicy
>>> spec = make_mix_specs(lc_names=["shore"], loads=[0.2], mixes_per_combo=1)[0]
>>> runner = MixRunner(requests=100)
>>> result = runner.run_mix(spec, UbikPolicy(slack=0.05))    # doctest: +SKIP

Packages:

* :mod:`repro.core` — Ubik itself: transient bounds, boost sizing,
  repartitioning table, de-boost circuit, slack controller.
* :mod:`repro.policies` — LRU / UCP / StaticLC / OnOff baselines.
* :mod:`repro.runtime` — registries, run specs, executors, the batched
  scheduler, intra-run trace sharding, the persistent result store,
  and the :class:`Session` facade.
* :mod:`repro.sim` — the event-driven mix engine and runners.
* :mod:`repro.workloads` — the five LC workload models and SPEC-like
  batch classes; mix construction.
* :mod:`repro.cache` — trace-driven arrays (set-assoc, zcache), Vantage
  and way-partitioning, shared-LRU occupancy model, scheme descriptors.
* :mod:`repro.monitor` — miss curves, UMONs, MLP profiler, counters.
* :mod:`repro.server` — FIFO queueing and tail-latency metrics.
* :mod:`repro.experiments` — one module per paper table/figure.
"""

from ._version import __version__
from .core import UbikPolicy
from .monitor import MissCurve
from .policies import (
    FixedPolicy,
    LRUPolicy,
    OnOffPolicy,
    StaticLCPolicy,
    UCPPolicy,
)
from .runtime import (
    MixRef,
    PolicySpec,
    ResultStore,
    RunRecord,
    RunSpec,
    SchemeSpec,
    Session,
    ShardSpec,
    list_policies,
    list_schemes,
    make_policy,
    make_scheme,
)
from .sim import CMPConfig, CoreKind, MixRunner, MixResult, westmere_config
from .workloads import (
    HIGH_LOAD,
    LC_NAMES,
    LOW_LOAD,
    LCWorkload,
    MixSpec,
    all_lc_workloads,
    make_lc_workload,
    make_mix_specs,
)

__all__ = [
    "UbikPolicy",
    "LRUPolicy",
    "UCPPolicy",
    "StaticLCPolicy",
    "OnOffPolicy",
    "FixedPolicy",
    "MissCurve",
    "CMPConfig",
    "CoreKind",
    "westmere_config",
    "MixRunner",
    "MixResult",
    "LC_NAMES",
    "LOW_LOAD",
    "HIGH_LOAD",
    "LCWorkload",
    "MixSpec",
    "all_lc_workloads",
    "make_lc_workload",
    "make_mix_specs",
    "Session",
    "RunSpec",
    "RunRecord",
    "MixRef",
    "PolicySpec",
    "SchemeSpec",
    "ShardSpec",
    "ResultStore",
    "make_policy",
    "list_policies",
    "make_scheme",
    "list_schemes",
    "__version__",
]
