"""Content-addressed, per-process cache of intermediate artifacts.

A sweep grid — lc × load × policy — re-derives an enormous amount of
state that is *identical across cells*: every policy at a given
(lc, load) replays the same request streams, normalizes against the
same isolated baseline, and rebuilds the same workload, core-model and
miss-curve objects.  The :class:`~repro.runtime.store.ResultStore`
deduplicates finished *results* across processes; this module
deduplicates the *intermediate products* within a process, so each
distinct sub-computation happens exactly once per process no matter how
many grid cells need it.

What is cached, and how it is keyed (the full map also lives in
``docs/ARCHITECTURE.md``):

``stream``
    Synthesized ``(arrivals, works)`` request streams, keyed by the
    content signature of everything :meth:`~repro.sim.mix_runner.MixRunner.stream`
    consumes — workload signature (name, target lines, work
    distribution, profile, miss ratio at target), load, instance,
    request count, seed, and the full
    :func:`~repro.runtime.spec.config_fingerprint`.  Cached arrays are
    frozen read-only: sharing is safe because every consumer only reads.
``baseline``
    Computed/parsed :class:`~repro.sim.mix_runner.BaselineResult`
    pools, keyed by the existing
    :class:`~repro.runtime.spec.BaselineSpec` fingerprint.  This is the
    layer that lets a long-lived worker serve a baseline to every spec
    in a batch without re-simulating or re-parsing it.
``baseline_parse``
    Counter-only kind: :meth:`~repro.runtime.store.ResultStore.get_baseline`
    reports its per-store parse-memo hits/misses here, so
    ``repro cache --stats`` sees how often JSON re-parsing was skipped.
``core_model``
    Analytic core models keyed by ``(kind, mem_latency_cycles)``.
``lc_workload`` / ``batch_mix``
    Workload objects (LC models with their miss curves, and the random
    three-app batch trios) keyed by their deterministic construction
    inputs — ``(lc_name, target_mb)`` and ``(combo, mix_seed)``.  All
    are frozen dataclasses, so sharing one instance across specs is
    safe by construction.

Process-lifetime rules: the cache is a module-level singleton
(:func:`get_artifacts`) that lives for the process — executor workers
warm it across every spec they evaluate in a batch
(:func:`~repro.runtime.work.execute_in_worker` relies on this).  Keys
are pure content signatures derived from spec data, never object
identity, so two specs that rebuild the same inputs share one entry.
Entries are immutable (frozen dataclasses, read-only arrays) and the
key space is bounded by the distinct sub-computations of the grid, so
no eviction policy is needed.  Set ``REPRO_ARTIFACTS=0`` to disable the
layer entirely — results are byte-identical either way, which
``tests/golden/test_artifact_golden.py`` pins store-tree-for-store-tree.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import fields, is_dataclass
from functools import lru_cache
from typing import Any, Callable, Dict, Hashable, Iterator, Optional

__all__ = [
    "ArtifactCache",
    "get_artifacts",
    "reset_artifacts",
    "artifacts_enabled",
    "config_key",
    "workload_key",
    "stream_key",
]

#: Environment toggle: ``0``/``off``/``false``/``no`` disables the layer.
_ENV_TOGGLE = "REPRO_ARTIFACTS"


def artifacts_enabled() -> bool:
    """Whether the environment enables the artifact layer (default on)."""
    toggle = os.environ.get(_ENV_TOGGLE, "").strip().lower()
    return toggle not in ("0", "off", "false", "no")


class ArtifactCache:
    """A per-process map of (kind, content key) → immutable artifact.

    ``kind`` namespaces the key space (``"stream"``, ``"baseline"``, …)
    and buckets the hit/miss counters that ``repro cache --stats``
    reports.  ``enabled=None`` (the default) follows the
    ``REPRO_ARTIFACTS`` environment toggle dynamically; an explicit
    boolean pins it (tests and the bench harness use this).

    When disabled, :meth:`get` always misses without counting and
    :meth:`put` drops the value, so callers need no branches: the
    surrounding code behaves exactly as if the layer did not exist.
    """

    def __init__(self, enabled: Optional[bool] = None):
        self._enabled = enabled
        self._entries: Dict[str, Dict[Hashable, Any]] = {}
        self._hits: Dict[str, int] = {}
        self._misses: Dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        """Effective on/off state (explicit flag, else the environment)."""
        if self._enabled is not None:
            return self._enabled
        return artifacts_enabled()

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def get(self, kind: str, key: Hashable) -> Optional[Any]:
        """The cached artifact, or ``None`` (counts a hit or a miss)."""
        if not self.enabled:
            return None
        bucket = self._entries.get(kind)
        value = bucket.get(key) if bucket is not None else None
        self.count(kind, hit=value is not None)
        return value

    def put(self, kind: str, key: Hashable, value: Any) -> None:
        """Cache one artifact (a no-op when the layer is disabled)."""
        if not self.enabled:
            return
        self._entries.setdefault(kind, {})[key] = value

    def get_or_make(
        self, kind: str, key: Hashable, build: Callable[[], Any]
    ) -> Any:
        """Serve a cached artifact, else build, cache, and return it."""
        if not self.enabled:
            return build()
        bucket = self._entries.setdefault(kind, {})
        value = bucket.get(key)
        if value is not None:
            self.count(kind, hit=True)
            return value
        self.count(kind, hit=False)
        value = build()
        bucket[key] = value
        return value

    def count(self, kind: str, hit: bool) -> None:
        """Record an external hit/miss under ``kind`` (counters only).

        Lets memos that live elsewhere — e.g. the store's baseline
        parse memo — surface through the same ``repro cache --stats``
        report without moving their storage here.
        """
        if not self.enabled:
            return
        counters = self._hits if hit else self._misses
        counters[kind] = counters.get(kind, 0) + 1

    def invalidate(self, kind: str, key: Hashable) -> None:
        """Drop one entry (a no-op when absent)."""
        bucket = self._entries.get(kind)
        if bucket is not None:
            bucket.pop(key, None)

    def clear(self) -> None:
        """Drop every entry and reset every counter."""
        self._entries.clear()
        self._hits.clear()
        self._misses.clear()

    @contextmanager
    def pinned(self, enabled: bool) -> Iterator[None]:
        """Temporarily pin the layer on or off, environment ignored.

        The bench harness pins its warm arm *on* and its cold arm
        *off* so the recorded comparison measures the cache, not
        whatever ``REPRO_ARTIFACTS`` happens to be set to.
        """
        previous = self._enabled
        self._enabled = enabled
        try:
            yield
        finally:
            self._enabled = previous

    def disabled(self):
        """Temporarily pin the layer off (``pinned(False)`` sugar)."""
        return self.pinned(False)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Per-kind hit/miss/entry counts for ``repro cache --stats``."""
        kinds = sorted(
            set(self._entries) | set(self._hits) | set(self._misses)
        )
        return {
            "enabled": self.enabled,
            "entries": sum(len(b) for b in self._entries.values()),
            "kinds": {
                kind: {
                    "hits": self._hits.get(kind, 0),
                    "misses": self._misses.get(kind, 0),
                    "entries": len(self._entries.get(kind, ())),
                }
                for kind in kinds
            },
        }


#: The process-wide singleton; workers warm it across a whole batch.
_ARTIFACTS = ArtifactCache()


def get_artifacts() -> ArtifactCache:
    """The process-wide artifact cache."""
    return _ARTIFACTS


def reset_artifacts() -> None:
    """Drop every cached artifact and counter (tests and benchmarks)."""
    _ARTIFACTS.clear()


# ----------------------------------------------------------------------
# Content keys
# ----------------------------------------------------------------------
def _value_signature(value: Any) -> Hashable:
    """A hashable content signature for spec-ish values.

    Frozen dataclasses (work distributions, profiles) flatten to nested
    ``(type, (field, signature), …)`` tuples; tuples/lists recurse.
    Anything else is kept as-is, which degrades gracefully: an opaque
    unhashable object would fail loudly rather than alias, and an
    identity-hashed object merely shares less.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return (type(value).__name__,) + tuple(
            (f.name, _value_signature(getattr(value, f.name)))
            for f in fields(value)
        )
    if isinstance(value, (tuple, list)):
        return tuple(_value_signature(v) for v in value)
    return value


@lru_cache(maxsize=256)
def config_key(config) -> str:
    """Memoized :func:`~repro.runtime.spec.config_fingerprint`.

    :class:`~repro.sim.config.CMPConfig` is frozen and hashable, so the
    fingerprint — an ``asdict`` + canonical-JSON + SHA-256 walk — is
    paid once per distinct config instead of once per stream.
    """
    from .spec import config_fingerprint

    return config_fingerprint(config)


@lru_cache(maxsize=256)
def workload_key(workload) -> Hashable:
    """Content signature of everything a request stream reads from an
    LC workload: its name (the stream's seed component), target
    allocation, per-request work distribution, execution profile, and
    the miss ratio at the target allocation (the only point of the
    miss curve that enters the mean service time).  Two separately
    built but identical workloads produce equal keys, so the cache is
    content-addressed rather than identity-addressed.
    """
    return (
        workload.name,
        int(workload.target_lines),
        _value_signature(workload.work),
        _value_signature(workload.profile),
        float(workload.miss_curve(workload.target_lines)),
    )


def stream_key(
    workload, load: float, instance: int, requests: int, seed: int, config
) -> Hashable:
    """The ``stream`` artifact key for one LC instance's request stream."""
    return (
        workload_key(workload),
        float(load),
        int(instance),
        int(requests),
        int(seed),
        config_key(config),
    )
