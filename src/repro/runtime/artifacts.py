"""Content-addressed, per-process cache of intermediate artifacts.

A sweep grid — lc × load × policy — re-derives an enormous amount of
state that is *identical across cells*: every policy at a given
(lc, load) replays the same request streams, normalizes against the
same isolated baseline, and rebuilds the same workload, core-model and
miss-curve objects.  The :class:`~repro.runtime.store.ResultStore`
deduplicates finished *results* across processes; this module
deduplicates the *intermediate products* within a process, so each
distinct sub-computation happens exactly once per process no matter how
many grid cells need it.

What is cached, and how it is keyed (the full map also lives in
``docs/ARCHITECTURE.md``):

``stream``
    Synthesized ``(arrivals, works)`` request streams, keyed by the
    content signature of everything :meth:`~repro.sim.mix_runner.MixRunner.stream`
    consumes — workload signature (name, target lines, work
    distribution, profile, miss ratio at target), load, instance,
    request count, seed, and the full
    :func:`~repro.runtime.spec.config_fingerprint`.  Cached arrays are
    frozen read-only: sharing is safe because every consumer only reads.
``baseline``
    Computed/parsed :class:`~repro.sim.mix_runner.BaselineResult`
    pools, keyed by the existing
    :class:`~repro.runtime.spec.BaselineSpec` fingerprint.  This is the
    layer that lets a long-lived worker serve a baseline to every spec
    in a batch without re-simulating or re-parsing it.
``baseline_parse``
    Counter-only kind: :meth:`~repro.runtime.store.ResultStore.get_baseline`
    reports its per-store parse-memo hits/misses here, so
    ``repro cache --stats`` sees how often JSON re-parsing was skipped.
``core_model``
    Analytic core models keyed by ``(kind, mem_latency_cycles)``.
``lc_workload`` / ``batch_mix``
    Workload objects (LC models with their miss curves, and the random
    three-app batch trios) keyed by their deterministic construction
    inputs — ``(lc_name, target_mb)`` and ``(combo, mix_seed)``.  All
    are frozen dataclasses, so sharing one instance across specs is
    safe by construction.

Process-lifetime rules: the cache is a module-level singleton
(:func:`get_artifacts`) that lives for the process — executor workers
warm it across every spec they evaluate in a batch
(:func:`~repro.runtime.work.execute_in_worker` relies on this).  Keys
are pure content signatures derived from spec data, never object
identity, so two specs that rebuild the same inputs share one entry.
Entries are immutable (frozen dataclasses, read-only arrays) and the
key space is bounded by the distinct sub-computations of the grid, so
no eviction policy is needed.  Set ``REPRO_ARTIFACTS=0`` to disable the
layer entirely — results are byte-identical either way, which
``tests/golden/test_artifact_golden.py`` pins store-tree-for-store-tree.

**Tier 2 — the persistent artifact tier.**  The in-process dictionary
is tier 1: it dies with the process, so every fresh run re-synthesizes
every stream and re-simulates every baseline at least once.
``REPRO_ARTIFACTS_TIER2`` adds a persistent tier below it, backed by
the *blob side* of any store backend (``1``/``on`` places it next to
the default result store; any path or ``sqlite://``/``directory://``
URL names a location explicitly — a fleet can point every machine at
one shared corpus).  Only the expensive, exactly-serializable kinds
persist — ``stream`` (NumPy ``savez`` round-trip, bit-exact float64)
and ``baseline`` (canonical JSON) — keyed by the content fingerprint
of their tier-1 key.  Reads promote into tier 1; writes go straight
through; a disabled cache (``REPRO_ARTIFACTS=0``) bypasses tier 2
entirely, so the cache-off byte-parity arm is untouched.
"""

from __future__ import annotations

import io
import json
import os
from contextlib import contextmanager
from dataclasses import fields, is_dataclass
from functools import lru_cache
from typing import Any, Callable, Dict, Hashable, Iterator, Optional, Tuple

__all__ = [
    "ArtifactCache",
    "get_artifacts",
    "reset_artifacts",
    "artifacts_enabled",
    "artifacts_tier2_target",
    "config_key",
    "workload_key",
    "stream_key",
]

#: Environment toggle: ``0``/``off``/``false``/``no`` disables the layer.
_ENV_TOGGLE = "REPRO_ARTIFACTS"

#: Environment knob for the persistent tier: off-token, ``1``/``on``
#: (meaning "next to the default store"), a path, or a backend URL.
_ENV_TIER2 = "REPRO_ARTIFACTS_TIER2"


def artifacts_enabled() -> bool:
    """Whether the environment enables the artifact layer (default on)."""
    toggle = os.environ.get(_ENV_TOGGLE, "").strip().lower()
    return toggle not in ("0", "off", "false", "no")


def artifacts_tier2_target() -> Optional[str]:
    """Where the persistent artifact tier lives, per the environment.

    ``REPRO_ARTIFACTS_TIER2`` unset (or an off-token) disables the
    tier; ``1``/``on``/``true``/``yes`` places it beside the default
    result store (``<store root>-artifacts``); anything else is taken
    verbatim — a directory path or a ``scheme://location`` backend URL.
    """
    raw = os.environ.get(_ENV_TIER2, "").strip()
    if not raw or raw.lower() in ("0", "off", "false", "no"):
        return None
    if raw.lower() in ("1", "on", "true", "yes"):
        from .store import default_store_root

        root = default_store_root()
        if root is None:
            return None
        return f"{root}-artifacts"
    return raw


# ----------------------------------------------------------------------
# Tier-2 codecs
# ----------------------------------------------------------------------
# Only kinds with an *exact* byte round-trip persist: serving a stream
# or baseline from tier 2 must be indistinguishable — bit for bit —
# from recomputing it, or the byte-parity contract on store documents
# would silently break across process restarts.  Object kinds
# (workloads, core models) are cheap to rebuild and stay tier-1-only.


def _encode_stream(value: Tuple[Any, Any]) -> bytes:
    """``(arrivals, works)`` → an in-memory ``.npz`` archive.

    ``np.savez`` stores raw float64 buffers, so the decode side returns
    arrays bit-identical to what the synthesizer produced.
    """
    import numpy as np

    arrivals, works = value
    buffer = io.BytesIO()
    np.savez(buffer, arrivals=np.asarray(arrivals), works=np.asarray(works))
    return buffer.getvalue()


def _decode_stream(payload: bytes) -> Tuple[Any, Any]:
    """An ``.npz`` archive back to frozen ``(arrivals, works)`` arrays."""
    import numpy as np

    with np.load(io.BytesIO(payload)) as archive:
        arrivals = archive["arrivals"]
        works = archive["works"]
    # Same freeze as the synthesizer: tier-2-served streams are shared
    # across runs, so mutation must fail loudly.
    arrivals.flags.writeable = False
    works.flags.writeable = False
    return arrivals, works


def _encode_baseline(value: Any) -> bytes:
    """A ``BaselineResult`` → canonical-JSON bytes (the store's own
    baseline document shape, minus the envelope)."""
    from .spec import canonical_json

    return canonical_json(
        {
            "tail95_cycles": value.tail95_cycles,
            "p95_cycles": value.p95_cycles,
            "latencies": list(value.latencies),
        }
    ).encode("utf-8")


def _decode_baseline(payload: bytes) -> Any:
    """Canonical-JSON bytes back to a ``BaselineResult``."""
    from ..sim.mix_runner import BaselineResult

    doc = json.loads(payload.decode("utf-8"))
    return BaselineResult(
        tail95_cycles=doc["tail95_cycles"],
        p95_cycles=doc["p95_cycles"],
        latencies=tuple(doc["latencies"]),
    )


#: kind → (encode, decode); absence means the kind never persists.
_TIER2_CODECS: Dict[str, Tuple[Callable[[Any], bytes], Callable[[bytes], Any]]] = {
    "stream": (_encode_stream, _decode_stream),
    "baseline": (_encode_baseline, _decode_baseline),
}


class ArtifactCache:
    """A per-process map of (kind, content key) → immutable artifact.

    ``kind`` namespaces the key space (``"stream"``, ``"baseline"``, …)
    and buckets the hit/miss counters that ``repro cache --stats``
    reports.  ``enabled=None`` (the default) follows the
    ``REPRO_ARTIFACTS`` environment toggle dynamically; an explicit
    boolean pins it (tests and the bench harness use this).

    When disabled, :meth:`get` always misses without counting and
    :meth:`put` drops the value, so callers need no branches: the
    surrounding code behaves exactly as if the layer did not exist.
    """

    def __init__(self, enabled: Optional[bool] = None):
        self._enabled = enabled
        self._entries: Dict[str, Dict[Hashable, Any]] = {}
        self._hits: Dict[str, int] = {}
        self._misses: Dict[str, int] = {}
        # Persistent tier: the resolved target string and its backend
        # handle (lazily opened; re-resolved when the env knob moves).
        self._tier2_target: Optional[str] = None
        self._tier2_backend: Optional[Any] = None
        self._tier2_hits: Dict[str, int] = {}
        self._tier2_misses: Dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        """Effective on/off state (explicit flag, else the environment)."""
        if self._enabled is not None:
            return self._enabled
        return artifacts_enabled()

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def get(self, kind: str, key: Hashable) -> Optional[Any]:
        """The cached artifact, or ``None`` (counts a hit or a miss).

        A tier-1 miss (counted as a miss either way, so the existing
        per-process counters keep their meaning) falls through to the
        persistent tier when one is configured; tier-2 hits are
        promoted into tier 1.
        """
        if not self.enabled:
            return None
        bucket = self._entries.get(kind)
        value = bucket.get(key) if bucket is not None else None
        self.count(kind, hit=value is not None)
        if value is None:
            value = self._tier2_get(kind, key)
            if value is not None:
                self._entries.setdefault(kind, {})[key] = value
        return value

    def put(self, kind: str, key: Hashable, value: Any) -> None:
        """Cache one artifact, writing through to the persistent tier
        (a no-op when the layer is disabled)."""
        if not self.enabled:
            return
        self._entries.setdefault(kind, {})[key] = value
        self._tier2_put(kind, key, value)

    def get_or_make(
        self, kind: str, key: Hashable, build: Callable[[], Any]
    ) -> Any:
        """Serve a cached artifact, else build, cache, and return it.

        The persistent tier is probed between the tier-1 miss and the
        build — a fresh process inheriting a warm tier 2 skips the
        expensive synthesis entirely — and freshly built artifacts
        write through so the *next* process skips it too.
        """
        if not self.enabled:
            return build()
        bucket = self._entries.setdefault(kind, {})
        value = bucket.get(key)
        if value is not None:
            self.count(kind, hit=True)
            return value
        self.count(kind, hit=False)
        value = self._tier2_get(kind, key)
        if value is not None:
            bucket[key] = value
            return value
        value = build()
        bucket[key] = value
        self._tier2_put(kind, key, value)
        return value

    def count(self, kind: str, hit: bool) -> None:
        """Record an external hit/miss under ``kind`` (counters only).

        Lets memos that live elsewhere — e.g. the store's baseline
        parse memo — surface through the same ``repro cache --stats``
        report without moving their storage here.
        """
        if not self.enabled:
            return
        counters = self._hits if hit else self._misses
        counters[kind] = counters.get(kind, 0) + 1

    # ------------------------------------------------------------------
    # Tier 2 (persistent, best-effort)
    # ------------------------------------------------------------------
    def _tier2(self) -> Optional[Any]:
        """The persistent tier's backend, or ``None`` when disabled.

        Resolved lazily from :func:`artifacts_tier2_target` and
        re-resolved whenever the environment knob changes (tests — and
        long-lived drivers — repoint it between runs).
        """
        target = artifacts_tier2_target()
        if target is None:
            return None
        if self._tier2_backend is None or target != self._tier2_target:
            from .backends import make_backend

            if self._tier2_backend is not None:
                self._tier2_backend.close()
            self._tier2_backend = make_backend(target)
            self._tier2_target = target
        return self._tier2_backend

    @staticmethod
    def _tier2_key(kind: str, key: Hashable) -> Optional[str]:
        """Content-addressed blob key for one artifact, or ``None``
        for keys that don't serialize (those stay tier-1-only)."""
        from .spec import fingerprint_payload

        try:
            return fingerprint_payload(["artifact", kind, key])
        except (TypeError, ValueError):
            return None

    def _tier2_get(self, kind: str, key: Hashable) -> Optional[Any]:
        """Probe the persistent tier (counts a tier-2 hit or miss)."""
        codec = _TIER2_CODECS.get(kind)
        if codec is None:
            return None
        backend = self._tier2()
        if backend is None:
            return None
        blob_key = self._tier2_key(kind, key)
        if blob_key is None:
            return None
        payload = backend.get_blob(blob_key)
        value = None
        if payload is not None:
            try:
                value = codec[1](payload)
            except Exception:
                value = None  # corrupt/foreign blob: treat as a miss
        counters = self._tier2_hits if value is not None else self._tier2_misses
        counters[kind] = counters.get(kind, 0) + 1
        return value

    def _tier2_put(self, kind: str, key: Hashable, value: Any) -> None:
        """Write one artifact through to the persistent tier.

        Best-effort by design: a full disk or unwritable location
        degrades to tier-1-only behaviour rather than failing the run.
        """
        codec = _TIER2_CODECS.get(kind)
        if codec is None:
            return
        backend = self._tier2()
        if backend is None:
            return
        blob_key = self._tier2_key(kind, key)
        if blob_key is None:
            return
        try:
            backend.put_blob(blob_key, codec[0](value))
        except Exception:
            pass

    def invalidate(self, kind: str, key: Hashable) -> None:
        """Drop one entry (a no-op when absent)."""
        bucket = self._entries.get(kind)
        if bucket is not None:
            bucket.pop(key, None)

    def clear(self) -> None:
        """Drop every tier-1 entry and reset every counter.

        The persistent tier's *data* is left alone — it is
        content-addressed, so stale entries are impossible — but its
        handle and counters reset, so a repointed
        ``REPRO_ARTIFACTS_TIER2`` takes effect immediately.
        """
        self._entries.clear()
        self._hits.clear()
        self._misses.clear()
        self._tier2_hits.clear()
        self._tier2_misses.clear()
        if self._tier2_backend is not None:
            self._tier2_backend.close()
        self._tier2_backend = None
        self._tier2_target = None

    @contextmanager
    def pinned(self, enabled: bool) -> Iterator[None]:
        """Temporarily pin the layer on or off, environment ignored.

        The bench harness pins its warm arm *on* and its cold arm
        *off* so the recorded comparison measures the cache, not
        whatever ``REPRO_ARTIFACTS`` happens to be set to.
        """
        previous = self._enabled
        self._enabled = enabled
        try:
            yield
        finally:
            self._enabled = previous

    def disabled(self):
        """Temporarily pin the layer off (``pinned(False)`` sugar)."""
        return self.pinned(False)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Per-kind hit/miss/entry counts for ``repro cache --stats``.

        The ``tier2`` section reports the persistent tier: whether one
        is configured, its backend URL, and per-kind hit/miss counters
        (hits there are syntheses this process never had to run).
        """
        kinds = sorted(
            set(self._entries) | set(self._hits) | set(self._misses)
        )
        tier2_backend = self._tier2()
        tier2_kinds = sorted(set(self._tier2_hits) | set(self._tier2_misses))
        return {
            "enabled": self.enabled,
            "entries": sum(len(b) for b in self._entries.values()),
            "kinds": {
                kind: {
                    "hits": self._hits.get(kind, 0),
                    "misses": self._misses.get(kind, 0),
                    "entries": len(self._entries.get(kind, ())),
                }
                for kind in kinds
            },
            "tier2": {
                "enabled": tier2_backend is not None,
                "url": tier2_backend.url if tier2_backend is not None else None,
                "kinds": {
                    kind: {
                        "hits": self._tier2_hits.get(kind, 0),
                        "misses": self._tier2_misses.get(kind, 0),
                    }
                    for kind in tier2_kinds
                },
            },
        }


#: The process-wide singleton; workers warm it across a whole batch.
_ARTIFACTS = ArtifactCache()


def get_artifacts() -> ArtifactCache:
    """The process-wide artifact cache."""
    return _ARTIFACTS


def reset_artifacts() -> None:
    """Drop every cached artifact and counter (tests and benchmarks)."""
    _ARTIFACTS.clear()


# ----------------------------------------------------------------------
# Content keys
# ----------------------------------------------------------------------
def _value_signature(value: Any) -> Hashable:
    """A hashable content signature for spec-ish values.

    Frozen dataclasses (work distributions, profiles) flatten to nested
    ``(type, (field, signature), …)`` tuples; tuples/lists recurse.
    Anything else is kept as-is, which degrades gracefully: an opaque
    unhashable object would fail loudly rather than alias, and an
    identity-hashed object merely shares less.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return (type(value).__name__,) + tuple(
            (f.name, _value_signature(getattr(value, f.name)))
            for f in fields(value)
        )
    if isinstance(value, (tuple, list)):
        return tuple(_value_signature(v) for v in value)
    return value


@lru_cache(maxsize=256)
def config_key(config) -> str:
    """Memoized :func:`~repro.runtime.spec.config_fingerprint`.

    :class:`~repro.sim.config.CMPConfig` is frozen and hashable, so the
    fingerprint — an ``asdict`` + canonical-JSON + SHA-256 walk — is
    paid once per distinct config instead of once per stream.
    """
    from .spec import config_fingerprint

    return config_fingerprint(config)


@lru_cache(maxsize=256)
def workload_key(workload) -> Hashable:
    """Content signature of everything a request stream reads from an
    LC workload: its name (the stream's seed component), target
    allocation, per-request work distribution, execution profile, and
    the miss ratio at the target allocation (the only point of the
    miss curve that enters the mean service time).  Two separately
    built but identical workloads produce equal keys, so the cache is
    content-addressed rather than identity-addressed.
    """
    return (
        workload.name,
        int(workload.target_lines),
        _value_signature(workload.work),
        _value_signature(workload.profile),
        float(workload.miss_curve(workload.target_lines)),
    )


def stream_key(
    workload, load: float, instance: int, requests: int, seed: int, config
) -> Hashable:
    """The ``stream`` artifact key for one LC instance's request stream."""
    return (
        workload_key(workload),
        float(load),
        int(instance),
        int(requests),
        int(seed),
        config_key(config),
    )
