"""Spec evaluation primitives shared by the session and the scheduler.

Both the :class:`~repro.runtime.session.Session` executor path and the
:class:`~repro.runtime.scheduler.SpecScheduler` need the same four
operations on a unit of work — a :class:`~repro.runtime.spec.RunSpec`
or any :class:`~repro.runtime.spec.TaskSpec`:

* :func:`store_lookup` — fingerprint it and probe the store (a hit
  never occupies a worker),
* :func:`execute_spec` — evaluate it in-process, store-aware,
* :func:`execute_in_worker` — the picklable process-pool entry point
  (per-process store handles so workers share warmed baselines),
* :func:`adopt` — adapt a shared result to the requesting spec (two
  specs differing only in display label share one computation).

Keeping them here, below the session facade, lets the scheduler stream
work without importing the session (and vice versa).

Every unit of work the runtime knows — sweep :class:`RunSpec`\\ s,
scaleout/bandwidth tasks, and the
:class:`~repro.runtime.sharding.ShardSpec` slices of a sharded run —
flows through these four functions, which is what makes new spec kinds
cheap: implement :meth:`TaskSpec.compute` and every executor, the
scheduler, the store, and the CLI handle it with no further wiring.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from ..sim.mix_runner import MixRunner
from .spec import RunRecord, RunSpec, TaskSpec
from .store import ResultStore

__all__ = [
    "record_from_result",
    "execute_spec",
    "execute_in_worker",
    "store_lookup",
    "adopt",
    "cache_result",
]


def record_from_result(
    result, policy_label: str, lc_name: str, load_label: str
) -> RunRecord:
    """One sweep :class:`RunRecord` from a :class:`MixResult`.

    The single place the record's metrics are derived, shared by the
    declarative path (:func:`execute_spec`) and the legacy factory
    path in :mod:`repro.experiments.sweep`, so the two stay
    record-for-record identical as fields are added.
    """
    return RunRecord(
        mix_id=result.mix_id,
        lc_name=lc_name,
        load_label=load_label,
        policy=policy_label,
        tail_degradation=result.tail_degradation(),
        weighted_speedup=result.weighted_speedup(),
        lc_tail_cycles=result.tail95(),
        baseline_tail_cycles=result.baseline_tail_cycles,
        deboosts=sum(i.deboosts for i in result.lc_instances),
        watermarks=sum(i.watermarks for i in result.lc_instances),
    )


def _execute_run_spec(spec: RunSpec, store: Optional[ResultStore]) -> RunRecord:
    """Evaluate one sweep spec: rebuild the mix, simulate, persist."""
    fingerprint = spec.fingerprint()
    if store is not None:
        hit = store.get_record(fingerprint)
        if hit is not None:
            return hit.relabeled(spec.policy.display)
    config = spec.config()
    runner = MixRunner(
        config=config,
        requests=spec.requests,
        seed=spec.seed,
        umon_noise=spec.umon_noise,
        warmup_fraction=spec.warmup_fraction,
        store=store,
    )
    mix = spec.mix.build()
    scheme = spec.scheme.build(config.llc_lines) if spec.scheme else None
    result = runner.run_mix(mix, spec.policy.build(), scheme=scheme)
    record = record_from_result(
        result,
        policy_label=spec.policy.display,
        lc_name=mix.lc_workload.name,
        load_label=mix.load_label,
    )
    if store is not None:
        store.put_record(fingerprint, record)
    return record


def execute_spec(spec, store: Optional[ResultStore] = None):
    """Evaluate one spec of any kind (store-aware, deterministic).

    On a store hit the stored result is returned (sweep records
    relabeled to the spec's display label); otherwise the work is
    rebuilt from the spec, computed, and persisted before returning.
    """
    if isinstance(spec, RunSpec):
        return _execute_run_spec(spec, store)
    if isinstance(spec, TaskSpec):
        return spec.execute(store)
    raise TypeError(f"cannot execute {type(spec).__name__}: not a spec")


def store_lookup(spec, store: Optional[ResultStore]) -> Tuple[str, Optional[Any]]:
    """(fingerprint, stored result or ``None``) for any spec kind."""
    if isinstance(spec, RunSpec):
        fingerprint = spec.fingerprint()
        if store is None:
            return fingerprint, None
        hit = store.get_record(fingerprint)
        return fingerprint, (
            hit.relabeled(spec.policy.display) if hit is not None else None
        )
    if isinstance(spec, TaskSpec):
        return spec.fingerprint(), spec.lookup(store)
    raise TypeError(f"cannot look up {type(spec).__name__}: not a spec")


def adopt(spec, result):
    """Adapt a result computed for a fingerprint-equal spec.

    Sweep records carry a display label that is excluded from the
    fingerprint, so a deduplicated computation must be relabeled for
    each requesting spec; task results are shared as-is.
    """
    if isinstance(spec, RunSpec) and isinstance(result, RunRecord):
        return result.relabeled(spec.policy.display)
    return result


def cache_result(spec, store: ResultStore, fingerprint: str, result) -> None:
    """Warm the parent store's memory layer after a worker computed
    (and persisted) a result in another process — no second disk write."""
    if isinstance(spec, RunSpec) and isinstance(result, RunRecord):
        store.cache_record(fingerprint, result)
    elif isinstance(spec, TaskSpec):
        store.cache_doc(
            fingerprint, {"kind": spec.kind, "result": spec.encode(result)}
        )


#: Per-process store handles, keyed by the share target — a backend
#: URL or bare path (None = memory-only).  Reusing one handle across
#: the specs a worker evaluates lets its in-memory layer share
#: isolated baselines between specs — matching the old shared-
#: MixRunner behaviour even with the disk layer off — and, for the
#: sqlite engine, keeps one per-process connection alive for the
#: whole batch.
_WORKER_STORES: dict = {}


def execute_in_worker(spec, store_target: Optional[str]):
    """Module-level worker entry point (picklable for process pools).

    Two layers of worker-warm state survive across the specs a process
    evaluates in a batch: the per-root store handle below (parsed
    documents, baselines fetched from disk) and the process-wide
    artifact cache (:mod:`repro.runtime.artifacts` — synthesized
    streams, computed baselines, workload/core-model objects), which
    every :class:`~repro.sim.mix_runner.MixRunner` the spec evaluation
    builds consults automatically.  Together they make a worker
    evaluate each distinct sub-computation once per process, not once
    per spec.
    """
    store = _WORKER_STORES.get(store_target)
    if store is None:
        store = ResultStore(store_target)
        _WORKER_STORES[store_target] = store
    return execute_spec(spec, store)
