"""Spec evaluation primitives shared by the session and the scheduler.

Both the :class:`~repro.runtime.session.Session` executor path and the
:class:`~repro.runtime.scheduler.SpecScheduler` need the same four
operations on a unit of work — a :class:`~repro.runtime.spec.RunSpec`
or any :class:`~repro.runtime.spec.TaskSpec`:

* :func:`store_lookup` — fingerprint it and probe the store (a hit
  never occupies a worker),
* :func:`execute_spec` — evaluate it in-process, store-aware,
* :func:`execute_in_worker` — the picklable process-pool entry point
  (per-process store handles so workers share warmed baselines),
* :func:`adopt` — adapt a shared result to the requesting spec (two
  specs differing only in display label share one computation).

Keeping them here, below the session facade, lets the scheduler stream
work without importing the session (and vice versa).

Every unit of work the runtime knows — sweep :class:`RunSpec`\\ s,
scaleout/bandwidth tasks, and the
:class:`~repro.runtime.sharding.ShardSpec` slices of a sharded run —
flows through these four functions, which is what makes new spec kinds
cheap: implement :meth:`TaskSpec.compute` and every executor, the
scheduler, the store, and the CLI handle it with no further wiring.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ..sim.grid_replay import grid_replay_enabled, plan_groups
from ..sim.mix_runner import MixRunner
from .spec import RunRecord, RunSpec, TaskSpec
from .store import ResultStore

__all__ = [
    "record_from_result",
    "execute_spec",
    "execute_specs",
    "execute_in_worker",
    "store_lookup",
    "adopt",
    "cache_result",
]


def record_from_result(
    result, policy_label: str, lc_name: str, load_label: str
) -> RunRecord:
    """One sweep :class:`RunRecord` from a :class:`MixResult`.

    The single place the record's metrics are derived, shared by the
    declarative path (:func:`execute_spec`) and the legacy factory
    path in :mod:`repro.experiments.sweep`, so the two stay
    record-for-record identical as fields are added.
    """
    return RunRecord(
        mix_id=result.mix_id,
        lc_name=lc_name,
        load_label=load_label,
        policy=policy_label,
        tail_degradation=result.tail_degradation(),
        weighted_speedup=result.weighted_speedup(),
        lc_tail_cycles=result.tail95(),
        baseline_tail_cycles=result.baseline_tail_cycles,
        deboosts=sum(i.deboosts for i in result.lc_instances),
        watermarks=sum(i.watermarks for i in result.lc_instances),
    )


def _execute_run_spec(spec: RunSpec, store: Optional[ResultStore]) -> RunRecord:
    """Evaluate one sweep spec: rebuild the mix, simulate, persist."""
    fingerprint = spec.fingerprint()
    if store is not None:
        hit = store.get_record(fingerprint)
        if hit is not None:
            return hit.relabeled(spec.policy.display)
    config = spec.config()
    runner = MixRunner(
        config=config,
        requests=spec.requests,
        seed=spec.seed,
        umon_noise=spec.umon_noise,
        warmup_fraction=spec.warmup_fraction,
        store=store,
    )
    mix = spec.mix.build()
    scheme = spec.scheme.build(config.llc_lines) if spec.scheme else None
    result = runner.run_mix(mix, spec.policy.build(), scheme=scheme)
    record = record_from_result(
        result,
        policy_label=spec.policy.display,
        lc_name=mix.lc_workload.name,
        load_label=mix.load_label,
    )
    if store is not None:
        store.put_record(fingerprint, record)
    return record


def execute_spec(spec, store: Optional[ResultStore] = None):
    """Evaluate one spec of any kind (store-aware, deterministic).

    On a store hit the stored result is returned (sweep records
    relabeled to the spec's display label); otherwise the work is
    rebuilt from the spec, computed, and persisted before returning.
    """
    if isinstance(spec, RunSpec):
        return _execute_run_spec(spec, store)
    if isinstance(spec, TaskSpec):
        return spec.execute(store)
    raise TypeError(f"cannot execute {type(spec).__name__}: not a spec")


def _replay_group_key(spec: RunSpec) -> Tuple:
    """Everything two sweep cells must share to replay as one group.

    These are the group-planning rules of
    :mod:`repro.sim.grid_replay`: equal mix reference (hence equal
    streams and curves) and equal engine-visible run parameters.
    Policy and scheme deliberately stay out — differing decisions over
    shared state are what a group exists to compare.
    """
    return (
        spec.mix,
        spec.core_kind,
        spec.requests,
        spec.seed,
        spec.umon_noise,
        spec.warmup_fraction,
    )


def _execute_run_group(specs: Sequence[RunSpec], store: Optional[ResultStore]) -> List[RunRecord]:
    """Evaluate one replay group of sweep specs, in spec order.

    Per-spec behaviour matches :func:`_execute_run_spec` exactly —
    a store hit is served relabeled without simulating, a miss is
    simulated and persisted under its fingerprint, and when two specs
    in the batch share a fingerprint only the first simulates and
    persists (the second adopts its record relabeled, just as its
    sequential store probe would have) — so store trees stay
    byte-identical to ungrouped execution.  The only difference is
    *how* the misses simulate: all through one
    :meth:`~repro.sim.mix_runner.MixRunner.run_mix_group` call sharing
    a single replay-group context — which in turn advances the group
    through the lockstep SoA engine (:mod:`repro.sim.lockstep`) unless
    ``REPRO_LOCKSTEP=0`` pins the grouped per-cell loop; both are
    verified bit-identical to scalar ``run_mix``.
    """
    records: List[Optional[RunRecord]] = [None] * len(specs)
    pending: List[Tuple[int, RunSpec, str]] = []
    adopters: List[Tuple[int, RunSpec, str]] = []
    pending_fingerprints = set()
    for position, spec in enumerate(specs):
        fingerprint = spec.fingerprint()
        if fingerprint in pending_fingerprints:
            adopters.append((position, spec, fingerprint))
            continue
        if store is not None:
            hit = store.get_record(fingerprint)
            if hit is not None:
                records[position] = hit.relabeled(spec.policy.display)
                continue
        pending.append((position, spec, fingerprint))
        pending_fingerprints.add(fingerprint)
    if pending:
        first = pending[0][1]
        config = first.config()
        runner = MixRunner(
            config=config,
            requests=first.requests,
            seed=first.seed,
            umon_noise=first.umon_noise,
            warmup_fraction=first.warmup_fraction,
            store=store,
        )
        mix = first.mix.build()
        results = runner.run_mix_group(
            mix,
            [
                (
                    spec.policy.build(),
                    spec.scheme.build(config.llc_lines) if spec.scheme else None,
                )
                for __, spec, __fp in pending
            ],
        )
        computed = {}
        for (position, spec, fingerprint), result in zip(pending, results):
            record = record_from_result(
                result,
                policy_label=spec.policy.display,
                lc_name=mix.lc_workload.name,
                load_label=mix.load_label,
            )
            if store is not None:
                store.put_record(fingerprint, record)
            records[position] = record
            computed[fingerprint] = record
        for position, spec, fingerprint in adopters:
            records[position] = computed[fingerprint].relabeled(spec.policy.display)
    return records


def execute_specs(specs: Sequence[Any], store: Optional[ResultStore] = None) -> List[Any]:
    """Evaluate a batch of specs in-process, grouping sweep replays.

    Sweep :class:`RunSpec`\\ s are partitioned into replay groups (see
    :func:`_replay_group_key`) and each group executes through one
    shared :class:`~repro.sim.grid_replay.GroupShared` context; task
    specs — and everything, when ``REPRO_GRID_REPLAY`` is off —
    evaluate through plain :func:`execute_spec`.  Results come back in
    spec order either way, bit-identical to per-spec execution.
    """
    specs = list(specs)
    if not grid_replay_enabled():
        # Zero group-planning overhead when the toggle is off: no
        # group keys are derived and :func:`plan_groups` is never
        # called — ``REPRO_GRID_REPLAY=0`` restores plain per-spec
        # execution, cost included.
        return [execute_spec(spec, store) for spec in specs]
    results: List[Any] = [None] * len(specs)
    grouped_positions: List[int] = []
    for position, spec in enumerate(specs):
        if isinstance(spec, RunSpec):
            grouped_positions.append(position)
        else:
            results[position] = execute_spec(spec, store)
    if grouped_positions:
        keys = [_replay_group_key(specs[p]) for p in grouped_positions]
        for group in plan_groups(keys):
            members = [grouped_positions[g] for g in group]
            group_records = _execute_run_group([specs[p] for p in members], store)
            for position, record in zip(members, group_records):
                results[position] = record
    return results


def store_lookup(spec, store: Optional[ResultStore]) -> Tuple[str, Optional[Any]]:
    """(fingerprint, stored result or ``None``) for any spec kind."""
    if isinstance(spec, RunSpec):
        fingerprint = spec.fingerprint()
        if store is None:
            return fingerprint, None
        hit = store.get_record(fingerprint)
        return fingerprint, (
            hit.relabeled(spec.policy.display) if hit is not None else None
        )
    if isinstance(spec, TaskSpec):
        return spec.fingerprint(), spec.lookup(store)
    raise TypeError(f"cannot look up {type(spec).__name__}: not a spec")


def adopt(spec, result):
    """Adapt a result computed for a fingerprint-equal spec.

    Sweep records carry a display label that is excluded from the
    fingerprint, so a deduplicated computation must be relabeled for
    each requesting spec; task results are shared as-is.
    """
    if isinstance(spec, RunSpec) and isinstance(result, RunRecord):
        return result.relabeled(spec.policy.display)
    return result


def cache_result(spec, store: ResultStore, fingerprint: str, result) -> None:
    """Warm the parent store's memory layer after a worker computed
    (and persisted) a result in another process — no second disk write."""
    if isinstance(spec, RunSpec) and isinstance(result, RunRecord):
        store.cache_record(fingerprint, result)
    elif isinstance(spec, TaskSpec):
        store.cache_doc(
            fingerprint, {"kind": spec.kind, "result": spec.encode(result)}
        )


#: Per-process store handles, keyed by the share target — a backend
#: URL or bare path (None = memory-only).  Reusing one handle across
#: the specs a worker evaluates lets its in-memory layer share
#: isolated baselines between specs — matching the old shared-
#: MixRunner behaviour even with the disk layer off — and, for the
#: sqlite engine, keeps one per-process connection alive for the
#: whole batch.
_WORKER_STORES: dict = {}


def execute_in_worker(spec, store_target: Optional[str]):
    """Module-level worker entry point (picklable for process pools).

    Two layers of worker-warm state survive across the specs a process
    evaluates in a batch: the per-root store handle below (parsed
    documents, baselines fetched from disk) and the process-wide
    artifact cache (:mod:`repro.runtime.artifacts` — synthesized
    streams, computed baselines, workload/core-model objects), which
    every :class:`~repro.sim.mix_runner.MixRunner` the spec evaluation
    builds consults automatically.  Together they make a worker
    evaluate each distinct sub-computation once per process, not once
    per spec.
    """
    store = _WORKER_STORES.get(store_target)
    if store is None:
        store = ResultStore(store_target)
        _WORKER_STORES[store_target] = store
    return execute_spec(spec, store)
