"""Intra-run trace sharding: parallelize *inside* one mix run.

The executors and the :class:`~repro.runtime.scheduler.SpecScheduler`
fan a *grid* of specs across cores, but before this module a single
:class:`~repro.runtime.spec.RunSpec` still evaluated serially: three
isolated per-instance baseline simulations, then the joint six-app mix
replay, all in one worker.  Trace sharding splits the independent part
— the per-instance request streams — into :class:`ShardSpec`\\ s that
ride the existing serial/parallel/async machinery, and merges their
latency pools back deterministically so the final result is
**bit-identical** to the unsharded run.

What is (and is not) shardable
------------------------------

A mix run has two phases with very different coupling:

* **Isolated baselines** (one per LC instance): each instance is
  simulated *alone* at a fixed partition, with its own pre-drawn
  request stream (:meth:`~repro.sim.mix_runner.MixRunner.stream`, RNG
  seeded by ``(seed, workload, instance)``) and its own engine seed
  (``seed + instance``).  Instances share no state, so any subset can
  run in any process — this is the shardable work.
* **The joint mix replay**: the six apps interact through policy
  decisions, the shared batch-space integral, and one engine RNG, so
  it is a single sequential event timeline and stays one unit of work.

Determinism contract
--------------------

Sharded evaluation reproduces the serial path exactly because

1. every shard re-derives its request streams from the spec's seeds
   (nothing is split mid-stream — shards are whole instances),
2. shards are merged in **fixed instance-index order**, the same
   ``pooled.extend`` order :meth:`MixRunner.baseline` uses, and
3. the merged :class:`~repro.sim.mix_runner.BaselineResult` is stored
   under the *unsharded* baseline fingerprint, so the mix phase cannot
   tell how its baseline was produced.

Shard *documents* in the store record their topology (``shard_index``,
``num_shards``, covered ``instances``) while the shard phase runs —
serving crash resume and cross-spec dedup — and are reclaimed once
their merged baseline is persisted, so a sharded store ends up byte-
identical to an unsharded one.  Topology never enters the logical
run's fingerprint: rerunning with a different ``--shards`` hits the
same stored result, byte for byte.

Typical use goes through the session (or ``repro run --shards``)::

    >>> from repro.runtime import MixRef, PolicySpec, RunSpec
    >>> from repro.runtime.sharding import plan_shards
    >>> spec = RunSpec(mix=MixRef(lc_name="masstree", load=0.2, combo="nft"),
    ...                policy=PolicySpec.of("ubik", slack=0.05), requests=60)
    >>> [s.instances for s in plan_shards(spec, 2)]
    [(0, 1), (2,)]
    >>> plan_shards(spec, 8)[0].num_shards  # clamped to the instance count
    3
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import zip_longest
from typing import Any, ClassVar, Dict, List, Mapping, Sequence, Tuple, Union

from ..server.latency import percentile_latency, tail_mean
from ..sim.mix_runner import LC_INSTANCES, BaselineResult
from .spec import BaselineSpec, RunSpec, TaskSpec, config_fingerprint

__all__ = [
    "ShardSpec",
    "ScaleoutShardSpec",
    "MergedBaseline",
    "shard_instances",
    "plan_shards",
    "plan_scaleout_shards",
    "merge_shard_results",
    "interleave_shards",
    "resolve_shards",
    "default_shards",
]

#: Values accepted wherever a shard count is configured.
ShardCount = Union[int, str, None]


def shard_instances(
    instance_count: int, shards: int
) -> List[Tuple[int, ...]]:
    """Split ``range(instance_count)`` into ``shards`` contiguous runs.

    The split is deterministic and order-preserving — shard ``i`` holds
    a contiguous block of instance indices, with the first
    ``instance_count % shards`` shards one instance larger.  ``shards``
    is clamped to ``[1, instance_count]`` so no shard is ever empty.

    >>> shard_instances(3, 2)
    [(0, 1), (2,)]
    >>> shard_instances(3, 99)
    [(0,), (1,), (2,)]
    """
    if instance_count < 1:
        raise ValueError("need at least one instance to shard")
    shards = max(1, min(int(shards), instance_count))
    base, extra = divmod(instance_count, shards)
    chunks: List[Tuple[int, ...]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        chunks.append(tuple(range(start, start + size)))
        start += size
    return chunks


@dataclass(frozen=True)
class ShardSpec(TaskSpec):
    """One shard of a run's isolated-baseline work.

    A shard names the *logical* baseline it belongs to (workload, load,
    machine, measurement knobs — the same identity as
    :class:`~repro.runtime.spec.BaselineSpec`) plus the slice of
    instance indices it covers and its position in the shard topology.
    It is a :class:`~repro.runtime.spec.TaskSpec`, so it fingerprints,
    rides any executor or the scheduler, and persists its result like
    every other unit of work; its store documents are ``kind =
    "baseline_shard"`` and record the topology for provenance.  The
    session reclaims them once the merged baseline is stored — they
    exist to survive a mid-phase crash and to deduplicate concurrent
    shard batches, not to duplicate latency pools forever.

    Shards covering different slices of the same baseline have
    different fingerprints (the slice is part of the identity), but all
    of them merge — via :func:`merge_shard_results` — into one
    :class:`~repro.sim.mix_runner.BaselineResult` that is bit-identical
    to the unsharded computation.
    """

    kind: ClassVar[str] = "baseline_shard"

    lc_name: str = ""
    load: float = 0.0
    core_kind: str = "ooo"
    requests: int = 120
    seed: int = 2014
    warmup_fraction: float = 0.05
    target_mb: float = 2.0
    shard_index: int = 0
    num_shards: int = 1
    instances: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.lc_name:
            raise ValueError("ShardSpec needs an LC workload name")
        if not self.instances:
            raise ValueError("ShardSpec needs at least one instance")
        if not 0 <= self.shard_index < self.num_shards:
            raise ValueError("shard_index must lie inside num_shards")

    def base_spec(self) -> BaselineSpec:
        """The *unsharded* baseline identity this shard contributes to.

        Every shard of a baseline maps to the same
        :class:`~repro.runtime.spec.BaselineSpec` fingerprint — the key
        the merged result is stored under, and the key the joint mix
        replay looks up.  Matches
        :meth:`repro.runtime.spec.RunSpec.baseline_spec` field for
        field.
        """
        from ..sim.config import CMPConfig
        from ..units import mb_to_lines

        return BaselineSpec(
            lc_name=self.lc_name,
            load=self.load,
            core_kind=self.core_kind,
            requests=self.requests,
            seed=self.seed,
            warmup_fraction=self.warmup_fraction,
            target_lines=mb_to_lines(self.target_mb),
            config_key=config_fingerprint(CMPConfig(core_kind=self.core_kind)),
        )

    def compute(self, store) -> Dict[str, Any]:
        """Simulate this shard's instances alone, in instance order.

        Returns a JSON-ready document: the shard topology plus one
        slice per covered instance carrying its post-warmup latency
        pool and utilization counters (requests served, activations).
        The per-instance simulation is exactly
        :meth:`~repro.sim.mix_runner.MixRunner.baseline_instance`, so
        merging shard slices in instance order reproduces the serial
        baseline bit for bit.
        """
        from ..sim.config import CMPConfig
        from ..sim.mix_runner import MixRunner
        from .registry import LC_WORKLOADS

        workload = LC_WORKLOADS.make(self.lc_name, target_mb=self.target_mb)
        runner = MixRunner(
            config=CMPConfig(core_kind=self.core_kind),
            requests=self.requests,
            seed=self.seed,
            warmup_fraction=self.warmup_fraction,
        )
        slices = []
        for instance in self.instances:
            result = runner.baseline_instance(workload, self.load, instance)
            slices.append(
                {
                    "instance": instance,
                    "latencies": list(result.latencies),
                    "requests_served": result.requests_served,
                    "activations": result.activations,
                }
            )
        return {
            "shard_index": self.shard_index,
            "num_shards": self.num_shards,
            "instances": list(self.instances),
            "slices": slices,
        }


@dataclass(frozen=True)
class ScaleoutShardSpec(TaskSpec):
    """One shard of a scaleout study's per-machine-size baseline.

    The scaleout extension's baseline has the same split-by-instance
    shape as a sweep run's (each LC instance simulated alone), but on a
    **size-parameterized machine**: ``cores`` determines the config —
    ``CMPConfig(num_cores=cores)`` with a 2 MB-per-core LLC — and the
    study's historical stream seeding (``default_rng((seed, instance))``
    with a shared engine seed) differs from the sweep path, so it gets
    its own spec type rather than overloading :class:`ShardSpec`.

    Like every shard, it is a plain :class:`~repro.runtime.spec.TaskSpec`
    — fingerprinted, store-deduplicated, executor-ready — and its
    ``slices`` documents merge through :func:`merge_shard_results` into
    a baseline bit-identical to the serial loop it replaced
    (:func:`repro.sim.study_runner._scaleout_baseline` plans, merges,
    and then reclaims the shard documents).
    """

    kind: ClassVar[str] = "scaleout_baseline_shard"

    lc_name: str = ""
    load: float = 0.0
    requests: int = 100
    seed: int = 21
    cores: int = 6
    shard_index: int = 0
    num_shards: int = 1
    instances: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.lc_name:
            raise ValueError("ScaleoutShardSpec needs an LC workload name")
        if self.cores < 2 or self.cores % 2 != 0:
            raise ValueError("core counts must be even (half LC, half batch)")
        if not self.instances:
            raise ValueError("ScaleoutShardSpec needs at least one instance")
        if not 0 <= self.shard_index < self.num_shards:
            raise ValueError("shard_index must lie inside num_shards")

    def compute(self, store) -> Dict[str, Any]:
        """Simulate this shard's instances alone on the scaled machine.

        Returns the same ``slices`` document shape as
        :meth:`ShardSpec.compute`, so :func:`merge_shard_results`
        reassembles scaleout baselines and sweep baselines identically.
        """
        from ..sim.study_runner import scaleout_baseline_instance

        slices = []
        for instance in self.instances:
            result = scaleout_baseline_instance(
                lc_name=self.lc_name,
                load=self.load,
                requests=self.requests,
                seed=self.seed,
                cores=self.cores,
                instance=instance,
            )
            slices.append(
                {
                    "instance": instance,
                    "latencies": list(result.latencies),
                    "requests_served": result.requests_served,
                    "activations": result.activations,
                }
            )
        return {
            "shard_index": self.shard_index,
            "num_shards": self.num_shards,
            "instances": list(self.instances),
            "slices": slices,
        }


def plan_scaleout_shards(
    lc_name: str,
    load: float,
    requests: int,
    seed: int,
    cores: int,
    shards: int,
) -> List["ScaleoutShardSpec"]:
    """The shard batch covering one machine size's baseline work.

    The machine runs ``cores // 2`` LC instances (half the cores run
    batch apps); ``shards`` is clamped to that count exactly like
    :func:`plan_shards`.
    """
    chunks = shard_instances(cores // 2, shards)
    return [
        ScaleoutShardSpec(
            lc_name=lc_name,
            load=load,
            requests=requests,
            seed=seed,
            cores=cores,
            shard_index=index,
            num_shards=len(chunks),
            instances=chunk,
        )
        for index, chunk in enumerate(chunks)
    ]


@dataclass(frozen=True)
class MergedBaseline:
    """A sharded baseline reassembled into its serial-path equivalent.

    ``baseline`` is bit-identical to what
    :meth:`~repro.sim.mix_runner.MixRunner.baseline` computes serially;
    the counters aggregate the shards' utilization stats (they are
    reporting-only and never persisted into the baseline document, so
    sharded and unsharded store bytes stay equal).
    """

    baseline: BaselineResult
    instance_count: int
    shard_count: int
    requests_served: int
    activations: int


def plan_shards(
    spec: RunSpec,
    shards: int,
    instance_count: int = LC_INSTANCES,
) -> List[ShardSpec]:
    """The shard batch covering one run's isolated-baseline work.

    Splits the run's ``instance_count`` per-instance streams into (at
    most) ``shards`` contiguous :class:`ShardSpec` slices.  ``shards``
    beyond the instance count is clamped — there is no finer-grained
    independent work to hand out.
    """
    if not isinstance(spec, RunSpec):
        raise TypeError(f"can only shard a RunSpec, got {type(spec).__name__}")
    chunks = shard_instances(instance_count, shards)
    return [
        ShardSpec(
            lc_name=spec.mix.lc_name,
            load=spec.mix.load,
            core_kind=spec.core_kind,
            requests=spec.requests,
            seed=spec.seed,
            warmup_fraction=spec.warmup_fraction,
            target_mb=spec.mix.target_mb,
            shard_index=index,
            num_shards=len(chunks),
            instances=chunk,
        )
        for index, chunk in enumerate(chunks)
    ]


def merge_shard_results(
    results: Sequence[Mapping[str, Any]],
) -> MergedBaseline:
    """Deterministically reassemble shard documents into one baseline.

    The merge is keyed by **instance index** — shard arrival order is
    irrelevant — and requires exactly one slice per instance
    ``0..N-1`` (duplicates and gaps raise, catching mismatched shard
    batches early).  Latency pools concatenate in instance order, the
    same order the serial path pools them, then the tail metrics are
    recomputed with the same estimators — so the resulting
    :class:`~repro.sim.mix_runner.BaselineResult` is bit-identical to
    the unsharded computation.
    """
    slices: Dict[int, Mapping[str, Any]] = {}
    for result in results:
        for entry in result["slices"]:
            instance = int(entry["instance"])
            if instance in slices:
                raise ValueError(
                    f"instance {instance} covered by more than one shard"
                )
            slices[instance] = entry
    if not slices:
        raise ValueError("no shard slices to merge")
    expected = range(len(slices))
    if sorted(slices) != list(expected):
        raise ValueError(
            f"shard slices cover instances {sorted(slices)}, "
            f"expected exactly 0..{len(slices) - 1}"
        )
    pooled: List[float] = []
    requests_served = 0
    activations = 0
    for instance in expected:
        entry = slices[instance]
        pooled.extend(float(x) for x in entry["latencies"])
        requests_served += int(entry["requests_served"])
        activations += int(entry["activations"])
    baseline = BaselineResult(
        tail95_cycles=tail_mean(pooled, 95.0),
        p95_cycles=percentile_latency(pooled, 95.0),
        latencies=tuple(pooled),
    )
    return MergedBaseline(
        baseline=baseline,
        instance_count=len(slices),
        shard_count=len(results),
        requests_served=requests_served,
        activations=activations,
    )


def interleave_shards(
    plans: Sequence[Sequence[ShardSpec]],
) -> List[ShardSpec]:
    """Round-robin shard batches from different specs into one queue.

    Ordering is shard-major: shard 0 of every spec, then shard 1 of
    every spec, and so on.  With a bounded scheduler window this is
    what keeps one run's shards from monopolizing the worker slots —
    every spec in the grid gets a shard in flight before any spec gets
    its second — so intra-run parallelism never starves the grid.

    >>> from repro.runtime import MixRef, PolicySpec, RunSpec
    >>> a = plan_shards(RunSpec(mix=MixRef(lc_name="masstree", load=0.2,
    ...     combo="nft"), policy=PolicySpec.of("ubik")), 3)
    >>> [s.shard_index for s in interleave_shards([a, a])]
    [0, 0, 1, 1, 2, 2]
    """
    return [
        shard
        for tier in zip_longest(*plans)
        for shard in tier
        if shard is not None
    ]


def default_shards() -> ShardCount:
    """Shard count from ``REPRO_SHARDS`` (default 1; ``auto`` allowed)."""
    import os

    raw = os.environ.get("REPRO_SHARDS", "").strip()
    return raw if raw else 1


def resolve_shards(
    shards: ShardCount,
    instance_count: int = LC_INSTANCES,
    jobs: int = 1,
    grid_size: int = 1,
) -> int:
    """Validate and resolve a shard count to a concrete integer.

    ``None`` means unsharded (1).  ``"auto"`` applies the heuristic:
    shard only when the grid leaves workers idle — the per-run shard
    count is the worker budget per grid entry, ``jobs // grid_size``,
    clamped to ``[1, instance_count]``.  A wide grid therefore runs
    unsharded (grid-level parallelism already fills the pool), while a
    single run on a 4-worker session fans its instances out.  Integers
    (or integer strings) are validated and clamped to the instance
    count; zero and negatives are rejected.

    >>> resolve_shards("auto", jobs=4, grid_size=1)
    3
    >>> resolve_shards("auto", jobs=4, grid_size=40)
    1
    >>> resolve_shards(4)
    3
    """
    if shards is None:
        return 1
    if isinstance(shards, str):
        text = shards.strip().lower()
        if text == "auto":
            budget = max(1, jobs) // max(1, grid_size)
            return max(1, min(instance_count, budget))
        try:
            shards = int(text)
        except ValueError:
            raise ValueError(
                f"shards must be an integer or 'auto', got {shards!r}"
            ) from None
    if isinstance(shards, bool) or not isinstance(shards, int):
        raise ValueError(f"shards must be an integer or 'auto', got {shards!r}")
    if shards < 1:
        raise ValueError("shards must be at least 1")
    return min(shards, instance_count)
