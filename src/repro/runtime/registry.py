"""Named factories for policies, schemes, and workloads.

Experiments used to hard-code ``DEFAULT_POLICY_FACTORIES`` tuples and
import concrete policy classes module by module.  The registries make
every buildable object addressable by a short string key, which is what
lets :class:`~repro.runtime.spec.RunSpec` stay declarative (and
JSON-serializable) while still being able to rebuild live objects in a
worker process::

    >>> from repro.runtime import make_policy, list_policies
    >>> make_policy("ubik", slack=0.05)           # doctest: +ELLIPSIS
    <repro.core.ubik.UbikPolicy object at ...>
    >>> sorted(list_policies())                    # doctest: +ELLIPSIS
    ['fixed', 'lru', 'onoff', ...]

Unknown names raise :class:`KeyError` with the full key table and the
closest match, so a typo in a spec fails loudly and helpfully.
"""

from __future__ import annotations

import difflib
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = [
    "Registry",
    "POLICIES",
    "SCHEMES",
    "LC_WORKLOADS",
    "BATCH_WORKLOADS",
    "register_policy",
    "make_policy",
    "list_policies",
    "register_scheme",
    "make_scheme",
    "list_schemes",
    "make_lc_workload_named",
    "list_lc_workloads",
    "make_batch_workload_named",
    "list_batch_classes",
]


class Registry:
    """A string-keyed factory table for one kind of object.

    Factories are callables; :meth:`make` forwards keyword arguments so
    parametrized objects (``make("ubik", slack=0.05)``) need no special
    casing.  Lookups are case-insensitive on the key.
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._factories: Dict[str, Callable[..., Any]] = {}

    def register(
        self, name: str, factory: Optional[Callable[..., Any]] = None
    ) -> Callable[..., Any]:
        """Register ``factory`` under ``name``; usable as a decorator."""

        def _add(fn: Callable[..., Any]) -> Callable[..., Any]:
            key = name.lower()
            if key in self._factories:
                raise ValueError(f"{self.kind} {name!r} already registered")
            self._factories[key] = fn
            return fn

        if factory is not None:
            return _add(factory)
        return _add

    def get(self, name: str) -> Callable[..., Any]:
        """The factory for ``name``; raises a descriptive KeyError."""
        key = name.lower()
        try:
            return self._factories[key]
        except KeyError:
            known = ", ".join(sorted(self._factories))
            close = difflib.get_close_matches(key, self._factories, n=1)
            hint = f"; did you mean {close[0]!r}?" if close else ""
            raise KeyError(
                f"unknown {self.kind} {name!r} (known: {known}){hint}"
            ) from None

    def make(self, name: str, **kwargs: Any) -> Any:
        """Build the object registered under ``name``."""
        return self.get(name)(**kwargs)

    def names(self) -> List[str]:
        """All registered keys, sorted."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._factories)


#: Partitioning policies: ``make_policy("ubik", slack=0.05)``.
POLICIES = Registry("policy")

#: Partitioning-scheme models; factories take ``llc_lines``.
SCHEMES = Registry("scheme")

#: Latency-critical workload models, keyed by paper name.
LC_WORKLOADS = Registry("LC workload")

#: Batch workload classes (n/f/t/s), as in paper Section 6.
BATCH_WORKLOADS = Registry("batch workload class")


def register_policy(name: str, factory: Optional[Callable[..., Any]] = None):
    """Register a policy factory under ``name`` (decorator-friendly)."""
    return POLICIES.register(name, factory)


def make_policy(name: str, **kwargs: Any):
    """Instantiate the policy registered under ``name``."""
    return POLICIES.make(name, **kwargs)


def list_policies() -> List[str]:
    """Sorted names of all registered policies."""
    return POLICIES.names()


def register_scheme(name: str, factory: Optional[Callable[..., Any]] = None):
    """Register a scheme-model factory under ``name``."""
    return SCHEMES.register(name, factory)


def make_scheme(name: str, llc_lines: int, **kwargs: Any):
    """Instantiate the scheme model ``name`` for an LLC size."""
    return SCHEMES.make(name, llc_lines=llc_lines, **kwargs)


def list_schemes() -> List[str]:
    """Sorted names of all registered scheme models."""
    return SCHEMES.names()


def make_lc_workload_named(name: str, **kwargs: Any):
    """Instantiate the LC workload model registered under ``name``."""
    return LC_WORKLOADS.make(name, **kwargs)


def list_lc_workloads() -> List[str]:
    """Sorted names of all registered LC workloads."""
    return LC_WORKLOADS.names()


def make_batch_workload_named(name: str, **kwargs: Any):
    """Instantiate a batch workload from a registered class key."""
    return BATCH_WORKLOADS.make(name, **kwargs)


def list_batch_classes() -> List[str]:
    """Sorted keys of all registered batch workload classes."""
    return BATCH_WORKLOADS.names()


def _register_builtins() -> None:
    """Populate the registries with everything the repo ships."""
    from ..cache import schemes as _schemes
    from ..core.ubik import UbikPolicy
    from ..policies.fixed import FixedPolicy
    from ..policies.lru import LRUPolicy
    from ..policies.onoff import OnOffPolicy
    from ..policies.static_lc import StaticLCPolicy
    from ..policies.ucp import UCPPolicy
    from ..workloads.batch import BATCH_CLASSES, make_batch_workload
    from ..workloads.latency_critical import LC_NAMES, make_lc_workload

    POLICIES.register("lru", LRUPolicy)
    POLICIES.register("ucp", UCPPolicy)
    POLICIES.register("onoff", OnOffPolicy)
    POLICIES.register("static_lc", StaticLCPolicy)
    POLICIES.register("fixed", FixedPolicy)
    POLICIES.register("ubik", UbikPolicy)

    SCHEMES.register("vantage_zcache", _schemes.vantage_zcache)
    SCHEMES.register(
        "vantage_sa16", lambda llc_lines: _schemes.vantage_setassoc(llc_lines, 16)
    )
    SCHEMES.register(
        "vantage_sa64", lambda llc_lines: _schemes.vantage_setassoc(llc_lines, 64)
    )
    SCHEMES.register(
        "waypart_sa16", lambda llc_lines: _schemes.way_partitioning(llc_lines, 16)
    )
    SCHEMES.register(
        "waypart_sa64", lambda llc_lines: _schemes.way_partitioning(llc_lines, 64)
    )

    for lc_name in LC_NAMES:
        LC_WORKLOADS.register(
            lc_name,
            lambda name=lc_name, **kw: make_lc_workload(name, **kw),
        )
    for cls in BATCH_CLASSES:
        BATCH_WORKLOADS.register(
            cls,
            lambda batch_class=cls, **kw: make_batch_workload(batch_class, **kw),
        )


_register_builtins()
