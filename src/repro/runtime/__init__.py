"""Unified experiment runtime: registries, specs, executors, store.

This package is the execution backbone of the reproduction.  Instead
of ad-hoc loops over hard-coded factory tuples with process-local
memoization, experiments describe work declaratively and hand it to a
:class:`Session`:

* :mod:`~repro.runtime.registry` — string-keyed factories for
  policies, schemes, and LC/batch workloads (``make_policy("ubik",
  slack=0.05)``).
* :mod:`~repro.runtime.spec` — frozen, JSON-serializable
  :class:`RunSpec` descriptions with canonical content fingerprints.
* :mod:`~repro.runtime.executors` — serial and process-pool executors
  with bit-identical results (``REPRO_JOBS`` / ``--jobs``).
* :mod:`~repro.runtime.scheduler` — the asyncio executor and the
  batched :class:`SpecScheduler`: bounded-pool streaming with
  store-hit short-circuiting, in-flight dedup, and progress events.
* :mod:`~repro.runtime.sharding` — intra-run trace sharding: one run's
  independent per-instance baseline streams split into
  :class:`ShardSpec` slices that ride any executor and merge back
  bit-identically (``--shards`` / ``Session(shards=...)``).
* :mod:`~repro.runtime.store` — a persistent fingerprint-keyed result
  store shared across processes, a façade over the pluggable engines
  of :mod:`~repro.runtime.backends` (``REPRO_STORE`` URLs like
  ``sqlite:///path/store.db``, ``REPRO_CACHE_DIR`` paths).
* :mod:`~repro.runtime.artifacts` — the per-process content-addressed
  cache of intermediate products (request streams, baselines, workload
  and core-model objects) that makes a sweep evaluate each distinct
  sub-computation once per process (``REPRO_ARTIFACTS=0`` disables).
* :mod:`~repro.runtime.session` — the :class:`Session` facade tying
  them together.
"""

from .artifacts import (
    ArtifactCache,
    artifacts_enabled,
    artifacts_tier2_target,
    get_artifacts,
    reset_artifacts,
)
from .executors import (
    EXECUTOR_KINDS,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    default_jobs,
    make_executor,
    resolve_jobs,
)
from .scheduler import (
    AsyncExecutor,
    ProgressEvent,
    SchedulerCancelled,
    SpecScheduler,
)
from .registry import (
    BATCH_WORKLOADS,
    LC_WORKLOADS,
    POLICIES,
    SCHEMES,
    Registry,
    list_batch_classes,
    list_lc_workloads,
    list_policies,
    list_schemes,
    make_batch_workload_named,
    make_lc_workload_named,
    make_policy,
    make_scheme,
    register_policy,
    register_scheme,
)
from .session import (
    DEFAULT_POLICIES,
    Session,
    execute_spec,
    get_session,
    reset_session,
)
from .sharding import (
    MergedBaseline,
    ShardSpec,
    interleave_shards,
    merge_shard_results,
    plan_shards,
    resolve_shards,
    shard_instances,
)
from .spec import (
    BaselineSpec,
    MixRef,
    PolicySpec,
    RunRecord,
    RunSpec,
    SchemeSpec,
    SweepResult,
    TaskSpec,
    mix_refs,
)
from .backends import (
    BACKENDS,
    DirectoryBackend,
    MemoryBackend,
    SqliteBackend,
    StoreBackend,
    make_backend,
    parse_store_url,
)
from .store import (
    ResultStore,
    default_store_root,
    default_store_url,
    migrate_store,
)

__all__ = [
    "Registry",
    "POLICIES",
    "SCHEMES",
    "LC_WORKLOADS",
    "BATCH_WORKLOADS",
    "register_policy",
    "make_policy",
    "list_policies",
    "register_scheme",
    "make_scheme",
    "list_schemes",
    "make_lc_workload_named",
    "list_lc_workloads",
    "make_batch_workload_named",
    "list_batch_classes",
    "PolicySpec",
    "SchemeSpec",
    "MixRef",
    "BaselineSpec",
    "RunSpec",
    "TaskSpec",
    "RunRecord",
    "SweepResult",
    "mix_refs",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "AsyncExecutor",
    "SpecScheduler",
    "ProgressEvent",
    "SchedulerCancelled",
    "EXECUTOR_KINDS",
    "default_jobs",
    "resolve_jobs",
    "make_executor",
    "ShardSpec",
    "MergedBaseline",
    "shard_instances",
    "plan_shards",
    "merge_shard_results",
    "interleave_shards",
    "resolve_shards",
    "ResultStore",
    "default_store_root",
    "default_store_url",
    "migrate_store",
    "StoreBackend",
    "DirectoryBackend",
    "SqliteBackend",
    "MemoryBackend",
    "BACKENDS",
    "parse_store_url",
    "make_backend",
    "ArtifactCache",
    "get_artifacts",
    "reset_artifacts",
    "artifacts_enabled",
    "artifacts_tier2_target",
    "DEFAULT_POLICIES",
    "Session",
    "execute_spec",
    "get_session",
    "reset_session",
]
