"""Declarative, JSON-serializable run descriptions with fingerprints.

A :class:`RunSpec` is the unit of work in the experiment runtime: it
names — by registry key and keyword arguments, never by live object —
everything that determines one (mix, policy) simulation:

* the mix (:class:`MixRef`: LC workload, load, batch-type combo,
  replicate, construction seed),
* the policy (:class:`PolicySpec`) and optional partitioning scheme
  (:class:`SchemeSpec`),
* the machine and measurement knobs (core kind, requests, seed,
  UMON noise, warmup fraction).

Because a spec is plain data it pickles cheaply to worker processes,
round-trips through JSON, and has a canonical content *fingerprint*
(SHA-256 of its canonical JSON) that keys the persistent result store:
the same spec always hashes to the same hex string, in every process,
on every run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields, is_dataclass, replace
from typing import Any, ClassVar, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from .registry import LC_WORKLOADS, POLICIES, SCHEMES

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "KwargsTuple",
    "PolicySpec",
    "SchemeSpec",
    "MixRef",
    "BaselineSpec",
    "RunSpec",
    "TaskSpec",
    "RunRecord",
    "SweepResult",
    "canonical_json",
    "fingerprint_payload",
    "config_fingerprint",
    "mix_refs",
]

#: Bumped whenever spec/engine semantics change in a way that
#: invalidates stored results; part of every fingerprint.
SPEC_SCHEMA_VERSION = 1

#: Keyword arguments frozen as a sorted tuple of (name, value) pairs.
KwargsTuple = Tuple[Tuple[str, Any], ...]


def _freeze_kwargs(kwargs: Mapping[str, Any]) -> KwargsTuple:
    """Sort kwargs into a hashable tuple; values must be JSON scalars."""
    for key, value in kwargs.items():
        if not isinstance(value, (bool, int, float, str, type(None))):
            raise TypeError(
                f"spec kwarg {key!r} must be a JSON scalar, got {type(value).__name__}"
            )
    return tuple(sorted(kwargs.items()))


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def fingerprint_payload(payload: Any) -> str:
    """SHA-256 hex digest of a payload's canonical JSON."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class PolicySpec:
    """A policy by registry name plus frozen constructor kwargs."""

    name: str
    kwargs: KwargsTuple = ()
    label: str = ""

    def __post_init__(self) -> None:
        # Registry lookups are case-insensitive; normalize so equal
        # objects get equal fingerprints regardless of caller casing.
        object.__setattr__(self, "name", self.name.lower())

    @classmethod
    def of(cls, name: str, label: str = "", **kwargs: Any) -> "PolicySpec":
        """Build a spec, freezing ``kwargs`` canonically."""
        return cls(name=name, kwargs=_freeze_kwargs(kwargs), label=label)

    @property
    def display(self) -> str:
        """The label used in reports (defaults to the registry name)."""
        return self.label or self.name

    def build(self):
        """Instantiate the policy from the registry."""
        return POLICIES.make(self.name, **dict(self.kwargs))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {
            "name": self.name,
            "kwargs": [list(kv) for kv in self.kwargs],
            "label": self.label,
        }


@dataclass(frozen=True)
class SchemeSpec:
    """A partitioning-scheme model by registry name."""

    name: str
    kwargs: KwargsTuple = ()

    def __post_init__(self) -> None:
        # Match the registry's case-insensitive key equivalence.
        object.__setattr__(self, "name", self.name.lower())

    @classmethod
    def of(cls, name: str, **kwargs: Any) -> "SchemeSpec":
        """Build a spec, freezing ``kwargs`` canonically."""
        return cls(name=name, kwargs=_freeze_kwargs(kwargs))

    def build(self, llc_lines: int):
        """Instantiate the scheme model for an LLC capacity."""
        return SCHEMES.make(self.name, llc_lines=llc_lines, **dict(self.kwargs))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {"name": self.name, "kwargs": [list(kv) for kv in self.kwargs]}


@dataclass(frozen=True)
class MixRef:
    """A six-app mix named by its deterministic construction inputs.

    Mirrors :func:`repro.workloads.mixes.make_mix_specs`: the batch trio
    for combo ``c`` replicate ``r`` is drawn with seed
    ``seed + index(c) * 1000 + r``, so a ref rebuilt in any process
    yields a bit-identical :class:`~repro.workloads.mixes.MixSpec`.
    """

    lc_name: str
    load: float
    combo: str  # three batch-type letters, e.g. "nft"
    rep: int = 0
    seed: int = 2014
    target_mb: float = 2.0

    @property
    def load_label(self) -> str:
        """``lo``/``hi``, matching :class:`MixSpec.load_label`."""
        from ..workloads.mixes import load_label

        return load_label(self.load)

    @property
    def mix_id(self) -> str:
        """The id ``make_mix_specs`` would assign this mix."""
        return f"{self.lc_name}-{self.load_label}-{self.combo}.{self.rep}"

    def build(self):
        """Reconstruct the full :class:`MixSpec` (workloads included).

        The LC workload and the batch trio are served from the
        process-wide artifact cache keyed by their deterministic
        construction inputs — both are frozen dataclass graphs, so a
        sweep shares one instance across every spec that names the same
        inputs instead of rebuilding curves and profiles per cell.
        """
        from ..workloads.mixes import MixSpec, batch_type_combos, make_batch_mix
        from .artifacts import get_artifacts

        combo_labels = ["".join(c) for c in batch_type_combos()]
        try:
            combo_index = combo_labels.index(self.combo)
        except ValueError:
            raise ValueError(
                f"unknown batch combo {self.combo!r} (known: {combo_labels})"
            ) from None
        mix_seed = self.seed + combo_index * 1000 + self.rep
        artifacts = get_artifacts()
        workload = artifacts.get_or_make(
            "lc_workload",
            (self.lc_name, float(self.target_mb)),
            lambda: LC_WORKLOADS.make(self.lc_name, target_mb=self.target_mb),
        )
        batch_apps = artifacts.get_or_make(
            "batch_mix",
            (self.combo, int(mix_seed)),
            lambda: make_batch_mix(tuple(self.combo), mix_seed),
        )
        return MixSpec(
            mix_id=self.mix_id,
            lc_workload=workload,
            load=self.load,
            batch_apps=batch_apps,
            batch_combo=f"{self.combo}.{self.rep}",
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return asdict(self)


@dataclass(frozen=True)
class BaselineSpec:
    """Everything an isolated 2 MB-private baseline run depends on.

    The target allocation is keyed in *lines* (the workload's actual
    quantized allocation), not megabytes, so fingerprints computed from
    a requested size and from a built workload always agree.
    """

    lc_name: str
    load: float
    core_kind: str
    requests: int
    seed: int
    warmup_fraction: float = 0.05
    target_lines: int = 32768  # mb_to_lines(2.0), the paper's target
    #: Content hash of the full CMPConfig (see :func:`config_fingerprint`).
    #: Baselines depend on more than ``core_kind`` (memory latency,
    #: coalescing timeout, LLC geometry); keying on the whole config
    #: keeps differently-parameterized machines from sharing entries.
    config_key: str = ""

    def fingerprint(self) -> str:
        """Stable content hash keying the persistent store."""
        payload = {"kind": "baseline", "v": SPEC_SCHEMA_VERSION}
        payload.update(asdict(self))
        return fingerprint_payload(payload)


def config_fingerprint(config) -> str:
    """Stable content hash of a :class:`CMPConfig` (all fields)."""
    return fingerprint_payload(asdict(config))


@dataclass(frozen=True)
class RunSpec:
    """One (mix, policy, scheme, machine, measurement) simulation."""

    mix: MixRef
    policy: PolicySpec
    scheme: Optional[SchemeSpec] = None
    core_kind: str = "ooo"
    requests: int = 120
    seed: int = 2014
    umon_noise: float = 0.02
    warmup_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.requests < 20:
            raise ValueError("need at least 20 requests for tail metrics")

    def config(self):
        """The :class:`CMPConfig` this spec runs on."""
        from ..sim.config import CMPConfig

        return CMPConfig(core_kind=self.core_kind)

    def baseline_spec(self) -> BaselineSpec:
        """The isolated-baseline run this spec normalizes against."""
        from ..units import mb_to_lines

        return BaselineSpec(
            lc_name=self.mix.lc_name,
            load=self.mix.load,
            core_kind=self.core_kind,
            requests=self.requests,
            seed=self.seed,
            warmup_fraction=self.warmup_fraction,
            target_lines=mb_to_lines(self.mix.target_mb),
            config_key=config_fingerprint(self.config()),
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (canonical field order via keys)."""
        return {
            "mix": self.mix.to_dict(),
            "policy": self.policy.to_dict(),
            "scheme": self.scheme.to_dict() if self.scheme else None,
            "core_kind": self.core_kind,
            "requests": self.requests,
            "seed": self.seed,
            "umon_noise": self.umon_noise,
            "warmup_fraction": self.warmup_fraction,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunSpec":
        """Inverse of :meth:`to_dict`."""
        policy = payload["policy"]
        scheme = payload.get("scheme")
        return cls(
            mix=MixRef(**payload["mix"]),
            policy=PolicySpec(
                name=policy["name"],
                kwargs=tuple((k, v) for k, v in policy.get("kwargs", ())),
                label=policy.get("label", ""),
            ),
            scheme=(
                SchemeSpec(
                    name=scheme["name"],
                    kwargs=tuple((k, v) for k, v in scheme.get("kwargs", ())),
                )
                if scheme
                else None
            ),
            core_kind=payload["core_kind"],
            requests=payload["requests"],
            seed=payload["seed"],
            umon_noise=payload["umon_noise"],
            warmup_fraction=payload["warmup_fraction"],
        )

    def fingerprint(self) -> str:
        """Stable content hash keying the persistent store.

        The policy *label* is deliberately excluded: two specs that
        build the same objects share results regardless of how they are
        captioned in a report.
        """
        payload = {"kind": "run", "v": SPEC_SCHEMA_VERSION}
        payload.update(self.to_dict())
        payload["policy"] = dict(payload["policy"], label="")
        return fingerprint_payload(payload)


@dataclass(frozen=True)
class TaskSpec:
    """Base for declarative non-sweep tasks (scaleout, bandwidth, …).

    A task spec is the :class:`RunSpec` idea generalized: a frozen
    dataclass of JSON scalars (plus nested specs like
    :class:`PolicySpec`) naming everything one deterministic
    computation depends on.  Subclasses set two class attributes —

    * ``kind`` — the store document kind (and fingerprint namespace),
    * ``result_type`` — the frozen dataclass the task returns
      (``None`` means the result is already a JSON-ready dict) —

    and implement :meth:`compute`.  Fingerprinting, store lookup, and
    persistence are inherited, so any task spec rides executors, the
    :class:`~repro.runtime.scheduler.SpecScheduler`, and the persistent
    store exactly like a sweep spec.

    Besides the scaleout/bandwidth studies, this is also how intra-run
    trace sharding stays wiring-free: a
    :class:`~repro.runtime.sharding.ShardSpec` — one slice of a run's
    per-instance baseline work — is just another task spec, so shards
    queue, deduplicate, persist, and parallelize through the exact
    machinery described here.
    """

    #: Store document kind; subclasses must override.
    kind: ClassVar[str] = "task"
    #: Result dataclass rebuilt by :meth:`decode` (``None`` = plain dict).
    result_type: ClassVar[Optional[type]] = None

    def payload(self) -> Dict[str, Any]:
        """Fingerprint payload: every field, nested specs flattened.

        Policy labels are blanked (matching :meth:`RunSpec.fingerprint`)
        so relabeled-but-identical tasks share one stored result.
        """
        data = asdict(self)
        policy = data.get("policy")
        if isinstance(policy, dict) and "label" in policy:
            policy["label"] = ""
        data["kind"] = self.kind
        data["v"] = SPEC_SCHEMA_VERSION
        return data

    def fingerprint(self) -> str:
        """Stable content hash keying the persistent store."""
        return fingerprint_payload(self.payload())

    def encode(self, result: Any) -> Dict[str, Any]:
        """JSON-ready representation of a computed result."""
        return asdict(result) if is_dataclass(result) else dict(result)

    @classmethod
    def decode(cls, payload: Mapping[str, Any]) -> Any:
        """Inverse of :meth:`encode`."""
        if cls.result_type is None:
            return dict(payload)
        return cls.result_type(**payload)

    def lookup(self, store) -> Optional[Any]:
        """The stored result for this task, or ``None``."""
        if store is None:
            return None
        doc = store.get(self.fingerprint())
        if doc is None or doc.get("kind") != self.kind:
            return None
        return self.decode(doc["result"])

    def compute(self, store) -> Any:
        """Produce the result from scratch (deterministic in the spec)."""
        raise NotImplementedError

    def execute(self, store=None) -> Any:
        """Serve from the store, else compute and persist."""
        hit = self.lookup(store)
        if hit is not None:
            return hit
        result = self.compute(store)
        if store is not None:
            store.put(
                self.fingerprint(),
                {"kind": self.kind, "result": self.encode(result)},
            )
        return result


@dataclass(frozen=True)
class RunRecord:
    """One (mix, policy) run's metrics — the store's value type."""

    mix_id: str
    lc_name: str
    load_label: str
    policy: str
    tail_degradation: float
    weighted_speedup: float
    lc_tail_cycles: float
    baseline_tail_cycles: float
    deboosts: int = 0
    watermarks: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunRecord":
        """Inverse of :meth:`to_dict`; ignores unknown keys."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})

    def relabeled(self, policy: str) -> "RunRecord":
        """A copy reporting under a different policy label."""
        if policy == self.policy:
            return self
        return replace(self, policy=policy)


@dataclass
class SweepResult:
    """All runs of a sweep plus grouped accessors."""

    records: List[RunRecord]

    def for_policy(
        self, policy: str, load_label: Optional[str] = None
    ) -> List[RunRecord]:
        """Records for one policy, optionally filtered by load."""
        return [
            r
            for r in self.records
            if r.policy == policy
            and (load_label is None or r.load_label == load_label)
        ]

    def policies(self) -> List[str]:
        """Policy labels in first-seen order."""
        seen: Dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.policy, None)
        return list(seen)

    def sorted_degradations(self, policy: str, load_label: str):
        """Tail degradations, worst first (paper style)."""
        vals = [r.tail_degradation for r in self.for_policy(policy, load_label)]
        return np.sort(np.asarray(vals))[::-1]

    def sorted_speedups(self, policy: str, load_label: str):
        """Weighted speedups, ascending."""
        vals = [r.weighted_speedup for r in self.for_policy(policy, load_label)]
        return np.sort(np.asarray(vals))

    def average_speedup(self, policy: str, load_label: str) -> float:
        """Mean weighted speedup for a policy at one load."""
        vals = [r.weighted_speedup for r in self.for_policy(policy, load_label)]
        return float(np.mean(vals)) if vals else float("nan")

    def per_app(
        self, policy: str, lc_name: str, load_label: str
    ) -> List[RunRecord]:
        """Records for one (policy, LC app, load) cell."""
        return [
            r
            for r in self.for_policy(policy, load_label)
            if r.lc_name == lc_name
        ]


def mix_refs(
    lc_names: Iterable[str],
    loads: Iterable[float],
    combos: Iterable[str],
    mixes_per_combo: int = 1,
    seed: int = 2014,
    target_mb: float = 2.0,
) -> List[MixRef]:
    """The declarative grid matching ``scaled_mix_specs`` ordering.

    Iterates LC names, then loads, then the full 20-combo order
    (filtered to ``combos``) with replicates innermost — exactly the
    order :func:`repro.experiments.common.scaled_mix_specs` produces,
    so sweep records line up with the legacy path record for record.
    """
    from ..workloads.mixes import batch_type_combos

    keep = set(combos)
    refs: List[MixRef] = []
    for lc_name in lc_names:
        for load in loads:
            for combo_tuple in batch_type_combos():
                combo = "".join(combo_tuple)
                if combo not in keep:
                    continue
                for rep in range(mixes_per_combo):
                    refs.append(
                        MixRef(
                            lc_name=lc_name,
                            load=load,
                            combo=combo,
                            rep=rep,
                            seed=seed,
                            target_mb=target_mb,
                        )
                    )
    return refs
