"""Executors: how a batch of independent run specs gets evaluated.

Every spec in the sweep grid is an independent, deterministic
simulation, so fanning the grid across cores must not change any
result — only wall-clock time.  Executors therefore share one tiny
contract (:class:`Executor.map`): apply a picklable function to a
sequence of items and return the results *in input order*.

* :class:`SerialExecutor` — plain in-process loop; the reference
  behaviour.
* :class:`ParallelExecutor` — a ``concurrent.futures``
  ``ProcessPoolExecutor`` fan-out.  Worker count comes from the
  constructor, else the ``REPRO_JOBS`` environment variable, else 1.

Because ``map`` preserves order and each simulation seeds its own RNGs
from the spec, serial and parallel execution are bit-identical.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, List, Sequence

__all__ = [
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "default_jobs",
    "make_executor",
]


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1; 0 = all cores)."""
    raw = os.environ.get("REPRO_JOBS", "1").strip()
    try:
        jobs = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_JOBS must be an integer, got {raw!r}") from None
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError("REPRO_JOBS must be non-negative")
    return jobs


class Executor:
    """Protocol: evaluate ``fn`` over ``items``, preserving order."""

    #: Human-readable name for reports.
    name = "abstract"

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> List[Any]:
        """Apply ``fn`` to every item; results line up with inputs."""
        raise NotImplementedError


class SerialExecutor(Executor):
    """Reference executor: evaluate everything in-process, in order."""

    name = "serial"
    jobs = 1

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> List[Any]:
        """Plain loop over the items."""
        return [fn(item) for item in items]


class ParallelExecutor(Executor):
    """Process-pool executor fanning specs across cores.

    ``fn`` and the items must be picklable (run specs are plain
    dataclasses, so they are).  Results are returned in input order,
    making the fan-out invisible to callers.
    """

    name = "parallel"

    def __init__(self, jobs: int | None = None):
        self.jobs = jobs if jobs is not None else default_jobs()
        if self.jobs < 1:
            raise ValueError("ParallelExecutor needs at least one worker")

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> List[Any]:
        """Fan the items over a process pool (order-preserving)."""
        items = list(items)
        workers = min(self.jobs, len(items))
        if workers <= 1:
            return [fn(item) for item in items]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))


def make_executor(jobs: int | None = None) -> Executor:
    """Executor for a worker count (``None`` = ``REPRO_JOBS``)."""
    if jobs is None:
        resolved = default_jobs()
    elif jobs == 0:
        resolved = os.cpu_count() or 1
    elif jobs < 0:
        raise ValueError("jobs must be non-negative")
    else:
        resolved = jobs
    if resolved <= 1:
        return SerialExecutor()
    return ParallelExecutor(resolved)
