"""Executors: how a batch of independent run specs gets evaluated.

Every spec in the sweep grid is an independent, deterministic
simulation, so fanning the grid across cores must not change any
result — only wall-clock time.  Executors therefore share one tiny
contract (:class:`Executor.map`): apply a picklable function to a
sequence of items and return the results *in input order*.

* :class:`SerialExecutor` — plain in-process loop; the reference
  behaviour.
* :class:`ParallelExecutor` — a ``concurrent.futures``
  ``ProcessPoolExecutor`` fan-out.  Worker count comes from the
  constructor, else the ``REPRO_JOBS`` environment variable, else 1.
* :class:`~repro.runtime.scheduler.AsyncExecutor` (in the scheduler
  module) — an asyncio event loop over the same process pool, built by
  :func:`make_executor(kind="async") <make_executor>`.

Because ``map`` preserves order and each simulation seeds its own RNGs
from the spec, serial, parallel, and async execution are bit-identical.

The items an executor maps over are opaque to it: sweep runs, task
specs, and the :class:`~repro.runtime.sharding.ShardSpec` slices of a
sharded run all fan out through the same two-method contract — which
is why trace sharding needed no executor changes at all.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, List, Sequence

__all__ = [
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "EXECUTOR_KINDS",
    "default_jobs",
    "resolve_jobs",
    "make_executor",
]

#: Names accepted by :func:`make_executor` (and the CLI ``--scheduler``).
EXECUTOR_KINDS = ("auto", "serial", "parallel", "async")


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1; 0 = all cores)."""
    raw = os.environ.get("REPRO_JOBS", "1").strip()
    try:
        jobs = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_JOBS must be an integer, got {raw!r}") from None
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError("REPRO_JOBS must be non-negative")
    return jobs


class Executor:
    """Protocol: evaluate ``fn`` over ``items``, preserving order."""

    #: Human-readable name for reports.
    name = "abstract"

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> List[Any]:
        """Apply ``fn`` to every item; results line up with inputs."""
        raise NotImplementedError


class SerialExecutor(Executor):
    """Reference executor: evaluate everything in-process, in order."""

    name = "serial"
    jobs = 1

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> List[Any]:
        """Plain loop over the items."""
        return [fn(item) for item in items]


class ParallelExecutor(Executor):
    """Process-pool executor fanning specs across cores.

    ``fn`` and the items must be picklable (run specs are plain
    dataclasses, so they are).  Results are returned in input order,
    making the fan-out invisible to callers.
    """

    name = "parallel"

    def __init__(self, jobs: int | None = None):
        self.jobs = jobs if jobs is not None else default_jobs()
        if self.jobs < 1:
            raise ValueError("ParallelExecutor needs at least one worker")

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> List[Any]:
        """Fan the items over a process pool (order-preserving)."""
        items = list(items)
        workers = min(self.jobs, len(items))
        if workers <= 1:
            return [fn(item) for item in items]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))


def resolve_jobs(jobs: int | None = None) -> int:
    """Validate and resolve a worker count (``None`` = ``REPRO_JOBS``,
    ``0`` = all cores; negative or non-integer counts are rejected)."""
    if jobs is None:
        return default_jobs()
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise ValueError(f"jobs must be an integer, got {jobs!r}")
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError("jobs must be non-negative")
    return jobs


def make_executor(jobs: int | None = None, kind: str = "auto") -> Executor:
    """Executor for a worker count (``None`` = ``REPRO_JOBS``).

    ``kind`` picks the engine: ``"auto"`` (serial at one worker, the
    process pool above that — the historical behaviour), or an explicit
    ``"serial"`` / ``"parallel"`` / ``"async"``.
    """
    if kind not in EXECUTOR_KINDS:
        raise ValueError(
            f"unknown executor kind {kind!r} (known: {', '.join(EXECUTOR_KINDS)})"
        )
    resolved = resolve_jobs(jobs)
    if kind == "serial":
        return SerialExecutor()
    if kind == "parallel":
        return ParallelExecutor(resolved)
    if kind == "async":
        from .scheduler import AsyncExecutor

        return AsyncExecutor(resolved)
    if resolved <= 1:
        return SerialExecutor()
    return ParallelExecutor(resolved)
