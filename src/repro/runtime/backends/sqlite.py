"""Single-file SQLite store engine (WAL mode), in the style of
python-diskcache's core: one ``store.db`` holding every document and
blob, sub-millisecond get/put, safe under concurrent multi-process
writers.

Why SQLite for a result corpus that was happily a directory tree:

* **one file** — a corpus is an artifact you can copy, mount, or ship
  to a fleet without rsyncing tens of thousands of tiny JSON files;
* **WAL journaling** — readers never block the (single) writer and
  vice versa, which matches the runtime's access pattern exactly:
  many pool workers appending documents while the parent polls;
* **durability knobs** — ``synchronous=NORMAL`` under WAL never
  corrupts, at worst loses the last commits on power failure, which
  for a content-addressed *cache* is the right trade (the entry is
  simply recomputed).

Concurrency/fork discipline (the diskcache idiom): the connection is
opened lazily, per process — :meth:`_connection` re-opens after a
``fork()`` rather than sharing a connection across processes, and a
process-local lock serializes statements so the handle is safe to
touch from the async scheduler's event loop and executor threads
(``check_same_thread=False``).  Writes are single autocommitted
UPSERTs with a generous busy timeout, so concurrent workers storing
*different* fingerprints (the only write pattern the runtime has —
keys are content fingerprints, so racing writers write identical
bytes) interleave without application-level retries.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from pathlib import Path
from typing import Iterator, Optional

from .base import StoreBackend

__all__ = ["SqliteBackend"]

#: Seconds a statement waits on a locked database before failing.
_BUSY_TIMEOUT = 30.0

_SCHEMA = (
    "CREATE TABLE IF NOT EXISTS documents ("
    " fingerprint TEXT PRIMARY KEY, doc TEXT NOT NULL)",
    "CREATE TABLE IF NOT EXISTS blobs ("
    " key TEXT PRIMARY KEY, payload BLOB NOT NULL)",
)


class SqliteBackend(StoreBackend):
    """WAL-mode single-file document + blob store."""

    name = "sqlite"
    persistent = True

    def __init__(self, path: os.PathLike):
        self.path = Path(path).expanduser()
        self._conn: Optional[sqlite3.Connection] = None
        self._pid = os.getpid()
        self._lock = threading.RLock()

    @property
    def url(self) -> str:
        """``sqlite://<path>`` — round-trips through the URL parser."""
        return f"sqlite://{self.path}"

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    def _connection(self) -> sqlite3.Connection:
        """The per-process connection, (re)opened lazily.

        After a ``fork()`` the inherited connection object is abandoned
        un-closed (closing it from the child could checkpoint the
        parent's WAL mid-write); the child simply opens its own.
        """
        if self._conn is not None and self._pid == os.getpid():
            return self._conn
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(
            str(self.path),
            timeout=_BUSY_TIMEOUT,
            isolation_level=None,  # autocommit: each UPSERT is one txn
            check_same_thread=False,
        )
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        for statement in _SCHEMA:
            conn.execute(statement)
        self._conn = conn
        self._pid = os.getpid()
        return conn

    def close(self) -> None:
        """Close this process's connection (safe to call repeatedly)."""
        with self._lock:
            if self._conn is not None and self._pid == os.getpid():
                self._conn.close()
            self._conn = None

    def _exists(self) -> bool:
        """Whether the database file exists yet.

        Read paths check this first so inspecting an empty store (a
        bare ``repro cache``, a stats call) never *creates* the file —
        mirroring the directory backend, which only mkdirs on put.
        """
        return self._conn is not None or self.path.exists()

    # ------------------------------------------------------------------
    # Documents
    # ------------------------------------------------------------------
    def get_doc(self, fingerprint: str) -> Optional[str]:
        """SELECT one document's canonical-JSON text."""
        if not self._exists():
            return None
        with self._lock:
            row = self._connection().execute(
                "SELECT doc FROM documents WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchone()
        return row[0] if row is not None else None

    def put_doc(self, fingerprint: str, text: str) -> None:
        """UPSERT one document in a single autocommitted statement."""
        with self._lock:
            self._connection().execute(
                "INSERT INTO documents (fingerprint, doc) VALUES (?, ?)"
                " ON CONFLICT(fingerprint) DO UPDATE SET doc = excluded.doc",
                (fingerprint, text),
            )

    def delete_doc(self, fingerprint: str) -> None:
        """DELETE one document (a no-op when absent)."""
        if not self._exists():
            return
        with self._lock:
            self._connection().execute(
                "DELETE FROM documents WHERE fingerprint = ?", (fingerprint,)
            )

    def iter_docs(self) -> Iterator[str]:
        """Every stored fingerprint (snapshot, not a live cursor)."""
        if not self._exists():
            return iter(())
        with self._lock:
            rows = self._connection().execute(
                "SELECT fingerprint FROM documents"
            ).fetchall()
        return (row[0] for row in rows)

    def doc_count(self) -> int:
        """``COUNT(*)`` over the documents table."""
        if not self._exists():
            return 0
        with self._lock:
            return self._connection().execute(
                "SELECT COUNT(*) FROM documents"
            ).fetchone()[0]

    # ------------------------------------------------------------------
    # Blobs
    # ------------------------------------------------------------------
    def get_blob(self, key: str) -> Optional[bytes]:
        """SELECT one blob's payload bytes."""
        if not self._exists():
            return None
        with self._lock:
            row = self._connection().execute(
                "SELECT payload FROM blobs WHERE key = ?", (key,)
            ).fetchone()
        return bytes(row[0]) if row is not None else None

    def put_blob(self, key: str, payload: bytes) -> None:
        """UPSERT one blob in a single autocommitted statement."""
        with self._lock:
            self._connection().execute(
                "INSERT INTO blobs (key, payload) VALUES (?, ?)"
                " ON CONFLICT(key) DO UPDATE SET payload = excluded.payload",
                (key, sqlite3.Binary(payload)),
            )

    def delete_blob(self, key: str) -> None:
        """DELETE one blob (a no-op when absent)."""
        if not self._exists():
            return
        with self._lock:
            self._connection().execute(
                "DELETE FROM blobs WHERE key = ?", (key,)
            )

    def iter_blobs(self) -> Iterator[str]:
        """Every stored blob key (snapshot, not a live cursor)."""
        if not self._exists():
            return iter(())
        with self._lock:
            rows = self._connection().execute("SELECT key FROM blobs").fetchall()
        return (row[0] for row in rows)

    def blob_count(self) -> int:
        """``COUNT(*)`` over the blobs table."""
        if not self._exists():
            return 0
        with self._lock:
            return self._connection().execute(
                "SELECT COUNT(*) FROM blobs"
            ).fetchone()[0]

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def clear_documents(self) -> int:
        """DELETE every document; returns how many were dropped."""
        if not self._exists():
            return 0
        with self._lock:
            conn = self._connection()
            count = conn.execute("SELECT COUNT(*) FROM documents").fetchone()[0]
            conn.execute("DELETE FROM documents")
        return count

    def clear_blobs(self) -> int:
        """DELETE every blob; returns how many were dropped."""
        if not self._exists():
            return 0
        with self._lock:
            conn = self._connection()
            count = conn.execute("SELECT COUNT(*) FROM blobs").fetchone()[0]
            conn.execute("DELETE FROM blobs")
        return count

    def disk_bytes(self) -> int:
        """Size of the database file plus its WAL and shm sidecars."""
        total = 0
        for suffix in ("", "-wal", "-shm"):
            try:
                total += os.stat(str(self.path) + suffix).st_size
            except OSError:
                pass
        return total
