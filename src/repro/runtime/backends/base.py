"""The storage-backend contract every ResultStore engine satisfies.

A backend is a dumb, faithful byte store with two sides:

* a **document side** — canonical-JSON texts keyed by 64-hex-char
  content fingerprints (the :class:`~repro.runtime.spec.RunSpec` /
  ``BaselineSpec`` fingerprints the runtime already mints), and
* a **blob side** — opaque byte payloads keyed by content-addressed
  hex keys, used by the tier-2 artifact cache
  (:mod:`repro.runtime.artifacts`) for synthesized streams and parsed
  baselines that should survive process exit.

Backends never interpret what they store: stamping, schema checks, and
JSON (de)serialization belong to the :class:`~repro.runtime.store.ResultStore`
façade, which hands every backend the *same canonical text* for the
same logical document.  That division is what makes the byte-parity
contract cheap to state: :meth:`StoreBackend.export_canonical` writes
the logical store tree of *any* backend in the directory backend's
on-disk layout, and two backends holding the same corpus export
byte-identical trees (``tests/golden/test_backend_golden.py`` pins
this, and ``repro cache --migrate`` relies on it).
"""

from __future__ import annotations

import abc
from pathlib import Path
from typing import Iterator, Optional

__all__ = ["StoreBackend"]


class StoreBackend(abc.ABC):
    """Abstract get/put/delete/iter engine for documents and blobs.

    Class attributes every concrete backend pins:

    ``name``
        The registry key and URL scheme (``directory``, ``sqlite``,
        ``memory``).
    ``persistent``
        Whether another process that opens the backend's :attr:`url`
        sees this one's writes.  The session uses this to decide if
        merged shard baselines can reach pool workers, and the façade
        refuses to hand non-persistent stores across process
        boundaries.
    """

    #: Registry key / URL scheme; concrete classes override.
    name: str = "abstract"
    #: True when a second process opening :attr:`url` shares the data.
    persistent: bool = False
    #: The directory backend's root; ``None`` for every other engine.
    #: (Kept on the base so façade code can read it unconditionally.)
    root: Optional[Path] = None

    # ------------------------------------------------------------------
    # Documents (canonical-JSON text by fingerprint)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def get_doc(self, fingerprint: str) -> Optional[str]:
        """The stored canonical-JSON text, or ``None`` when absent."""

    @abc.abstractmethod
    def put_doc(self, fingerprint: str, text: str) -> None:
        """Store (or atomically replace) one document's text."""

    @abc.abstractmethod
    def delete_doc(self, fingerprint: str) -> None:
        """Drop one document (a no-op when absent)."""

    @abc.abstractmethod
    def iter_docs(self) -> Iterator[str]:
        """Every stored fingerprint (any order; sort for determinism)."""

    @abc.abstractmethod
    def doc_count(self) -> int:
        """Number of stored documents."""

    # ------------------------------------------------------------------
    # Blobs (opaque bytes by content-addressed key)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def get_blob(self, key: str) -> Optional[bytes]:
        """The stored payload, or ``None`` when absent."""

    @abc.abstractmethod
    def put_blob(self, key: str, payload: bytes) -> None:
        """Store (or atomically replace) one blob."""

    @abc.abstractmethod
    def delete_blob(self, key: str) -> None:
        """Drop one blob (a no-op when absent)."""

    @abc.abstractmethod
    def iter_blobs(self) -> Iterator[str]:
        """Every stored blob key (any order)."""

    @abc.abstractmethod
    def blob_count(self) -> int:
        """Number of stored blobs."""

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def clear_documents(self) -> int:
        """Drop every document; returns how many were removed."""

    @abc.abstractmethod
    def clear_blobs(self) -> int:
        """Drop every blob; returns how many were removed."""

    @abc.abstractmethod
    def disk_bytes(self) -> int:
        """On-disk footprint in bytes (0 for non-persistent engines)."""

    def close(self) -> None:
        """Release any held handles (idempotent; default no-op)."""

    # ------------------------------------------------------------------
    # Identity / interop
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def url(self) -> str:
        """The ``scheme://location`` string that reopens this backend.

        For persistent engines this is the worker handoff token: a
        process-pool worker calls ``ResultStore(url)`` and sees the
        same corpus.  ``memory://`` reopens as a *fresh, empty* store —
        which is exactly why :attr:`persistent` is False there.
        """

    def document_path(self, fingerprint: str) -> Optional[Path]:
        """Where one document lives as its own file, if anywhere.

        Only the directory backend has per-document files; engines
        that pack documents into one container return ``None`` and the
        CLI reports the container instead.
        """
        return None

    def __len__(self) -> int:
        return self.doc_count()

    def __iter__(self) -> Iterator[str]:
        return self.iter_docs()

    # ------------------------------------------------------------------
    # The parity contract
    # ------------------------------------------------------------------
    def export_canonical(self, destination: Path) -> int:
        """Write the logical store tree in the directory layout.

        Every document's canonical text lands at
        ``<destination>/<fp[:2]>/<fp>.json`` — the exact layout (and
        bytes) the directory backend keeps natively.  Because the
        façade stores identical canonical text in every engine, two
        backends holding the same corpus export byte-identical trees;
        that is the cross-backend correctness contract, golden-pinned
        and CI-diffed.  Returns the number of documents written.
        """
        destination = Path(destination)
        written = 0
        for fingerprint in sorted(self.iter_docs()):
            text = self.get_doc(fingerprint)
            if text is None:  # racing deleter; the tree stays coherent
                continue
            path = destination / fingerprint[:2] / f"{fingerprint}.json"
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
            written += 1
        return written

    def __repr__(self) -> str:  # pragma: no cover - debugging sugar
        return f"<{type(self).__name__} {self.url}>"
