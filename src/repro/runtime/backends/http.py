"""The network hop: an HTTP shard store service and its client engine.

A fleet of machines sharing one result corpus (and one content-
addressed artifact corpus) needs the store itself to be a network
service.  This module provides both halves, stdlib-only:

* **the service** — :func:`serve_store` builds a
  :class:`StoreHTTPServer` (a ``ThreadingHTTPServer``) fronting *any*
  registered engine — directory tree, sqlite file, or memory — and
  exposing the full :class:`~repro.runtime.backends.base.StoreBackend`
  protocol surface over a tiny REST-ish wire format (documents under
  ``/docs``, blobs under ``/blobs``, counters under ``/stats``, and a
  liveness probe under ``/healthz`` that never touches the engine —
  the cluster fabric's health checks ride on it).  The CLI's
  ``repro store-serve`` wraps it and drains in-flight requests on
  SIGTERM/SIGINT via :func:`install_graceful_shutdown`.
* **the client** — :class:`HttpBackend`, the fourth registered engine:
  ``REPRO_STORE=http://host:port`` (or ``--store http://…``, or
  ``REPRO_ARTIFACTS_TIER2=http://…`` for the shared artifact corpus)
  points any process at a served store.  ``persistent`` is True, so
  :meth:`~repro.runtime.store.ResultStore.share_target` hands the URL
  to process-pool workers and a whole pool shares one remote corpus
  exactly like a sqlite file or directory tree.

Correctness under a flaky network is the acceptance bar, not a
nice-to-have (``tests/runtime/fault_injection.py`` injects drops,
delays, 5xx errors, and truncated bodies on a seeded schedule):

* **every operation is idempotent**, so the client retries all of them
  with exponential backoff.  Puts are naturally idempotent — keys are
  content fingerprints and every backend receives the same canonical
  text for the same key — so replaying a put that *did* apply before
  the connection died is invisible.
* **partial writes never surface** — the server reads the declared
  ``Content-Length`` exactly and refuses (408, unapplied) a body that
  arrives short, and the directory/sqlite engines behind it publish
  atomically; a torn request therefore leaves the corpus untouched.
* **truncated responses never surface** — ``http.client`` raises
  ``IncompleteRead`` when a body ends before its declared length, which
  the client treats like any other transport fault: discard the
  connection, back off, retry.

Knobs (constructor arguments win over the environment):

``REPRO_HTTP_TIMEOUT``
    Per-request socket timeout in seconds (default 30).
``REPRO_HTTP_RETRIES``
    Retries after the first attempt (default 5).
``REPRO_HTTP_BACKOFF``
    Base backoff in seconds, doubled per attempt (default 0.05).
``REPRO_HTTP_MAX_BACKOFF``
    Cap on any single retry sleep in seconds (default 2).  Each sleep
    is also jittered into ``[0.5, 1.0) ×`` the capped delay so a fleet
    of workers retrying against one recovering node spreads out instead
    of stampeding it in lockstep; a ``Retry-After`` header on a 503
    raises the delay to the server's hint (still capped).

The client keeps a small pool of keep-alive connections, re-created
per process after a ``fork()`` (the sqlite engine's discipline: never
share a transport handle across processes).
"""

from __future__ import annotations

import http.client
import json
import os
import random
import re
import signal
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from .base import StoreBackend

__all__ = [
    "HttpBackend",
    "StoreHTTPServer",
    "serve_store",
    "install_graceful_shutdown",
    "StoreUnavailable",
]

#: Environment knobs (constructor arguments override).
_ENV_TIMEOUT = "REPRO_HTTP_TIMEOUT"
_ENV_RETRIES = "REPRO_HTTP_RETRIES"
_ENV_BACKOFF = "REPRO_HTTP_BACKOFF"
_ENV_MAX_BACKOFF = "REPRO_HTTP_MAX_BACKOFF"

_DEFAULT_TIMEOUT = 30.0
_DEFAULT_RETRIES = 5
_DEFAULT_BACKOFF = 0.05
_DEFAULT_MAX_BACKOFF = 2.0

#: Statuses the client treats as transient server trouble.
_RETRYABLE_STATUS = frozenset({500, 502, 503, 504})

#: Content-addressed keys are hex fingerprints; the server rejects
#: anything else before it can reach an engine (or a filesystem).
_KEY_PATTERN = re.compile(r"^[0-9a-fA-F]{2,128}$")


class StoreUnavailable(ConnectionError):
    """Raised when every retry against the served store failed."""


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


# ----------------------------------------------------------------------
# Client engine
# ----------------------------------------------------------------------
class HttpBackend(StoreBackend):
    """Client for a served store: retrying, pooled, fork-safe.

    ``netloc`` is ``host:port`` (the URL parser hands over everything
    after ``http://``).  Construction never touches the network —
    connections open lazily per operation and park in a small reusable
    pool, so ``make_backend("http://…")`` is safe in a process that
    only ever reads its own memory layer.
    """

    name = "http"
    persistent = True

    def __init__(
        self,
        netloc: str,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        backoff: Optional[float] = None,
        max_backoff: Optional[float] = None,
    ):
        netloc = str(netloc).strip().rstrip("/")
        if not netloc:
            raise ValueError("http store URL is missing its host[:port]")
        self.netloc = netloc
        host, _, port = netloc.partition(":")
        self.host = host
        self.port = int(port) if port else 80
        self.timeout = (
            float(timeout)
            if timeout is not None
            else _env_float(_ENV_TIMEOUT, _DEFAULT_TIMEOUT)
        )
        self.retries = (
            int(retries)
            if retries is not None
            else max(0, _env_int(_ENV_RETRIES, _DEFAULT_RETRIES))
        )
        self.backoff = (
            float(backoff)
            if backoff is not None
            else _env_float(_ENV_BACKOFF, _DEFAULT_BACKOFF)
        )
        self.max_backoff = (
            float(max_backoff)
            if max_backoff is not None
            else _env_float(_ENV_MAX_BACKOFF, _DEFAULT_MAX_BACKOFF)
        )
        self._pool: List[http.client.HTTPConnection] = []
        self._lock = threading.Lock()
        self._pid = os.getpid()
        # Per-client seed: deterministic for one handle (testable), but
        # different across the fleet — the whole point of the jitter.
        self._jitter = random.Random(f"{os.getpid()}:{id(self)}:{netloc}")

    @property
    def url(self) -> str:
        """``http://host:port`` — round-trips through the URL parser."""
        return f"http://{self.netloc}"

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _acquire(self) -> Tuple[http.client.HTTPConnection, bool]:
        """``(connection, reused)`` — pooled, or fresh after a ``fork()``.

        Connections inherited across a fork are dropped, never reused:
        two processes interleaving requests on one TCP stream would
        corrupt both.  Closing the child's descriptor is safe — the
        parent holds its own.
        """
        with self._lock:
            if self._pid != os.getpid():
                for conn in self._pool:
                    conn.close()
                self._pool.clear()
                self._pid = os.getpid()
            if self._pool:
                return self._pool.pop(), True
        return (
            http.client.HTTPConnection(self.host, self.port, timeout=self.timeout),
            False,
        )

    def _release(self, conn: http.client.HTTPConnection) -> None:
        """Park a connection whose response was fully read."""
        with self._lock:
            if self._pid == os.getpid() and len(self._pool) < 4:
                self._pool.append(conn)
                return
        conn.close()

    def _request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, bytes]:
        """One protocol operation, retried with exponential backoff.

        Retries transport faults (refused/reset connections, timeouts,
        truncated responses — ``IncompleteRead`` — and torn status
        lines) and retryable 5xx statuses.  Safe for *every* operation
        here because the whole protocol is idempotent: keys are content
        fingerprints, so replaying an applied put rewrites identical
        bytes and replaying a delete re-deletes nothing.

        Each sleep is ``min(max_backoff, backoff · 2^(attempt-1))``,
        raised to the server's ``Retry-After`` hint when one came back
        on the 5xx (never past the cap), then jittered into
        ``[0.5, 1.0)`` of itself — see :meth:`_retry_delay`.
        """
        last_error: Optional[BaseException] = None
        last_status: Optional[int] = None
        attempt = 0
        while True:
            retry_after: Optional[str] = None
            conn, reused = self._acquire()
            try:
                conn.request(
                    method,
                    path,
                    body=body,
                    headers={"Content-Length": str(len(body))} if body is not None else {},
                )
                response = conn.getresponse()
                status = response.status
                payload = response.read()
            except (OSError, http.client.HTTPException) as exc:
                # The connection is in an unknown state: discard it.
                conn.close()
                if reused:
                    # A pooled keep-alive connection the server closed
                    # while it idled — not a server failure.  Replay on
                    # a fresh connection without spending the retry
                    # budget (bounded: the pool holds at most 4).
                    continue
                last_error, last_status = exc, None
            else:
                if status not in _RETRYABLE_STATUS:
                    self._release(conn)
                    return status, payload
                retry_after = response.getheader("Retry-After")
                self._release(conn)  # body fully read: reusable
                last_error, last_status = None, status
            attempt += 1
            if attempt > self.retries:
                break
            time.sleep(self._retry_delay(attempt, retry_after))
        detail = (
            f"HTTP {last_status}" if last_status is not None else repr(last_error)
        )
        raise StoreUnavailable(
            f"store at {self.url} unreachable after "
            f"{self.retries + 1} attempt(s): {method} {path} -> {detail}"
        )

    def _retry_delay(
        self, attempt: int, retry_after: Optional[str] = None
    ) -> float:
        """The jittered, capped sleep before retry number ``attempt``.

        Exponential growth is capped at ``max_backoff`` (a deep retry
        budget must never turn into an unbounded sleep), a numeric
        ``Retry-After`` hint from the server raises the delay to its
        value (still capped — the server does not get to park a client
        forever), and the result is jittered into ``[0.5, 1.0)`` of
        itself so many workers hammering one recovering node desynchronize
        instead of arriving in waves.
        """
        delay = min(self.max_backoff, self.backoff * (2 ** (attempt - 1)))
        if retry_after is not None:
            try:
                delay = min(self.max_backoff, max(delay, float(retry_after)))
            except ValueError:
                pass  # HTTP-date form (or garbage): keep the backoff
        return delay * (0.5 + 0.5 * self._jitter.random())

    def _expect(
        self, method: str, path: str, body: Optional[bytes], *statuses: int
    ) -> Tuple[int, bytes]:
        status, payload = self._request(method, path, body)
        if status not in statuses:
            raise StoreUnavailable(
                f"served store {self.url} answered {method} {path} "
                f"with unexpected status {status}"
            )
        return status, payload

    def close(self) -> None:
        """Close every pooled connection (idempotent)."""
        with self._lock:
            for conn in self._pool:
                conn.close()
            self._pool.clear()

    def _stats(self) -> Dict[str, Any]:
        _, payload = self._expect("GET", "/stats", None, 200)
        return json.loads(payload.decode("utf-8"))

    def healthz(self) -> Optional[Dict[str, Any]]:
        """One cheap liveness probe: the ``/healthz`` payload, or
        ``None`` when the node did not answer.

        Deliberately *not* routed through :meth:`_request`: health
        checks must answer "is it up *right now*?", so there are no
        retries and no backoff — one attempt, one verdict.  The only
        replay is the pool freebie: a parked keep-alive connection the
        server closed while it idled says nothing about liveness.
        """
        while True:
            conn, reused = self._acquire()
            try:
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                status = response.status
                payload = response.read()
            except (OSError, http.client.HTTPException):
                conn.close()
                if reused:
                    continue
                return None
            if status != 200:
                self._release(conn)
                return None
            self._release(conn)
            return json.loads(payload.decode("utf-8"))

    # ------------------------------------------------------------------
    # Documents
    # ------------------------------------------------------------------
    def get_doc(self, fingerprint: str) -> Optional[str]:
        """GET one document's canonical-JSON text (404 = miss)."""
        status, payload = self._expect(
            "GET", f"/docs/{fingerprint}", None, 200, 404
        )
        return payload.decode("utf-8") if status == 200 else None

    def put_doc(self, fingerprint: str, text: str) -> None:
        """PUT one document (idempotent: same key, same canonical text)."""
        self._expect("PUT", f"/docs/{fingerprint}", text.encode("utf-8"), 204)

    def delete_doc(self, fingerprint: str) -> None:
        """DELETE one document (a no-op when absent)."""
        self._expect("DELETE", f"/docs/{fingerprint}", None, 204)

    def iter_docs(self) -> Iterator[str]:
        """Every stored fingerprint (one JSON listing request)."""
        _, payload = self._expect("GET", "/docs", None, 200)
        return iter(json.loads(payload.decode("utf-8")))

    def doc_count(self) -> int:
        """The served engine's document count."""
        return int(self._stats()["documents"])

    # ------------------------------------------------------------------
    # Blobs
    # ------------------------------------------------------------------
    def get_blob(self, key: str) -> Optional[bytes]:
        """GET one blob's payload bytes (404 = miss)."""
        status, payload = self._expect("GET", f"/blobs/{key}", None, 200, 404)
        return payload if status == 200 else None

    def put_blob(self, key: str, payload: bytes) -> None:
        """PUT one blob (idempotent: content-addressed key)."""
        self._expect("PUT", f"/blobs/{key}", bytes(payload), 204)

    def delete_blob(self, key: str) -> None:
        """DELETE one blob (a no-op when absent)."""
        self._expect("DELETE", f"/blobs/{key}", None, 204)

    def iter_blobs(self) -> Iterator[str]:
        """Every stored blob key (one JSON listing request)."""
        _, payload = self._expect("GET", "/blobs", None, 200)
        return iter(json.loads(payload.decode("utf-8")))

    def blob_count(self) -> int:
        """The served engine's blob count."""
        return int(self._stats()["blobs"])

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def clear_documents(self) -> int:
        """Drop every served document; returns how many were removed."""
        _, payload = self._expect("DELETE", "/docs", None, 200)
        return int(json.loads(payload.decode("utf-8"))["removed"])

    def clear_blobs(self) -> int:
        """Drop every served blob; returns how many were removed."""
        _, payload = self._expect("DELETE", "/blobs", None, 200)
        return int(json.loads(payload.decode("utf-8"))["removed"])

    def disk_bytes(self) -> int:
        """The served engine's on-disk footprint (its media, not ours)."""
        return int(self._stats()["disk_bytes"])


# ----------------------------------------------------------------------
# Service
# ----------------------------------------------------------------------
class StoreHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server fronting one :class:`StoreBackend`.

    ``fault_injector`` is a test seam: when set (see
    ``tests/runtime/fault_injection.py``), every request consults it
    and may be dropped, delayed, failed with a 5xx, or have its
    response body truncated — the harness the retry semantics are
    proven against.  Production serving leaves it ``None``.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], engine: StoreBackend):
        super().__init__(address, _StoreRequestHandler)
        self.engine = engine
        #: Optional ``(method, path) -> action`` hook; see module docs.
        self.fault_injector: Optional[Callable[[str, str], Any]] = None
        #: When set, injected 503s carry ``Retry-After: <seconds>`` so
        #: tests can prove the client honors the server's pacing hint.
        self.retry_after_hint: Optional[float] = None
        #: Graceful-shutdown state.  Handler threads are daemons (a
        #: keep-alive connection parks its thread in ``readline()``
        #: indefinitely, so joining *threads* would hang); instead the
        #: server counts in-flight *requests* and :meth:`drain` waits
        #: for that count to reach zero.
        self.draining = False
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._idle = threading.Event()
        self._idle.set()

    def request_began(self) -> None:
        with self._inflight_lock:
            self._inflight += 1
            self._idle.clear()

    def request_ended(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1
            if self._inflight <= 0:
                self._idle.set()

    def drain(self, timeout: float = 10.0) -> bool:
        """Wait until no request is mid-flight (idle keep-alive
        connections don't count — they die with the process, and
        pooled clients replay over a fresh connection).  Returns
        ``False`` if requests were still running at the deadline."""
        return self._idle.wait(timeout)

    @property
    def url(self) -> str:
        """The ``http://host:port`` clients connect to."""
        host = self.server_address[0]
        return f"http://{host}:{self.server_port}"

    def handle_error(self, request, client_address) -> None:
        """Keep stderr quiet when a client cut the wire mid-request.

        Torn connections are routine for a retrying fleet (and the
        whole point of the fault harness); anything else still gets
        the default traceback.
        """
        import sys

        exc = sys.exc_info()[1]
        if isinstance(exc, (ConnectionError, TimeoutError, socket.timeout)):
            return
        super().handle_error(request, client_address)

    def server_close(self) -> None:  # pragma: no cover - shutdown path
        super().server_close()
        self.engine.close()


class _StoreRequestHandler(BaseHTTPRequestHandler):
    """Routes the wire protocol onto the served engine.

    Every successful response carries an exact ``Content-Length`` (the
    keep-alive contract HTTP/1.1 clients pool connections on).  Request
    bodies are read to exactly the declared length; a short read — a
    client that died or a fault injector that cut the wire — yields 408
    and, crucially, **no engine write**.
    """

    protocol_version = "HTTP/1.1"
    #: Headers and body go out as separate TCP segments; without
    #: TCP_NODELAY, Nagle holds the body until the client's delayed ACK
    #: (~40ms per GET on Linux).
    disable_nagle_algorithm = True
    server: StoreHTTPServer

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr logging (servers run in tests)."""

    def _inject(self) -> Optional[str]:
        """Consult the fault injector; returns a terminal action or None.

        ``drop`` closes the connection without a response; ``error``
        sends a 503; ``("delay", seconds)`` sleeps then proceeds;
        ``truncate`` is handled at response-write time (the headers
        promise more bytes than the wire delivers).
        """
        injector = self.server.fault_injector
        if injector is None:
            return None
        action = injector(self.command, self.path)
        if action is None or action == "ok":
            return None
        if isinstance(action, tuple) and action and action[0] == "delay":
            time.sleep(float(action[1]))
            return None
        return str(action)

    def _reply(
        self,
        status: int,
        body: bytes = b"",
        content_type: str = "application/octet-stream",
        truncate: bool = False,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        if truncate and body:
            # Promise the full body, deliver half, cut the wire: the
            # client must see IncompleteRead, never a short payload.
            self.wfile.write(body[: max(1, len(body) // 2)])
            self.close_connection = True
            return
        if body:
            self.wfile.write(body)

    def _reply_json(self, payload: Any, truncate: bool = False) -> None:
        self._reply(
            200,
            json.dumps(payload).encode("utf-8"),
            content_type="application/json",
            truncate=truncate,
        )

    def _read_body(self) -> Optional[bytes]:
        """The request body, or ``None`` when it arrived short."""
        self._body_consumed = True
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            return None
        body = self.rfile.read(length) if length else b""
        if len(body) != length:
            return None
        return body

    def _route(self) -> Optional[Tuple[str, Optional[str]]]:
        """``(collection, key-or-None)`` for /docs, /blobs, /stats,
        /healthz."""
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if len(parts) == 1 and parts[0] in ("docs", "blobs", "stats", "healthz"):
            return parts[0], None
        if len(parts) == 2 and parts[0] in ("docs", "blobs"):
            return parts[0], parts[1]
        return None

    # ------------------------------------------------------------------
    # Methods
    # ------------------------------------------------------------------
    def _handle(self) -> None:
        self._body_consumed = False
        self.server.request_began()
        try:
            self._dispatch()
        finally:
            self.server.request_ended()
            if self.server.draining:
                # Finish this response, then give up the keep-alive:
                # a draining server must not accept request N+1.
                self.close_connection = True
            # A reply sent before the request body was read (injected
            # 503, bad key, engine error …) leaves those bytes in the
            # keep-alive stream, where they would desync the next
            # request on this connection.  Close instead.
            try:
                length = int(self.headers.get("Content-Length", 0) or 0)
            except (TypeError, ValueError):
                length = 1
            if length and not self._body_consumed:
                self.close_connection = True

    def _dispatch(self) -> None:
        action = self._inject()
        if action == "drop":
            self.close_connection = True
            return
        if action == "error":
            hint = self.server.retry_after_hint
            self._reply(
                503,
                b"injected fault",
                content_type="text/plain",
                headers=(
                    {"Retry-After": f"{hint:g}"} if hint is not None else None
                ),
            )
            return
        truncate = action == "truncate"
        route = self._route()
        if route is None:
            self._reply(404, b"unknown path", content_type="text/plain")
            return
        collection, key = route
        if key is not None and not _KEY_PATTERN.match(key):
            self._reply(400, b"malformed key", content_type="text/plain")
            return
        engine = self.server.engine
        try:
            if self.command == "GET":
                self._do_get(engine, collection, key, truncate)
            elif self.command == "PUT":
                self._do_put(engine, collection, key)
            elif self.command == "DELETE":
                self._do_delete(engine, collection, key)
            else:
                self._reply(405, b"method not allowed", content_type="text/plain")
        except Exception as exc:  # engine trouble -> retryable 500
            self._reply(500, repr(exc).encode("utf-8"), content_type="text/plain")

    def _do_get(
        self,
        engine: StoreBackend,
        collection: str,
        key: Optional[str],
        truncate: bool,
    ) -> None:
        if collection == "healthz":
            # The liveness probe must stay cheap under load: it answers
            # from process state alone and never touches the engine.
            self._reply_json(
                {"ok": True, "engine": engine.name, "url": self.server.url},
                truncate=truncate,
            )
            return
        if collection == "stats":
            self._reply_json(
                {
                    "engine": engine.name,
                    "url": engine.url,
                    "documents": engine.doc_count(),
                    "blobs": engine.blob_count(),
                    "disk_bytes": engine.disk_bytes(),
                },
                truncate=truncate,
            )
            return
        if key is None:
            keys = sorted(
                engine.iter_docs() if collection == "docs" else engine.iter_blobs()
            )
            self._reply_json(keys, truncate=truncate)
            return
        if collection == "docs":
            text = engine.get_doc(key)
            if text is None:
                self._reply(404, b"no such document", content_type="text/plain")
                return
            self._reply(
                200,
                text.encode("utf-8"),
                content_type="text/plain; charset=utf-8",
                truncate=truncate,
            )
            return
        payload = engine.get_blob(key)
        if payload is None:
            self._reply(404, b"no such blob", content_type="text/plain")
            return
        self._reply(200, payload, truncate=truncate)

    def _do_put(
        self, engine: StoreBackend, collection: str, key: Optional[str]
    ) -> None:
        if key is None or collection not in ("docs", "blobs"):
            self._reply(405, b"method not allowed", content_type="text/plain")
            return
        body = self._read_body()
        if body is None:
            # Short body: the write never reaches the engine, so a torn
            # request can never surface as a torn document.
            self._reply(408, b"incomplete body", content_type="text/plain")
            self.close_connection = True
            return
        if collection == "docs":
            engine.put_doc(key, body.decode("utf-8"))
        else:
            engine.put_blob(key, body)
        self._reply(204)

    def _do_delete(
        self, engine: StoreBackend, collection: str, key: Optional[str]
    ) -> None:
        if collection in ("stats", "healthz"):
            self._reply(405, b"method not allowed", content_type="text/plain")
            return
        if key is None:
            removed = (
                engine.clear_documents()
                if collection == "docs"
                else engine.clear_blobs()
            )
            self._reply_json({"removed": removed})
            return
        if collection == "docs":
            engine.delete_doc(key)
        else:
            engine.delete_blob(key)
        self._reply(204)

    do_GET = _handle
    do_PUT = _handle
    do_DELETE = _handle
    do_POST = _handle
    do_HEAD = _handle


def serve_store(
    target: Any, host: str = "127.0.0.1", port: int = 0
) -> StoreHTTPServer:
    """Build (but do not start) a store service fronting ``target``.

    ``target`` is anything :func:`~repro.runtime.backends.make_backend`
    accepts *except* another ``http://`` URL — a served store proxying
    a second served store would stack two retry layers and hide which
    hop actually holds the corpus, so it is refused outright.
    ``port=0`` binds an ephemeral port; read it back from
    :attr:`StoreHTTPServer.url`.  Callers run the returned server with
    ``serve_forever()`` (the CLI blocks on it; tests run it in a
    daemon thread) and must ``shutdown()``/``server_close()`` it.
    """
    from . import make_backend

    engine = make_backend(target)
    if isinstance(engine, HttpBackend):
        raise ValueError(
            f"refusing to front another served store ({engine.url}); "
            "point store-serve at a directory, sqlite, or memory engine"
        )
    return StoreHTTPServer((host, port), engine)


def install_graceful_shutdown(
    server: StoreHTTPServer,
    signals: Tuple[int, ...] = (signal.SIGTERM, signal.SIGINT),
) -> Callable[[], None]:
    """Make SIGTERM/SIGINT drain the server instead of tearing it down.

    The handler marks the server draining (in-flight requests finish
    with complete responses; every connection then gives up its
    keep-alive) and stops the accept loop, so ``serve_forever()``
    returns.  The caller then waits out the last requests with
    :meth:`StoreHTTPServer.drain` before ``server_close()`` — the CLI
    does exactly this — and a retrying fleet (or a CI teardown, or
    the golden node-revive test) never sees the shutdown as a torn
    connection.

    ``shutdown()`` deadlocks when called from the thread running
    ``serve_forever()`` — and a signal handler runs exactly there in
    the single-threaded CLI case — so the handler hands it to a
    helper thread.  Returns a callable that reinstates the previous
    handlers (tests install/restore around a temporary server).
    """
    previous = {}

    def _drain(signum: int, frame: Any) -> None:
        server.draining = True
        threading.Thread(
            target=server.shutdown, name="store-serve-drain", daemon=True
        ).start()

    for sig in signals:
        previous[sig] = signal.signal(sig, _drain)

    def restore() -> None:
        for sig, handler in previous.items():
            signal.signal(sig, handler)

    return restore
