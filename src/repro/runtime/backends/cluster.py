"""The replicated multi-node store fabric: hash-sharded fan-out engine.

A single served store (:mod:`.http`) puts the corpus on the network,
but one crash still strands every worker.  This module is the fifth
registered engine, ``cluster://``: a *composite* backend that fans
fingerprint-keyed documents and content-addressed blobs out across N
child stores — any registered engine, typically several ``http://``
nodes fronted by ``repro store-serve`` — and keeps a sweep running
through the death of a node.

**Placement** is rendezvous (highest-random-weight) hashing: every key
scores each node by ``sha256(node_identity | key)`` and its replica
set is the R best-scoring nodes, in that deterministic *preference
order*.  No ring state, no rebalancing metadata — two processes that
open the same topology compute the same placement, which is what lets
:meth:`~repro.runtime.store.ResultStore.share_target` hand the fabric
to pool workers as a plain URL.

**Writes** go to all R replicas.  The operation acks once a write
quorum (``⌈R/2⌉`` by default, always at least 1) of replicas applied
it; replicas that failed — or whose circuit breaker is open — become
*write-behind repairs*: the (idempotent) operation is queued per node
and replayed when the node answers again, opportunistically before
foreground operations and exhaustively via :meth:`repair`.

**Reads** try replicas in preference order and fail over on transport
faults.  A document found on a later replica after an earlier replica
answered a definitive miss triggers **read repair**: the document is
re-propagated to the missing replicas (directly when they are up,
through the repair queue when not).  A miss is only declared once at
least one replica answered definitively; if every replica faulted the
operation raises :class:`~repro.runtime.backends.http.StoreUnavailable`.

**Health** is tracked per node with a consecutive-failure circuit
breaker: after ``breaker_threshold`` back-to-back transport faults the
node's circuit opens and foreground operations stop paying its
timeout.  Reopen probes are scheduled with exponential backoff and
*seeded jitter* (a :class:`random.Random` seeded per fabric), so a
fleet of clients does not stampede a recovering node in lockstep.

All of this is uniformly safe because every operation in the store
protocol is idempotent by construction — keys are content
fingerprints, and the façade hands every backend the same canonical
text for the same key — so replays, repairs, and double-sends are
invisible in the corpus.  The fabric's correctness bar is the golden
node-loss wall (``tests/golden/test_cluster_golden.py``): a seeded
sweep through a 3-node/R=2 fabric that loses a node mid-run completes
with zero data loss and exports byte-identically to the directory
engine.

Topology selection::

    REPRO_STORE=cluster://replicas=2;http://a:8377;http://b:8377;http://c:8377

or a JSON spec (inline, or via ``REPRO_STORE_CLUSTER`` when the URL is
a bare ``cluster://``)::

    REPRO_STORE_CLUSTER='{"nodes": ["http://a:8377", "http://b:8377"], "replicas": 2}'
    REPRO_STORE=cluster://

Knobs (constructor arguments win over the environment):

``REPRO_CLUSTER_BREAKER``
    Consecutive transport faults that open a node's circuit (default 3).
``REPRO_CLUSTER_PROBE_BASE``
    Base reopen-probe delay in seconds, doubled per consecutive open
    (default 0.5).
``REPRO_CLUSTER_PROBE_CAP``
    Upper bound on the reopen-probe delay in seconds (default 15).
``REPRO_CLUSTER_SEED``
    Seed for the jittered probe schedule (default 2014).
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import threading
import time
from collections import OrderedDict
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .base import StoreBackend
from .http import StoreUnavailable, _env_float, _env_int

__all__ = ["ClusterBackend", "parse_cluster_spec"]

#: Environment knobs (constructor arguments override).
_ENV_TOPOLOGY = "REPRO_STORE_CLUSTER"
_ENV_BREAKER = "REPRO_CLUSTER_BREAKER"
_ENV_PROBE_BASE = "REPRO_CLUSTER_PROBE_BASE"
_ENV_PROBE_CAP = "REPRO_CLUSTER_PROBE_CAP"
_ENV_SEED = "REPRO_CLUSTER_SEED"

_DEFAULT_BREAKER = 3
_DEFAULT_PROBE_BASE = 0.5
_DEFAULT_PROBE_CAP = 15.0
_DEFAULT_SEED = 2014

#: Exceptions treated as "the node is unreachable" (never as data).
#: ``StoreUnavailable`` subclasses ``ConnectionError``; socket timeouts
#: are ``OSError``.  Anything else — a malformed key, an engine bug —
#: propagates: retrying it elsewhere would mask a real defect.
TRANSPORT_FAULTS = (ConnectionError, TimeoutError, OSError)

#: Sentinel queued for a delete that must be replayed on a dead node.
_TOMBSTONE = object()

#: Repair operations attempted per node before a foreground operation.
_DRAIN_BUDGET = 8


def parse_cluster_spec(
    spec: Optional[str],
) -> Tuple[List[str], Dict[str, int]]:
    """``(node targets, options)`` from a topology spec string.

    Accepts the compact form — ``;``-separated node targets with
    ``replicas=N`` / ``quorum=N`` option segments — or a JSON object
    with ``nodes`` (required), ``replicas``, and ``quorum``.  An empty
    or ``None`` spec falls back to ``REPRO_STORE_CLUSTER`` (same two
    grammars).  Raises :class:`ValueError` when no nodes are named.
    """
    text = (spec or "").strip()
    if not text:
        text = os.environ.get(_ENV_TOPOLOGY, "").strip()
    if not text:
        raise ValueError(
            "cluster store has no topology: pass cluster://<spec> or set "
            f"{_ENV_TOPOLOGY} (nodes separated by ';', e.g. "
            "cluster://replicas=2;http://a:8377;http://b:8377)"
        )
    options: Dict[str, int] = {}
    if text.startswith("{"):
        payload = json.loads(text)
        nodes = [str(node).strip() for node in payload.get("nodes", [])]
        for key in ("replicas", "quorum"):
            if payload.get(key) is not None:
                options[key] = int(payload[key])
    else:
        nodes = []
        for segment in text.split(";"):
            segment = segment.strip()
            if not segment:
                continue
            name, sep, value = segment.partition("=")
            if sep and name.strip().lower() in ("replicas", "quorum"):
                options[name.strip().lower()] = int(value)
            else:
                nodes.append(segment)
    nodes = [node for node in nodes if node]
    if not nodes:
        raise ValueError(f"cluster spec names no nodes: {spec!r}")
    return nodes, options


class _Node:
    """One child store plus its health state and repair queue."""

    def __init__(self, backend: StoreBackend, ident: str):
        self.backend = backend
        #: Stable identity string placement hashes on (the node's
        #: target URL; uniquified by index when targets collide).
        self.ident = ident
        self.failures = 0  # consecutive transport faults
        self.opens = 0  # consecutive circuit openings (backoff exponent)
        self.open_until = 0.0  # monotonic deadline of the open circuit
        self.last_delay = 0.0  # most recent jittered reopen delay
        self.last_error: Optional[str] = None
        #: Write-behind repairs: (collection, key) → payload/_TOMBSTONE.
        #: Keyed so a newer write to the same key supersedes the queued
        #: one instead of replaying stale bytes after it.
        self.repairs: "OrderedDict[Tuple[str, str], Any]" = OrderedDict()

    @property
    def circuit(self) -> str:
        """``closed``, ``open``, or ``probing`` (reopen probe due)."""
        if self.failures == 0 or self.open_until == 0.0:
            return "closed"
        return "probing" if time.monotonic() >= self.open_until else "open"

    def usable(self) -> bool:
        """Whether a foreground operation should pay this node a visit."""
        return self.circuit != "open"


class ClusterBackend(StoreBackend):
    """Hash-sharded, replicated fan-out over N child store backends.

    ``spec`` is the topology string (see :func:`parse_cluster_spec`);
    tests may instead pass live ``nodes`` directly.  ``client_options``
    are forwarded to ``http://`` children (timeout/retries/backoff),
    letting one knob tune the whole fabric's failover latency.
    """

    name = "cluster"

    def __init__(
        self,
        spec: Optional[str] = None,
        nodes: Optional[Sequence[Union[str, StoreBackend]]] = None,
        replicas: Optional[int] = None,
        quorum: Optional[int] = None,
        seed: Optional[int] = None,
        breaker_threshold: Optional[int] = None,
        probe_base: Optional[float] = None,
        probe_cap: Optional[float] = None,
        client_options: Optional[Dict[str, Any]] = None,
    ):
        from . import make_backend

        options: Dict[str, int] = {}
        if nodes is None:
            targets, options = parse_cluster_spec(spec)
            nodes = list(targets)
        built: List[_Node] = []
        seen: Dict[str, int] = {}
        for index, node in enumerate(nodes):
            if isinstance(node, StoreBackend):
                backend = node
            else:
                backend = make_backend(str(node))
                if client_options and hasattr(backend, "retries"):
                    for attr in ("timeout", "retries", "backoff"):
                        if attr in client_options:
                            setattr(backend, attr, client_options[attr])
            ident = backend.url if isinstance(node, StoreBackend) else str(node)
            if ident in seen or ident == "memory://":
                ident = f"{index}#{ident}"  # uniquify for placement
            seen[ident] = index
            built.append(_Node(backend, ident))
        if not built:
            raise ValueError("cluster store needs at least one node")
        self._nodes = built
        replicas = replicas if replicas is not None else options.get("replicas", 2)
        self.replicas = max(1, min(int(replicas), len(built)))
        self._explicit_quorum = (
            quorum if quorum is not None else options.get("quorum")
        )
        default_quorum = (self.replicas + 1) // 2  # ⌈R/2⌉, ≥ 1
        self.quorum = max(
            1,
            min(
                int(self._explicit_quorum)
                if self._explicit_quorum is not None
                else default_quorum,
                self.replicas,
            ),
        )
        self.breaker_threshold = max(
            1,
            int(breaker_threshold)
            if breaker_threshold is not None
            else _env_int(_ENV_BREAKER, _DEFAULT_BREAKER),
        )
        self.probe_base = (
            float(probe_base)
            if probe_base is not None
            else _env_float(_ENV_PROBE_BASE, _DEFAULT_PROBE_BASE)
        )
        self.probe_cap = (
            float(probe_cap)
            if probe_cap is not None
            else _env_float(_ENV_PROBE_CAP, _DEFAULT_PROBE_CAP)
        )
        self._rng = random.Random(
            int(seed) if seed is not None else _env_int(_ENV_SEED, _DEFAULT_SEED)
        )
        self._lock = threading.RLock()
        #: Operational counters for ``repro cluster-status`` and tests.
        self.counters: Dict[str, int] = {
            "write_acks": 0,
            "write_stragglers": 0,
            "read_failovers": 0,
            "read_repairs": 0,
            "repairs_drained": 0,
        }

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        """The canonical ``cluster://`` spec — round-trips through the
        URL parser, so pool workers reopen the exact same topology."""
        segments = [f"replicas={self.replicas}"]
        if self._explicit_quorum is not None:
            segments.append(f"quorum={self.quorum}")
        segments.extend(node.ident.split("#", 1)[-1] for node in self._nodes)
        return "cluster://" + ";".join(segments)

    @property
    def persistent(self) -> bool:
        """Shareable only when *every* child is: one memory node would
        silently drop its shard of the corpus across a process hop."""
        return all(node.backend.persistent for node in self._nodes)

    def close(self) -> None:
        """Close every child (queued repairs stay queued: they are
        re-derivable — idempotent writes of content the corpus already
        acked elsewhere — not durable state)."""
        for node in self._nodes:
            node.backend.close()

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _preference(self, key: str) -> List[_Node]:
        """Every node ordered by rendezvous score for ``key``."""
        return sorted(
            self._nodes,
            key=lambda node: hashlib.sha256(
                f"{node.ident}|{key}".encode("utf-8")
            ).digest(),
        )

    def replicas_for(self, key: str) -> List[StoreBackend]:
        """The R child backends holding ``key``, in preference order
        (public so tests and the status CLI can audit placement)."""
        return [node.backend for node in self._preference(key)[: self.replicas]]

    # ------------------------------------------------------------------
    # Health tracking
    # ------------------------------------------------------------------
    def _mark_success(self, node: _Node) -> None:
        with self._lock:
            node.failures = 0
            node.opens = 0
            node.open_until = 0.0
            node.last_error = None

    def _mark_failure(self, node: _Node, error: BaseException) -> None:
        """Count a transport fault; open the circuit at the threshold.

        The reopen probe is scheduled with exponential backoff and
        seeded jitter in ``[0.5, 1.0) × delay`` so a fleet's probes
        spread out instead of stampeding a recovering node.
        """
        with self._lock:
            node.failures += 1
            node.last_error = repr(error)
            if node.failures >= self.breaker_threshold:
                delay = min(
                    self.probe_cap, self.probe_base * (2 ** min(node.opens, 6))
                )
                delay *= 0.5 + 0.5 * self._rng.random()
                node.opens += 1
                node.last_delay = delay
                node.open_until = time.monotonic() + delay

    def _attempt(
        self, node: _Node, operation: Callable[[StoreBackend], Any]
    ) -> Tuple[bool, Any]:
        """``(ok, result)`` for one child operation, health-tracked."""
        try:
            result = operation(node.backend)
        except TRANSPORT_FAULTS as exc:
            self._mark_failure(node, exc)
            return False, exc
        self._mark_success(node)
        return True, result

    # ------------------------------------------------------------------
    # Write-behind repair
    # ------------------------------------------------------------------
    def _queue_repair(self, node: _Node, collection: str, key: str, payload: Any) -> None:
        with self._lock:
            node.repairs[(collection, key)] = payload
            self.counters["write_stragglers"] += 1

    def _apply_repair(
        self, backend: StoreBackend, collection: str, key: str, payload: Any
    ) -> None:
        if payload is _TOMBSTONE:
            if collection == "docs":
                backend.delete_doc(key)
            else:
                backend.delete_blob(key)
        elif collection == "docs":
            backend.put_doc(key, payload)
        else:
            backend.put_blob(key, payload)

    def _drain_node(self, node: _Node, budget: int, force: bool = False) -> int:
        """Replay up to ``budget`` queued repairs against one node."""
        drained = 0
        while drained < budget:
            with self._lock:
                if not node.repairs or not (force or node.usable()):
                    break
                (collection, key), payload = next(iter(node.repairs.items()))
            ok, _ = self._attempt(
                node, lambda b: self._apply_repair(b, collection, key, payload)
            )
            if not ok:
                break
            with self._lock:
                # Drop the entry only if a newer write did not replace
                # it while the replay was in flight.
                if node.repairs.get((collection, key)) is payload:
                    node.repairs.pop((collection, key), None)
            drained += 1
        with self._lock:
            self.counters["repairs_drained"] += drained
        return drained

    def _drain_repairs(self) -> None:
        """Opportunistic pre-op drain for nodes that look reachable."""
        for node in self._nodes:
            if node.repairs and node.usable():
                self._drain_node(node, _DRAIN_BUDGET)

    def repair(self) -> Dict[str, int]:
        """Replay every queued repair, forcing probes on open circuits.

        Returns ``{"drained": …, "pending": …}`` — the node-revive
        path (``repro cluster-status --repair`` and the golden revive
        test) calls this to converge the fabric after an outage.
        """
        drained = 0
        for node in self._nodes:
            while node.repairs:
                step = self._drain_node(node, _DRAIN_BUDGET, force=True)
                if step == 0:
                    break
                drained += step
        pending = sum(len(node.repairs) for node in self._nodes)
        return {"drained": drained, "pending": pending}

    # ------------------------------------------------------------------
    # Replicated primitives
    # ------------------------------------------------------------------
    def _replicated_write(
        self,
        collection: str,
        key: str,
        payload: Any,
        operation: Callable[[StoreBackend], Any],
    ) -> None:
        """Fan one idempotent write to all R replicas, quorum-acked.

        Replicas that fault — or whose circuit is open and were not
        needed for quorum — become write-behind repairs.  Raises
        :class:`StoreUnavailable` when fewer than the write quorum
        acked even after forcing probes on open circuits.
        """
        self._drain_repairs()
        replicas = self._preference(key)[: self.replicas]
        acked = 0
        pending: List[_Node] = []
        deferred: List[_Node] = []
        for node in replicas:
            if not node.usable():
                deferred.append(node)
                continue
            ok, _ = self._attempt(node, operation)
            if ok:
                acked += 1
            else:
                pending.append(node)
        # Open-circuit replicas are only probed when quorum needs them;
        # otherwise they get the write via the repair queue.
        for node in deferred:
            if acked >= self.quorum:
                pending.append(node)
                continue
            ok, _ = self._attempt(node, operation)
            if ok:
                acked += 1
            else:
                pending.append(node)
        for node in pending:
            self._queue_repair(node, collection, key, payload)
        if acked < self.quorum:
            raise StoreUnavailable(
                f"cluster write quorum not met for {collection}/{key}: "
                f"{acked}/{self.quorum} replicas acked "
                f"(replicas: {', '.join(n.ident for n in replicas)})"
            )
        with self._lock:
            self.counters["write_acks"] += acked

    def _read_repair(
        self, collection: str, key: str, value: Any, missing: List[_Node]
    ) -> None:
        """Re-propagate a document found on only a subset of replicas."""
        if not missing:
            return
        payload = value
        for node in missing:
            if node.usable():
                ok, _ = self._attempt(
                    node,
                    lambda b: self._apply_repair(b, collection, key, payload),
                )
                if ok:
                    with self._lock:
                        self.counters["read_repairs"] += 1
                    continue
            self._queue_repair(node, collection, key, payload)

    def _replicated_read(
        self, collection: str, key: str, operation: Callable[[StoreBackend], Any]
    ) -> Any:
        """Failover read across the replica preference order.

        Returns the first non-``None`` answer (read-repairing earlier
        definitive misses), ``None`` once at least one replica answered
        definitively, and raises :class:`StoreUnavailable` only when
        every replica faulted.
        """
        self._drain_repairs()
        replicas = self._preference(key)[: self.replicas]
        missing: List[_Node] = []
        answered = 0
        faulted = 0
        # Pass 1: usable replicas in preference order; pass 2 forces
        # probes on open circuits only if nothing answered at all.
        for forced in (False, True):
            for node in replicas:
                if node.usable() == forced:
                    continue
                ok, result = self._attempt(node, operation)
                if not ok:
                    faulted += 1
                    continue
                answered += 1
                if result is not None:
                    if faulted or missing:
                        with self._lock:
                            self.counters["read_failovers"] += 1
                    self._read_repair(collection, key, result, missing)
                    return result
                missing.append(node)
            if answered:
                return None
        raise StoreUnavailable(
            f"cluster read failed for {collection}/{key}: all "
            f"{len(replicas)} replica(s) unreachable "
            f"({', '.join(n.ident for n in replicas)})"
        )

    def _union(self, lister: Callable[[StoreBackend], Iterator[str]]) -> List[str]:
        """The sorted union of one listing across reachable nodes.

        A node that faults is skipped (its keys are replicated
        elsewhere — the single-node-loss contract); if *every* node
        faults the listing raises.
        """
        self._drain_repairs()
        keys: set = set()
        answered = 0
        for forced in (False, True):
            for node in self._nodes:
                if node.usable() == forced:
                    continue
                ok, result = self._attempt(node, lambda b: list(lister(b)))
                if ok:
                    answered += 1
                    keys.update(result)
            if answered:
                return sorted(keys)
        raise StoreUnavailable(
            f"cluster listing failed: all {len(self._nodes)} node(s) "
            "unreachable"
        )

    # ------------------------------------------------------------------
    # Documents
    # ------------------------------------------------------------------
    def get_doc(self, fingerprint: str) -> Optional[str]:
        """Failover read of one document across its replicas."""
        return self._replicated_read(
            "docs", fingerprint, lambda b: b.get_doc(fingerprint)
        )

    def put_doc(self, fingerprint: str, text: str) -> None:
        """Quorum-acked replicated write of one document."""
        self._replicated_write(
            "docs", fingerprint, text, lambda b: b.put_doc(fingerprint, text)
        )

    def delete_doc(self, fingerprint: str) -> None:
        """Replicated delete; unreachable replicas get a tombstone
        repair so the document cannot resurrect when they revive."""
        self._replicated_write(
            "docs",
            fingerprint,
            _TOMBSTONE,
            lambda b: b.delete_doc(fingerprint),
        )

    def iter_docs(self) -> Iterator[str]:
        """The union of every reachable node's documents (sorted)."""
        return iter(self._union(lambda b: b.iter_docs()))

    def doc_count(self) -> int:
        """Distinct logical documents across the fabric."""
        return len(self._union(lambda b: b.iter_docs()))

    # ------------------------------------------------------------------
    # Blobs
    # ------------------------------------------------------------------
    def get_blob(self, key: str) -> Optional[bytes]:
        """Failover read of one blob across its replicas."""
        return self._replicated_read("blobs", key, lambda b: b.get_blob(key))

    def put_blob(self, key: str, payload: bytes) -> None:
        """Quorum-acked replicated write of one blob."""
        payload = bytes(payload)
        self._replicated_write(
            "blobs", key, payload, lambda b: b.put_blob(key, payload)
        )

    def delete_blob(self, key: str) -> None:
        """Replicated blob delete with tombstone repair."""
        self._replicated_write(
            "blobs", key, _TOMBSTONE, lambda b: b.delete_blob(key)
        )

    def iter_blobs(self) -> Iterator[str]:
        """The union of every reachable node's blobs (sorted)."""
        return iter(self._union(lambda b: b.iter_blobs()))

    def blob_count(self) -> int:
        """Distinct logical blobs across the fabric."""
        return len(self._union(lambda b: b.iter_blobs()))

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def clear_documents(self) -> int:
        """Drop every document fabric-wide; returns the union count."""
        docs = self.doc_count()

        def clear_node(backend: StoreBackend) -> int:
            return backend.clear_documents()

        for node in self._nodes:
            ok, result = self._attempt(node, clear_node)
            if not ok:
                raise StoreUnavailable(
                    f"cluster clear failed: node {node.ident} unreachable"
                )
        with self._lock:
            for node in self._nodes:
                for pending in [k for k in node.repairs if k[0] == "docs"]:
                    node.repairs.pop(pending, None)
        return docs

    def clear_blobs(self) -> int:
        """Drop every blob fabric-wide; returns the union count."""
        blobs = self.blob_count()

        def clear_node(backend: StoreBackend) -> int:
            return backend.clear_blobs()

        for node in self._nodes:
            ok, result = self._attempt(node, clear_node)
            if not ok:
                raise StoreUnavailable(
                    f"cluster clear failed: node {node.ident} unreachable"
                )
        with self._lock:
            for node in self._nodes:
                for pending in [k for k in node.repairs if k[0] == "blobs"]:
                    node.repairs.pop(pending, None)
        return blobs

    def disk_bytes(self) -> int:
        """Total footprint across reachable nodes (replicas included —
        this is what the fabric actually occupies, R× the corpus)."""
        total = 0
        for node in self._nodes:
            if not node.usable():
                continue
            ok, result = self._attempt(node, lambda b: b.disk_bytes())
            if ok:
                total += int(result)
        return total

    # ------------------------------------------------------------------
    # Introspection (repro cluster-status)
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        """Per-node health, circuit state, repair depth, and counts.

        Health is probed cheaply: ``/healthz`` for ``http://`` children
        (one request, no engine work on the server), a document count
        for local engines.  Probing ignores the circuit breaker — this
        is the observability path, and "is it back yet?" is exactly
        what the operator is asking.
        """
        nodes = []
        for node in self._nodes:
            probe = getattr(node.backend, "healthz", None)
            documents = blobs = None
            if probe is not None:
                healthy = probe() is not None
            else:
                ok, result = self._attempt(node, lambda b: b.doc_count())
                healthy = ok
                documents = result if ok else None
            if healthy and documents is None:
                ok, result = self._attempt(node, lambda b: b.doc_count())
                documents = result if ok else None
                healthy = healthy and ok
            if healthy:
                ok, result = self._attempt(node, lambda b: b.blob_count())
                blobs = result if ok else None
            nodes.append(
                {
                    "url": node.ident.split("#", 1)[-1],
                    "healthy": bool(healthy),
                    "circuit": node.circuit,
                    "consecutive_failures": node.failures,
                    "pending_repairs": len(node.repairs),
                    "documents": documents,
                    "blobs": blobs,
                    "last_error": node.last_error,
                }
            )
        return {
            "nodes": nodes,
            "replicas": self.replicas,
            "quorum": self.quorum,
            "breaker_threshold": self.breaker_threshold,
            "counters": dict(self.counters),
            "url": self.url,
        }
