"""The in-process store engine: two dicts behind the backend protocol.

This is what ``ResultStore(None)`` / ``REPRO_STORE=0`` / ``memory://``
resolve to — the "disk layer off" mode the runtime has had since PR 1,
now expressed as a first-class backend so every code path (export,
migrate, stats, the backend-parametrized test suites) treats it
uniformly instead of special-casing ``root is None``.

Documents round-trip through the same canonical-JSON texts the
persistent engines store — not live dict references — so a memory
store has *identical* serialization semantics (float round-tripping
included) and exports the same canonical tree bytes as a directory or
SQLite store holding the same corpus.  ``persistent`` is False: a
second handle on ``memory://`` is a fresh empty store, which is why
the session never hands a memory store across process boundaries.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from .base import StoreBackend

__all__ = ["MemoryBackend"]


class MemoryBackend(StoreBackend):
    """Dict-backed documents + blobs; vanishes with the process."""

    name = "memory"
    persistent = False

    def __init__(self) -> None:
        self._docs: Dict[str, str] = {}
        self._blobs: Dict[str, bytes] = {}

    @property
    def url(self) -> str:
        """Always ``memory://`` — the location names no shared state."""
        return "memory://"

    # ------------------------------------------------------------------
    # Documents
    # ------------------------------------------------------------------
    def get_doc(self, fingerprint: str) -> Optional[str]:
        """The stored canonical-JSON text, or ``None``."""
        return self._docs.get(fingerprint)

    def put_doc(self, fingerprint: str, text: str) -> None:
        """Store one document's canonical-JSON text."""
        self._docs[fingerprint] = text

    def delete_doc(self, fingerprint: str) -> None:
        """Drop one document (a no-op when absent)."""
        self._docs.pop(fingerprint, None)

    def iter_docs(self) -> Iterator[str]:
        """Every stored fingerprint (snapshot tuple, mutation-safe)."""
        return iter(tuple(self._docs))

    def doc_count(self) -> int:
        """Number of stored documents."""
        return len(self._docs)

    # ------------------------------------------------------------------
    # Blobs
    # ------------------------------------------------------------------
    def get_blob(self, key: str) -> Optional[bytes]:
        """The stored payload bytes, or ``None``."""
        return self._blobs.get(key)

    def put_blob(self, key: str, payload: bytes) -> None:
        """Store one blob (copied, so callers can't mutate it later)."""
        self._blobs[key] = bytes(payload)

    def delete_blob(self, key: str) -> None:
        """Drop one blob (a no-op when absent)."""
        self._blobs.pop(key, None)

    def iter_blobs(self) -> Iterator[str]:
        """Every stored blob key (snapshot tuple, mutation-safe)."""
        return iter(tuple(self._blobs))

    def blob_count(self) -> int:
        """Number of stored blobs."""
        return len(self._blobs)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def clear_documents(self) -> int:
        """Drop every document; returns how many were held."""
        count = len(self._docs)
        self._docs.clear()
        return count

    def clear_blobs(self) -> int:
        """Drop every blob; returns how many were held."""
        count = len(self._blobs)
        self._blobs.clear()
        return count

    def disk_bytes(self) -> int:
        """Always zero: nothing ever touches disk."""
        return 0
