"""Pluggable storage backends for the result store and artifact tiers.

The :class:`~repro.runtime.store.ResultStore` used to *be* a sharded
JSON-document directory; this package makes storage an interface
instead.  Three engines ship, registered by name:

``directory``
    Today's sharded JSON tree (:mod:`.directory`) — the default, and
    the layout every other backend's canonical export reproduces
    byte-for-byte.
``sqlite``
    A single-file WAL-mode store (:mod:`.sqlite`) in the style of
    python-diskcache's core: one copyable ``store.db``, sub-millisecond
    get/put, multi-process safe.
``memory``
    Two dicts (:mod:`.memory`): the "disk layer off" mode, now a
    first-class engine.
``http``
    The network hop (:mod:`.http`): a retrying keep-alive client for a
    store served by ``repro store-serve`` — one corpus shared by a
    fleet of machines.
``cluster``
    The replicated fabric (:mod:`.cluster`): rendezvous-hash sharding
    of documents and blobs across N child stores with replication
    factor R, quorum-acked writes, failover + read-repair reads, and
    per-node circuit breakers — a corpus that survives node loss.

Selection is URL-style — ``sqlite:///path/store.db``,
``directory:///path``, ``memory://``, ``http://host:port``,
``cluster://replicas=2;http://a:8377;http://b:8377`` — via
``REPRO_STORE``, the CLI's ``--store``, or ``Session(store=...)``;
bare paths (and the historical ``REPRO_STORE=0`` toggle plus
``REPRO_CACHE_DIR``) keep meaning what they always meant:

>>> parse_store_url("sqlite:///tmp/corpus/store.db")
('sqlite', '/tmp/corpus/store.db')
>>> parse_store_url("/tmp/corpus")          # bare path: directory tree
('directory', '/tmp/corpus')
>>> parse_store_url("off")                  # legacy REPRO_STORE=0/off
('memory', None)
>>> make_backend(None).name                 # no location at all
'memory'

The byte-parity contract every backend signs:
:meth:`~repro.runtime.backends.base.StoreBackend.export_canonical`
writes the logical corpus in the directory layout, and equal corpora
export equal bytes regardless of engine (``repro cache --migrate``
moves corpora between engines on exactly this property).
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple, Type, Union

from .base import StoreBackend
from .cluster import ClusterBackend
from .directory import DirectoryBackend
from .http import (
    HttpBackend,
    StoreHTTPServer,
    install_graceful_shutdown,
    serve_store,
)
from .memory import MemoryBackend
from .sqlite import SqliteBackend

__all__ = [
    "StoreBackend",
    "DirectoryBackend",
    "SqliteBackend",
    "MemoryBackend",
    "HttpBackend",
    "ClusterBackend",
    "StoreHTTPServer",
    "serve_store",
    "install_graceful_shutdown",
    "BACKENDS",
    "parse_store_url",
    "make_backend",
]

#: Registry: URL scheme / backend name → engine class.
BACKENDS: Dict[str, Type[StoreBackend]] = {
    DirectoryBackend.name: DirectoryBackend,
    SqliteBackend.name: SqliteBackend,
    MemoryBackend.name: MemoryBackend,
    HttpBackend.name: HttpBackend,
    ClusterBackend.name: ClusterBackend,
}

#: Historical ``REPRO_STORE`` values meaning "no persistent store".
_OFF_TOKENS = ("0", "off", "false", "no", "memory")

#: What a store location may be: nothing, a backend, a path, or a URL.
StoreTarget = Union[None, StoreBackend, str, os.PathLike]


def parse_store_url(target: str) -> Tuple[str, Optional[str]]:
    """Split a store target string into ``(backend name, location)``.

    Accepts ``scheme://location`` URLs for any registered scheme, bare
    filesystem paths (the directory backend, for ``REPRO_CACHE_DIR``
    and positional-path compatibility), and the legacy off-tokens
    (``0``/``off``/``false``/``no``, plus ``memory``), which map to the
    memory backend.  Raises :class:`ValueError` on an unknown scheme or
    a schemed URL missing its required location.
    """
    text = str(target).strip()
    if text.lower() in _OFF_TOKENS:
        return MemoryBackend.name, None
    scheme, sep, rest = text.partition("://")
    if not sep:
        if not text:
            return MemoryBackend.name, None
        return DirectoryBackend.name, text  # bare path
    name = scheme.strip().lower()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown store backend {name!r} in {target!r} "
            f"(known: {', '.join(sorted(BACKENDS))})"
        )
    location = rest.strip() or None
    if (
        name not in (MemoryBackend.name, ClusterBackend.name)
        and location is None
    ):
        # A bare ``cluster://`` is legal: the topology then comes from
        # REPRO_STORE_CLUSTER (parsed when the backend is built).
        raise ValueError(f"store URL {target!r} is missing its path")
    return name, location


def make_backend(target: StoreTarget) -> StoreBackend:
    """Resolve any store target to a live backend instance.

    ``None`` → a fresh memory backend; an existing
    :class:`StoreBackend` passes through untouched; strings go through
    :func:`parse_store_url`; anything path-like becomes a directory
    backend at that root.
    """
    if target is None:
        return MemoryBackend()
    if isinstance(target, StoreBackend):
        return target
    if isinstance(target, str):
        name, location = parse_store_url(target)
        if name == MemoryBackend.name:
            return MemoryBackend()
        return BACKENDS[name](location)
    return DirectoryBackend(target)  # os.PathLike
