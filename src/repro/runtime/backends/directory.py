"""The sharded JSON-document tree: the store's original (and default)
on-disk engine, extracted verbatim from the pre-backend ``ResultStore``.

Layout, unchanged since PR 1 so existing corpora keep working and the
golden byte-parity fixtures stay byte-stable:

* documents at ``<root>/<fp[:2]>/<fp>.json`` — one canonical-JSON text
  per fingerprint, sharded by prefix so no directory grows unbounded;
* blobs at ``<root>/blobs/<key[:2]>/<key>.bin`` (the tier-2 artifact
  side; the ``blobs`` segment never collides with the two-hex-char
  document shards).

Every write — document or blob — is **atomic**: the payload goes to a
``.tmp``-suffixed temp file in the destination directory first and is
published with :func:`os.replace`.  A crash mid-``put`` therefore
leaves either the old content or an orphaned temp file (ignored by
every read path, swept by :meth:`clear_documents`), never a torn
document a later store hit would choke on.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Iterator, Optional

from .base import StoreBackend

__all__ = ["DirectoryBackend"]


def _atomic_write(path: Path, data: bytes) -> None:
    """Publish ``data`` at ``path`` via temp file + :func:`os.replace`.

    The ``.tmp`` suffix keeps in-flight files out of every glob this
    module runs; a concurrent ``clear()`` sweeping the temp out from
    under us is benign (the store is a cache — see the except below).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-", suffix=path.suffix + ".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        try:
            os.replace(tmp, path)
        except FileNotFoundError:
            # A concurrent clear() swept our temp: losing this write is
            # benign — the entry stays in the façade's memory layer.
            pass
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class DirectoryBackend(StoreBackend):
    """Sharded per-document JSON tree with atomic replace-on-write."""

    name = "directory"
    persistent = True

    def __init__(self, root: os.PathLike):
        self.root = Path(root).expanduser()

    @property
    def url(self) -> str:
        """``directory://<root>`` — round-trips through the URL parser."""
        return f"directory://{self.root}"

    # ------------------------------------------------------------------
    # Documents
    # ------------------------------------------------------------------
    def _doc_path(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def document_path(self, fingerprint: str) -> Optional[Path]:
        """The document's own file: ``<root>/<fp[:2]>/<fp>.json``."""
        return self._doc_path(fingerprint)

    def get_doc(self, fingerprint: str) -> Optional[str]:
        """Read one document file (any read failure is a miss)."""
        try:
            return self._doc_path(fingerprint).read_text()
        except OSError:
            return None

    def put_doc(self, fingerprint: str, text: str) -> None:
        """Publish one document atomically (temp + ``os.replace``)."""
        _atomic_write(self._doc_path(fingerprint), text.encode("utf-8"))

    def delete_doc(self, fingerprint: str) -> None:
        """Unlink one document, pruning its shard dir if emptied."""
        path = self._doc_path(fingerprint)
        try:
            path.unlink()
        except OSError:
            return
        try:
            path.parent.rmdir()  # drop the prefix dir if now empty
        except OSError:
            pass

    def _doc_files(self) -> Iterator[Path]:
        if not self.root.exists():
            return iter(())
        return (
            p for p in self.root.glob("??/*.json") if not p.name.startswith(".")
        )

    def iter_docs(self) -> Iterator[str]:
        """Fingerprints of every document file under the tree."""
        return (p.stem for p in self._doc_files())

    def doc_count(self) -> int:
        """Number of document files currently on disk."""
        return sum(1 for _ in self._doc_files())

    # ------------------------------------------------------------------
    # Blobs
    # ------------------------------------------------------------------
    def _blob_path(self, key: str) -> Path:
        return self.root / "blobs" / key[:2] / f"{key}.bin"

    def get_blob(self, key: str) -> Optional[bytes]:
        """Read one blob file (any read failure is a miss)."""
        try:
            return self._blob_path(key).read_bytes()
        except OSError:
            return None

    def put_blob(self, key: str, payload: bytes) -> None:
        """Publish one blob atomically under ``<root>/blobs/``."""
        _atomic_write(self._blob_path(key), payload)

    def delete_blob(self, key: str) -> None:
        """Unlink one blob, pruning its shard dir if emptied."""
        path = self._blob_path(key)
        try:
            path.unlink()
        except OSError:
            return
        try:
            path.parent.rmdir()
        except OSError:
            pass

    def _blob_files(self) -> Iterator[Path]:
        blobs = self.root / "blobs"
        if not blobs.exists():
            return iter(())
        return (
            p for p in blobs.glob("??/*.bin") if not p.name.startswith(".")
        )

    def iter_blobs(self) -> Iterator[str]:
        """Keys of every blob file under ``<root>/blobs/``."""
        return (p.stem for p in self._blob_files())

    def blob_count(self) -> int:
        """Number of blob files currently on disk."""
        return sum(1 for _ in self._blob_files())

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def clear_documents(self) -> int:
        """Unlink every document (and orphaned temp); count removed."""
        removed = 0
        for path in self._doc_files():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        # Sweep temp files orphaned by killed writers.  Temps of *live*
        # writers are never unlinked mid-write thanks to the ``.tmp``
        # suffix keeping them out of _doc_files — but the orphan sweep
        # here is best-effort by nature.
        if self.root.exists():
            for orphan in self.root.glob("??/.tmp-*.tmp"):
                try:
                    orphan.unlink()
                except OSError:
                    pass
        return removed

    def clear_blobs(self) -> int:
        """Unlink every blob (and orphaned temp); count removed."""
        removed = 0
        for path in self._blob_files():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        blobs = self.root / "blobs"
        if blobs.exists():
            for orphan in blobs.glob("??/.tmp-*.tmp"):
                try:
                    orphan.unlink()
                except OSError:
                    pass
        return removed

    def disk_bytes(self) -> int:
        """Total bytes of document and blob files on disk."""
        total = 0
        for path in list(self._doc_files()) + list(self._blob_files()):
            try:
                total += path.stat().st_size
            except OSError:
                pass  # vanished mid-scan (concurrent clear): tolerated
        return total
