"""Persistent, fingerprint-keyed result store.

Replaces the two process-local caches the experiments grew up with —
``sweep._CACHE`` and ``MixRunner._baseline_cache`` — with a two-layer
store every process can share:

* an **in-memory layer** (a plain dict) for hot lookups within a
  process, and
* an **on-disk layer** of small JSON documents, sharded by fingerprint
  prefix (``<root>/ab/abcdef….json``), written atomically
  (temp file + :func:`os.replace`) so concurrent executor workers and
  benchmark processes never observe torn entries.

Keys are the canonical content fingerprints of
:class:`~repro.runtime.spec.RunSpec` / ``BaselineSpec``; values are
JSON documents wrapping a :class:`~repro.runtime.spec.RunRecord` or a
baseline's latency summary.  The store location comes from
``REPRO_CACHE_DIR`` (default ``~/.cache/repro-ubik``); set
``REPRO_STORE=0`` to keep everything in memory.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from .._version import __version__
from ..sim.mix_runner import BaselineResult
from .spec import SPEC_SCHEMA_VERSION, RunRecord, canonical_json

__all__ = [
    "ResultStore",
    "default_store_root",
    "DEFAULT_STORE_DIRNAME",
]

#: Directory under the user cache dir holding the default store.
DEFAULT_STORE_DIRNAME = "repro-ubik"


def default_store_root() -> Optional[Path]:
    """Resolve the on-disk store location from the environment.

    ``REPRO_STORE=0`` (or ``off``/``false``) disables the disk layer;
    ``REPRO_CACHE_DIR`` overrides the location; otherwise the store
    lives in ``~/.cache/repro-ubik`` (honouring ``XDG_CACHE_HOME``).
    """
    toggle = os.environ.get("REPRO_STORE", "").strip().lower()
    if toggle in ("0", "off", "false", "no"):
        return None
    override = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if override:
        return Path(override).expanduser()
    cache_home = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = Path(cache_home).expanduser() if cache_home else Path.home() / ".cache"
    return base / DEFAULT_STORE_DIRNAME


class ResultStore:
    """Two-layer (memory + disk) JSON store keyed by fingerprint."""

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root) if root is not None else None
        self._mem: Dict[str, Dict[str, Any]] = {}
        #: Parsed :class:`BaselineResult` objects by fingerprint: the
        #: artifact layer's answer to "baseline pools are re-parsed
        #: from JSON per spec" — rebuilding a thousands-long latency
        #: tuple from the document on every :meth:`get_baseline` call
        #: is pure waste.  Gated on the artifact toggle so a cache-off
        #: run measures the unmemoized path.
        self._baseline_parse: Dict[str, BaselineResult] = {}

    # ------------------------------------------------------------------
    # Raw document layer
    # ------------------------------------------------------------------
    def _path(self, fingerprint: str) -> Path:
        assert self.root is not None
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def document_path(self, fingerprint: str) -> Optional[Path]:
        """Where a fingerprint's document lives on disk (``None`` when
        the store is memory-only).  The file need not exist yet; the
        path is deterministic, which is what ``repro run`` prints and
        what byte-identity tests compare across shard counts."""
        if self.root is None:
            return None
        return self._path(fingerprint)

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The stored document for a fingerprint, or ``None``."""
        hit = self._mem.get(fingerprint)
        if hit is not None:
            return hit
        if self.root is None:
            return None
        path = self._path(fingerprint)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        self._mem[fingerprint] = payload
        return payload

    @staticmethod
    def _stamp(payload: Dict[str, Any]) -> Dict[str, Any]:
        """Stamp a document with its schema generation and writer.

        ``schema`` is :data:`~repro.runtime.spec.SPEC_SCHEMA_VERSION`
        at write time — what :meth:`prune` keys on — and ``repro`` is
        the package version that produced the entry (provenance only).
        """
        if payload.get("schema") == SPEC_SCHEMA_VERSION:
            return payload
        return dict(payload, schema=SPEC_SCHEMA_VERSION, repro=__version__)

    def put(self, fingerprint: str, payload: Dict[str, Any]) -> None:
        """Store a document in memory and (atomically) on disk."""
        payload = self._stamp(payload)
        self._mem[fingerprint] = payload
        if self.root is None:
            return
        path = self._path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        # The .tmp suffix keeps in-flight files out of _disk_files().
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json.tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(canonical_json(payload))
            try:
                os.replace(tmp, path)
            except FileNotFoundError:
                # A concurrent clear() swept our temp: the store is a
                # cache, so losing this write is benign — the entry
                # stays in the memory layer.
                pass
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def discard(self, fingerprint: str) -> None:
        """Drop one entry from both layers (a no-op when absent).

        Used to reclaim documents a later write supersedes — e.g. the
        per-shard documents of a sharded baseline once their merged
        result is persisted, which would otherwise duplicate every
        latency pool on disk indefinitely.
        """
        self._mem.pop(fingerprint, None)
        self._baseline_parse.pop(fingerprint, None)
        if self.root is None:
            return
        path = self._path(fingerprint)
        try:
            path.unlink()
        except OSError:
            return
        try:
            path.parent.rmdir()  # drop the prefix dir if now empty
        except OSError:
            pass

    def __contains__(self, fingerprint: str) -> bool:
        return self.get(fingerprint) is not None

    # ------------------------------------------------------------------
    # Typed wrappers
    # ------------------------------------------------------------------
    def get_record(self, fingerprint: str) -> Optional[RunRecord]:
        """A stored sweep :class:`RunRecord`, or ``None``."""
        doc = self.get(fingerprint)
        if doc is None or doc.get("kind") != "run":
            return None
        return RunRecord.from_dict(doc["record"])

    def put_record(self, fingerprint: str, record: RunRecord) -> None:
        """Persist one sweep record under its spec fingerprint."""
        self.put(fingerprint, {"kind": "run", "record": record.to_dict()})

    def cache_doc(self, fingerprint: str, payload: Dict[str, Any]) -> None:
        """Warm the in-memory layer only (no disk write).

        Used when another process is known to have persisted the entry
        already — e.g. executor workers write to the shared disk root,
        and the parent only needs fast in-process lookups.
        """
        self._mem[fingerprint] = self._stamp(payload)

    def cache_record(self, fingerprint: str, record: RunRecord) -> None:
        """Warm the in-memory layer with one sweep record."""
        self.cache_doc(fingerprint, {"kind": "run", "record": record.to_dict()})

    def get_baseline(self, fingerprint: str) -> Optional[BaselineResult]:
        """A stored isolated-baseline result, or ``None``.

        Parsed results are memoized per store handle (and reported to
        the artifact-cache counters as the ``baseline_parse`` kind), so
        each worker pays the JSON-to-:class:`BaselineResult` conversion
        once per baseline instead of once per spec.
        """
        from .artifacts import get_artifacts

        artifacts = get_artifacts()
        if artifacts.enabled:
            hit = self._baseline_parse.get(fingerprint)
            if hit is not None:
                artifacts.count("baseline_parse", hit=True)
                return hit
        doc = self.get(fingerprint)
        if doc is None or doc.get("kind") != "baseline":
            return None
        baseline = BaselineResult(
            tail95_cycles=doc["tail95_cycles"],
            p95_cycles=doc["p95_cycles"],
            latencies=tuple(doc["latencies"]),
        )
        if artifacts.enabled:
            artifacts.count("baseline_parse", hit=False)
            self._baseline_parse[fingerprint] = baseline
        return baseline

    def put_baseline(self, fingerprint: str, baseline: BaselineResult) -> None:
        """Persist one isolated-baseline result."""
        from .artifacts import get_artifacts

        if get_artifacts().enabled:
            self._baseline_parse[fingerprint] = baseline
        self.put(
            fingerprint,
            {
                "kind": "baseline",
                "tail95_cycles": baseline.tail95_cycles,
                "p95_cycles": baseline.p95_cycles,
                "latencies": list(baseline.latencies),
            },
        )

    # ------------------------------------------------------------------
    # Maintenance / inspection
    # ------------------------------------------------------------------
    def _disk_files(self) -> Iterator[Path]:
        if self.root is None or not self.root.exists():
            return iter(())
        return (
            p for p in self.root.glob("??/*.json") if not p.name.startswith(".")
        )

    def stats(self) -> Dict[str, Any]:
        """Entry counts and disk footprint for ``repro cache``."""
        files = list(self._disk_files())
        kinds: Dict[str, int] = {}
        disk_bytes = 0
        for path in files:
            try:
                kind = json.loads(path.read_text()).get("kind", "?")
                disk_bytes += path.stat().st_size
            except OSError:
                # Entry vanished mid-scan (a concurrent clear): the
                # store tolerates this race everywhere else, too.
                kind = "vanished"
            except ValueError:
                kind = "corrupt"
            kinds[kind] = kinds.get(kind, 0) + 1
        return {
            "root": str(self.root) if self.root else None,
            "memory_entries": len(self._mem),
            "disk_entries": len(files),
            "disk_bytes": disk_bytes,
            "by_kind": kinds,
        }

    def prune(self) -> Dict[str, int]:
        """Drop entries from stale schema generations; keep the rest.

        ``SPEC_SCHEMA_VERSION`` is bumped whenever engine semantics
        change, which makes every previously stored fingerprint
        unreachable — the entries are dead weight on disk.  Every
        written document is stamped with the schema it was produced
        under (see :meth:`_stamp`); prune deletes documents whose stamp
        differs from the current generation, documents predating the
        stamp (unknowable provenance), and unparseable files.  Returns
        ``{"kept": …, "pruned": …}``.
        """
        kept = 0
        pruned = 0
        for path in self._disk_files():
            try:
                stale = (
                    json.loads(path.read_text()).get("schema")
                    != SPEC_SCHEMA_VERSION
                )
            except OSError:
                continue  # vanished mid-scan: nothing left to prune
            except ValueError:
                stale = True  # corrupt: reclaim it
            if not stale:
                kept += 1
                continue
            try:
                path.unlink()
                pruned += 1
            except OSError:
                pass
        for fingerprint in [
            fp
            for fp, doc in self._mem.items()
            if doc.get("schema") != SPEC_SCHEMA_VERSION
        ]:
            del self._mem[fingerprint]
            self._baseline_parse.pop(fingerprint, None)
        return {"kept": kept, "pruned": pruned}

    def clear(self) -> int:
        """Drop every entry (both layers); returns disk entries removed.

        Also sweeps temp files orphaned by killed writers.  Temps of
        *live* writers are never unlinked mid-write thanks to the
        ``.json.tmp`` suffix keeping them out of :meth:`_disk_files` —
        but the orphan sweep here is best-effort by nature.
        """
        self._mem.clear()
        self._baseline_parse.clear()
        removed = 0
        for path in self._disk_files():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        if self.root is not None and self.root.exists():
            for orphan in self.root.glob("??/.tmp-*.json.tmp"):
                try:
                    orphan.unlink()
                except OSError:
                    pass
        return removed
