"""Persistent, fingerprint-keyed result store — a façade over
pluggable storage backends.

Replaces the two process-local caches the experiments grew up with —
``sweep._CACHE`` and ``MixRunner._baseline_cache`` — with a two-layer
store every process can share:

* an **in-memory layer** (a plain dict) for hot lookups within a
  process, and
* a **backend layer** (:mod:`repro.runtime.backends`) holding
  canonical-JSON documents: the sharded JSON-document ``directory``
  tree (the default), a single-file WAL-mode ``sqlite`` store, or a
  process-local ``memory`` engine.

Keys are the canonical content fingerprints of
:class:`~repro.runtime.spec.RunSpec` / ``BaselineSpec``; values are
JSON documents wrapping a :class:`~repro.runtime.spec.RunRecord` or a
baseline's latency summary.  The façade owns everything semantic —
schema stamping, canonical serialization, typed wrappers, prune/clear
— while backends move bytes, which is why every backend holding the
same corpus exports the same canonical tree (:meth:`ResultStore.export_canonical`)
and why :func:`migrate_store` can move a corpus between engines
byte-faithfully.

The store location comes from ``REPRO_STORE`` — a URL like
``sqlite:///path/store.db`` / ``directory:///path`` / ``memory://``,
or the historical ``0``/``off`` toggle — falling back to
``REPRO_CACHE_DIR`` and then ``~/.cache/repro-ubik`` (a directory
tree, exactly as before).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from .._version import __version__
from ..sim.mix_runner import BaselineResult
from .backends import StoreBackend, make_backend, parse_store_url
from .spec import SPEC_SCHEMA_VERSION, RunRecord, canonical_json

__all__ = [
    "ResultStore",
    "default_store_root",
    "default_store_url",
    "migrate_store",
    "DEFAULT_STORE_DIRNAME",
]

#: Directory under the user cache dir holding the default store.
DEFAULT_STORE_DIRNAME = "repro-ubik"


def default_store_root() -> Optional[Path]:
    """Resolve the default *directory-backend* location from the
    environment (the pre-backend resolution rule, kept for
    compatibility — :func:`default_store_url` layers URL support on
    top).

    ``REPRO_STORE=0`` (or ``off``/``false``) disables persistence;
    ``REPRO_CACHE_DIR`` overrides the location; otherwise the store
    lives in ``~/.cache/repro-ubik`` (honouring ``XDG_CACHE_HOME``).
    """
    toggle = os.environ.get("REPRO_STORE", "").strip().lower()
    if toggle in ("0", "off", "false", "no", "memory", "memory://"):
        return None
    override = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if override:
        return Path(override).expanduser()
    cache_home = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = Path(cache_home).expanduser() if cache_home else Path.home() / ".cache"
    return base / DEFAULT_STORE_DIRNAME


def default_store_url() -> Optional[str]:
    """The environment's store target, URL-aware.

    A ``REPRO_STORE`` carrying a backend URL (``sqlite://…``,
    ``directory://…``, ``memory://``) wins outright; otherwise the
    historical rules apply via :func:`default_store_root` (off-toggle,
    ``REPRO_CACHE_DIR``, the XDG default).  Returns ``None`` for a
    memory-only store.
    """
    toggle = os.environ.get("REPRO_STORE", "").strip()
    if "://" in toggle:
        name, _ = parse_store_url(toggle)  # validate the scheme early
        return None if name == "memory" else toggle
    root = default_store_root()
    return str(root) if root is not None else None


#: Anything :class:`ResultStore` accepts as its location.
StoreLocation = Union[None, str, os.PathLike, StoreBackend]


class ResultStore:
    """Two-layer (memory + backend) JSON store keyed by fingerprint.

    ``root`` may be ``None`` (memory engine), a filesystem path (the
    directory engine, as always), a ``scheme://location`` URL naming
    any registered backend, or a live
    :class:`~repro.runtime.backends.StoreBackend` instance.
    """

    def __init__(self, root: StoreLocation = None):
        self.backend = make_backend(root)
        #: The directory backend's tree root; ``None`` for every other
        #: engine.  Kept as a public attribute for compatibility (the
        #: CLI and tests path-join against it).
        self.root = self.backend.root
        self._mem: Dict[str, Dict[str, Any]] = {}
        #: Parsed :class:`BaselineResult` objects by fingerprint: the
        #: artifact layer's answer to "baseline pools are re-parsed
        #: from JSON per spec" — rebuilding a thousands-long latency
        #: tuple from the document on every :meth:`get_baseline` call
        #: is pure waste.  Gated on the artifact toggle so a cache-off
        #: run measures the unmemoized path.
        self._baseline_parse: Dict[str, BaselineResult] = {}

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        """The ``scheme://location`` string describing this store."""
        return self.backend.url

    @property
    def persistent(self) -> bool:
        """Whether another process opening :attr:`url` shares the data."""
        return self.backend.persistent

    def share_target(self) -> Optional[str]:
        """The handoff token pool workers reopen the store with —
        :attr:`url` for persistent engines, ``None`` for a memory store
        (whose contents cannot reach another process)."""
        return self.backend.url if self.backend.persistent else None

    @property
    def memo_key(self) -> Any:
        """A hashable identity for per-store memo tables: the URL when
        persistent (two handles on one corpus share memos), object
        identity otherwise (two memory stores share nothing)."""
        return self.backend.url if self.backend.persistent else id(self)

    def close(self) -> None:
        """Release backend handles (idempotent)."""
        self.backend.close()

    # ------------------------------------------------------------------
    # Raw document layer
    # ------------------------------------------------------------------
    def document_path(self, fingerprint: str) -> Optional[Path]:
        """Where a fingerprint's document lives as its own file
        (``None`` unless the backend keeps per-document files — only
        the directory engine does).  The file need not exist yet; the
        path is deterministic, which is what ``repro run`` prints and
        what byte-identity tests compare across shard counts."""
        return self.backend.document_path(fingerprint)

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The stored document for a fingerprint, or ``None``."""
        hit = self._mem.get(fingerprint)
        if hit is not None:
            return hit
        text = self.backend.get_doc(fingerprint)
        if text is None:
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            return None  # torn/corrupt entry reads as a miss
        self._mem[fingerprint] = payload
        return payload

    @staticmethod
    def _stamp(payload: Dict[str, Any]) -> Dict[str, Any]:
        """Stamp a document with its schema generation and writer.

        ``schema`` is :data:`~repro.runtime.spec.SPEC_SCHEMA_VERSION`
        at write time — what :meth:`prune` keys on — and ``repro`` is
        the package version that produced the entry (provenance only).
        """
        if payload.get("schema") == SPEC_SCHEMA_VERSION:
            return payload
        return dict(payload, schema=SPEC_SCHEMA_VERSION, repro=__version__)

    def put(self, fingerprint: str, payload: Dict[str, Any]) -> None:
        """Store a document in memory and (atomically) in the backend.

        Every backend receives the same canonical-JSON text for the
        same logical document — the serialization happens here, once —
        which is what makes cross-backend canonical exports
        byte-identical.
        """
        payload = self._stamp(payload)
        self._mem[fingerprint] = payload
        self.backend.put_doc(fingerprint, canonical_json(payload))

    def discard(self, fingerprint: str) -> None:
        """Drop one entry from both layers (a no-op when absent).

        Used to reclaim documents a later write supersedes — e.g. the
        per-shard documents of a sharded baseline once their merged
        result is persisted, which would otherwise duplicate every
        latency pool on disk indefinitely.
        """
        self._mem.pop(fingerprint, None)
        self._baseline_parse.pop(fingerprint, None)
        self.backend.delete_doc(fingerprint)

    def __contains__(self, fingerprint: str) -> bool:
        return self.get(fingerprint) is not None

    def __len__(self) -> int:
        return self.backend.doc_count()

    def fingerprints(self) -> Iterator[str]:
        """Every fingerprint the backend currently holds."""
        return self.backend.iter_docs()

    # ------------------------------------------------------------------
    # Typed wrappers
    # ------------------------------------------------------------------
    def get_record(self, fingerprint: str) -> Optional[RunRecord]:
        """A stored sweep :class:`RunRecord`, or ``None``."""
        doc = self.get(fingerprint)
        if doc is None or doc.get("kind") != "run":
            return None
        return RunRecord.from_dict(doc["record"])

    def put_record(self, fingerprint: str, record: RunRecord) -> None:
        """Persist one sweep record under its spec fingerprint."""
        self.put(fingerprint, {"kind": "run", "record": record.to_dict()})

    def cache_doc(self, fingerprint: str, payload: Dict[str, Any]) -> None:
        """Warm the in-memory layer only (no backend write).

        Used when another process is known to have persisted the entry
        already — e.g. executor workers write to the shared backend,
        and the parent only needs fast in-process lookups.
        """
        self._mem[fingerprint] = self._stamp(payload)

    def cache_record(self, fingerprint: str, record: RunRecord) -> None:
        """Warm the in-memory layer with one sweep record."""
        self.cache_doc(fingerprint, {"kind": "run", "record": record.to_dict()})

    def get_baseline(self, fingerprint: str) -> Optional[BaselineResult]:
        """A stored isolated-baseline result, or ``None``.

        Parsed results are memoized per store handle (and reported to
        the artifact-cache counters as the ``baseline_parse`` kind), so
        each worker pays the JSON-to-:class:`BaselineResult` conversion
        once per baseline instead of once per spec.
        """
        from .artifacts import get_artifacts

        artifacts = get_artifacts()
        if artifacts.enabled:
            hit = self._baseline_parse.get(fingerprint)
            if hit is not None:
                artifacts.count("baseline_parse", hit=True)
                return hit
        doc = self.get(fingerprint)
        if doc is None or doc.get("kind") != "baseline":
            return None
        baseline = BaselineResult(
            tail95_cycles=doc["tail95_cycles"],
            p95_cycles=doc["p95_cycles"],
            latencies=tuple(doc["latencies"]),
        )
        if artifacts.enabled:
            artifacts.count("baseline_parse", hit=False)
            self._baseline_parse[fingerprint] = baseline
        return baseline

    def put_baseline(self, fingerprint: str, baseline: BaselineResult) -> None:
        """Persist one isolated-baseline result."""
        from .artifacts import get_artifacts

        if get_artifacts().enabled:
            self._baseline_parse[fingerprint] = baseline
        self.put(
            fingerprint,
            {
                "kind": "baseline",
                "tail95_cycles": baseline.tail95_cycles,
                "p95_cycles": baseline.p95_cycles,
                "latencies": list(baseline.latencies),
            },
        )

    # ------------------------------------------------------------------
    # Maintenance / inspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Entry counts and disk footprint for ``repro cache``.

        ``disk_entries``/``disk_bytes`` keep their historical meaning
        (zero for a memory store); ``documents``/``blobs`` count the
        backend's contents regardless of engine.
        """
        documents = self.backend.doc_count()
        kinds: Dict[str, int] = {}
        for fingerprint in self.backend.iter_docs():
            text = self.backend.get_doc(fingerprint)
            if text is None:
                # Entry vanished mid-scan (a concurrent clear): the
                # store tolerates this race everywhere else, too.
                kind = "vanished"
            else:
                try:
                    kind = json.loads(text).get("kind", "?")
                except ValueError:
                    kind = "corrupt"
            kinds[kind] = kinds.get(kind, 0) + 1
        persistent = self.backend.persistent
        return {
            "backend": self.backend.name,
            "url": self.backend.url,
            "root": str(self.root) if self.root else None,
            "memory_entries": len(self._mem),
            "documents": documents,
            "blobs": self.backend.blob_count(),
            "disk_entries": documents if persistent else 0,
            "disk_bytes": self.backend.disk_bytes(),
            "by_kind": kinds,
        }

    def prune(self) -> Dict[str, int]:
        """Drop entries from stale schema generations; keep the rest.

        ``SPEC_SCHEMA_VERSION`` is bumped whenever engine semantics
        change, which makes every previously stored fingerprint
        unreachable — the entries are dead weight on disk.  Every
        written document is stamped with the schema it was produced
        under (see :meth:`_stamp`); prune deletes documents whose stamp
        differs from the current generation, documents predating the
        stamp (unknowable provenance), and unparseable entries.
        Returns ``{"kept": …, "pruned": …}``.
        """
        kept = 0
        pruned = 0
        for fingerprint in list(self.backend.iter_docs()):
            text = self.backend.get_doc(fingerprint)
            if text is None:
                continue  # vanished mid-scan: nothing left to prune
            try:
                stale = json.loads(text).get("schema") != SPEC_SCHEMA_VERSION
            except ValueError:
                stale = True  # corrupt: reclaim it
            if not stale:
                kept += 1
                continue
            self.backend.delete_doc(fingerprint)
            pruned += 1
        for fingerprint in [
            fp
            for fp, doc in self._mem.items()
            if doc.get("schema") != SPEC_SCHEMA_VERSION
        ]:
            del self._mem[fingerprint]
            self._baseline_parse.pop(fingerprint, None)
        return {"kept": kept, "pruned": pruned}

    def clear(self) -> int:
        """Drop every document (both layers); returns backend entries
        removed.  Blobs (the tier-2 artifact side) are left alone —
        they key on content, not schema generation, and remain valid.
        """
        self._mem.clear()
        self._baseline_parse.clear()
        return self.backend.clear_documents()

    # ------------------------------------------------------------------
    # The parity contract
    # ------------------------------------------------------------------
    def export_canonical(self, destination: os.PathLike) -> int:
        """Write the logical corpus as a directory-layout tree.

        Byte-identical across backends holding the same corpus — the
        golden-pinned cross-backend contract (see
        :meth:`~repro.runtime.backends.StoreBackend.export_canonical`).
        Returns the number of documents written.
        """
        return self.backend.export_canonical(Path(destination))


def migrate_store(
    source: StoreLocation, destination: StoreLocation
) -> Dict[str, int]:
    """Copy a corpus between backends, byte-faithfully.

    Documents and blobs are moved as raw texts/payloads — never
    re-stamped, never re-serialized — so a migrated corpus exports the
    exact canonical tree of its source (``repro cache --migrate``
    surfaces this; the golden suite pins it).  Existing destination
    entries under the same keys are overwritten; returns
    ``{"documents": …, "blobs": …}`` counts copied.
    """
    src = source.backend if isinstance(source, ResultStore) else make_backend(source)
    dst = (
        destination.backend
        if isinstance(destination, ResultStore)
        else make_backend(destination)
    )
    if src is dst or (src.persistent and dst.persistent and src.url == dst.url):
        raise ValueError(f"refusing to migrate a store onto itself ({src.url})")
    documents = 0
    for fingerprint in list(src.iter_docs()):
        text = src.get_doc(fingerprint)
        if text is None:
            continue
        dst.put_doc(fingerprint, text)
        documents += 1
    blobs = 0
    for key in list(src.iter_blobs()):
        payload = src.get_blob(key)
        if payload is None:
            continue
        dst.put_blob(key, payload)
        blobs += 1
    return {"documents": documents, "blobs": blobs}
