"""The Session facade: specs in, records out, cache in between.

A :class:`Session` ties the runtime's pieces together:

* it owns a :class:`~repro.runtime.store.ResultStore` (persistent by
  default; see ``REPRO_CACHE_DIR`` / ``REPRO_STORE``),
* it owns an :class:`~repro.runtime.executors.Executor` (serial by
  default; ``jobs``/``REPRO_JOBS`` selects the process-pool fan-out,
  ``scheduler="async"`` the asyncio engine),
* and it evaluates :class:`~repro.runtime.spec.RunSpec` /
  :class:`~repro.runtime.spec.TaskSpec` batches by serving store hits
  in-process and dispatching only the misses.

Typical use::

    >>> from repro.runtime import Session, PolicySpec
    >>> from repro.experiments import ExperimentScale
    >>> session = Session(jobs=4)
    >>> sweep = session.sweep(ExperimentScale(requests=60,
    ...     lc_names=("masstree",), loads=(0.2,), combos=("nft",)))
    ...                                            # doctest: +SKIP

Large batches can stream through the batched async engine instead of
one blocking ``map``::

    >>> records = session.run_many(specs, scheduler="async")  # doctest: +SKIP

and single runs (or narrow grids) can parallelize *inside* each run by
sharding the per-instance baseline streams
(:mod:`repro.runtime.sharding`)::

    >>> record = Session(jobs=4, shards="auto").run(spec)  # doctest: +SKIP

Results are bit-identical across executors and across processes: every
simulation is seeded from its spec alone, and the store is keyed by the
spec's content fingerprint.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from ..sim.config import CoreKind
from ..sim.mix_runner import BaselineResult, MixRunner
from .executors import Executor, SerialExecutor, make_executor
from .scheduler import ProgressEvent, SpecScheduler
from .sharding import (
    ShardCount,
    default_shards,
    interleave_shards,
    merge_shard_results,
    plan_shards,
    resolve_shards,
)
from .spec import (
    PolicySpec,
    RunRecord,
    RunSpec,
    SchemeSpec,
    SweepResult,
    mix_refs,
)
from .store import ResultStore, StoreLocation, default_store_url
from .work import (
    adopt,
    cache_result,
    execute_in_worker,
    execute_spec,
    execute_specs,
    record_from_result,
    store_lookup,
)

__all__ = [
    "DEFAULT_POLICIES",
    "Session",
    "execute_spec",
    "record_from_result",
    "get_session",
    "reset_session",
]

#: The five schemes of Figures 9-11, in the paper's order.
DEFAULT_POLICIES: Tuple[PolicySpec, ...] = (
    PolicySpec.of("lru", label="LRU"),
    PolicySpec.of("ucp", label="UCP"),
    PolicySpec.of("onoff", label="OnOff"),
    PolicySpec.of("static_lc", label="StaticLC"),
    PolicySpec.of("ubik", label="Ubik", slack=0.05),
)

SchemeLike = Union[SchemeSpec, str, None]

SchedulerLike = Union[SpecScheduler, str, None]


def _as_scheme_spec(scheme: SchemeLike) -> Optional[SchemeSpec]:
    """Normalize a scheme argument (name, spec, or None)."""
    if scheme is None or isinstance(scheme, SchemeSpec):
        return scheme
    return SchemeSpec.of(scheme)


class Session:
    """Facade running declarative specs through a store and executor.

    ``scheduler`` picks the default batch engine: ``None`` keeps the
    executor's blocking ``map``; ``"async"`` streams batches through a
    :class:`~repro.runtime.scheduler.SpecScheduler` (bounded pool,
    store-hit short-circuiting, progress events to ``progress``).

    ``shards`` enables intra-run trace sharding
    (:mod:`repro.runtime.sharding`): each sweep run's independent
    per-instance baseline simulations are fanned across the executor as
    :class:`~repro.runtime.sharding.ShardSpec` batches before the joint
    mix replays execute.  ``1`` is unsharded, an integer pins the
    shard count, ``"auto"`` shards only when the grid leaves workers
    idle, and ``None`` defers to the ``REPRO_SHARDS`` environment
    default (unsharded when unset).  Results are bit-identical at any
    setting.
    """

    def __init__(
        self,
        store: Union[ResultStore, StoreLocation] = None,
        executor: Optional[Executor] = None,
        jobs: Optional[int] = None,
        scheduler: SchedulerLike = None,
        progress: Optional[Callable[[ProgressEvent], None]] = None,
        shards: ShardCount = None,
    ):
        # ``store`` takes anything the store itself does — a live
        # ResultStore, a backend URL (``sqlite:///path/store.db``), a
        # bare path, a backend instance, or None for the environment
        # default (REPRO_STORE / REPRO_CACHE_DIR / the XDG cache dir).
        if store is None:
            store = ResultStore(default_store_url())
        elif not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store = store
        self.progress = progress
        # None defers to the REPRO_SHARDS environment default (1 when
        # unset); anything explicit wins over the environment.
        self.shards = shards if shards is not None else default_shards()
        self._default_scheduler = scheduler
        if executor is None:
            kind = scheduler if isinstance(scheduler, str) else "auto"
            executor = make_executor(jobs, kind=kind)
        self.executor = executor

    # ------------------------------------------------------------------
    # Spec evaluation
    # ------------------------------------------------------------------
    def run(self, spec, shards: ShardCount = None) -> Any:
        """Evaluate one spec (store-aware).

        With sharding requested (the ``shards`` argument, else the
        session default) a :class:`~repro.runtime.spec.RunSpec` routes
        through :meth:`run_sharded`, fanning its per-instance baseline
        work across the executor; otherwise — and for every
        :class:`~repro.runtime.spec.TaskSpec`, which has no shardable
        phase — the spec evaluates in-process.
        """
        shards = shards if shards is not None else self.shards
        if shards not in (None, 1) and isinstance(spec, RunSpec):
            return self.run_sharded([spec], shards=shards)[0]
        return execute_spec(spec, self.store)

    def _make_scheduler(
        self,
        scheduler: SchedulerLike,
        progress: Optional[Callable[[ProgressEvent], None]],
    ) -> Optional[SpecScheduler]:
        """Resolve a scheduler argument against the session defaults."""
        if scheduler is None:
            scheduler = self._default_scheduler
        if scheduler is None:
            return None
        if isinstance(scheduler, SpecScheduler):
            return scheduler
        if scheduler in ("serial", "parallel", "auto"):
            # Explicit non-async names mean: use the executor path.
            return None
        if scheduler != "async":
            raise ValueError(
                f"unknown scheduler {scheduler!r} (known: serial, parallel, async)"
            )
        return SpecScheduler(
            store=self.store,
            jobs=getattr(self.executor, "jobs", 1),
            progress=progress if progress is not None else self.progress,
        )

    def run_many(
        self,
        specs: Sequence[Any],
        scheduler: SchedulerLike = None,
        progress: Optional[Callable[[ProgressEvent], None]] = None,
        shards: ShardCount = None,
    ) -> List[Any]:
        """Evaluate a batch of specs (sweep runs and tasks alike).

        With a scheduler (an instance, ``"async"``, or the session
        default) the batch streams through the bounded async engine;
        otherwise store hits are served inline and the misses fan out
        through the executor's ``map``.  When sharding is requested
        (the ``shards`` argument, else the session default) the batch
        routes through :meth:`run_sharded` first.  Results always come
        back in spec order, byte-identical at any scheduler, worker
        count, or shard count.
        """
        shards = shards if shards is not None else self.shards
        if shards not in (None, 1):
            return self.run_sharded(
                specs, shards=shards, scheduler=scheduler, progress=progress
            )
        return self._run_batch(specs, scheduler, progress)

    def _run_batch(
        self,
        specs: Sequence[Any],
        scheduler: SchedulerLike,
        progress: Optional[Callable[[ProgressEvent], None]],
    ) -> List[Any]:
        """One unsharded batch through the scheduler or executor path."""
        engine = self._make_scheduler(scheduler, progress)
        if engine is not None:
            return engine.run(specs)
        return self.run_specs(specs)

    def run_sharded(
        self,
        specs: Sequence[Any],
        shards: ShardCount = "auto",
        scheduler: SchedulerLike = None,
        progress: Optional[Callable[[ProgressEvent], None]] = None,
    ) -> List[Any]:
        """Evaluate a batch with intra-run trace sharding.

        Two phases, both riding the session's normal batch machinery
        (so serial, parallel, and async execution all work):

        1. **Shard phase** — for every :class:`RunSpec` whose record
           *and* baseline are still unknown, the per-instance baseline
           streams are split into
           :class:`~repro.runtime.sharding.ShardSpec` slices.  Shards
           from different specs are interleaved round-robin so one
           run's shards never starve the rest of the grid, then the
           whole shard queue executes as one batch.  Each baseline's
           shards are merged deterministically (fixed instance order)
           and the merged result is stored under the **unsharded**
           baseline fingerprint.
        2. **Replay phase** — the original specs execute unchanged;
           every mix replay now finds its baseline in the store, so a
           worker spends its slot on the joint simulation only.

        Because the merged baselines are bit-identical to the serial
        computation and the logical fingerprints never see the shard
        topology, the records (and their store documents) are byte-for-
        byte the same as an unsharded run.  Task specs pass through
        untouched.

        Two economies: the ``"auto"`` budget counts only the specs that
        actually *miss* the store (cached entries neither shard nor
        replay, so they should not dilute the idle-worker budget), and
        the shard phase is skipped entirely when the merged baselines
        could not reach the replay workers anyway (memory-only store
        with an out-of-process path — sharding there would make every
        worker recompute its baselines from scratch).
        """
        specs = list(specs)
        # The sweep runs that will actually simulate: store hits serve
        # inline, so only the misses compete for workers.
        miss_runs = [
            spec
            for spec in specs
            if isinstance(spec, RunSpec)
            and store_lookup(spec, self.store)[1] is None
        ]
        count = resolve_shards(
            shards,
            jobs=getattr(self.executor, "jobs", 1),
            grid_size=max(1, len(miss_runs)),
        )
        if count > 1 and not self._baselines_reach_workers(scheduler, progress):
            count = 1
        if count > 1:
            plans = []
            planned = set()
            for spec in miss_runs:
                base_fp = spec.baseline_spec().fingerprint()
                if base_fp in planned:
                    continue  # another spec already shards this baseline
                if self.store.get_baseline(base_fp) is not None:
                    continue  # baseline known: only the replay remains
                planned.add(base_fp)
                plans.append(plan_shards(spec, count))
            shard_queue = interleave_shards(plans)
            if shard_queue:
                shard_results = self._run_batch(shard_queue, scheduler, progress)
                grouped: dict = {}
                for shard, result in zip(shard_queue, shard_results):
                    key = shard.base_spec().fingerprint()
                    grouped.setdefault(key, []).append(result)
                for base_fp, results in grouped.items():
                    merged = merge_shard_results(results)
                    self.store.put_baseline(base_fp, merged.baseline)
                # The merged baselines supersede their shard documents;
                # reclaim them so sharding leaves no duplicate latency
                # pools behind.  (Mid-phase, the documents still serve
                # crash resume and cross-spec dedup.)
                for shard in shard_queue:
                    self.store.discard(shard.fingerprint())
        return self._run_batch(specs, scheduler, progress)

    def _baselines_reach_workers(
        self,
        scheduler: SchedulerLike,
        progress: Optional[Callable[[ProgressEvent], None]],
    ) -> bool:
        """Whether baselines merged by this process are visible to the
        processes that will run the replay phase.  True with a
        persistent store (workers reopen the same URL) or a fully
        in-process path; false for a memory-only store feeding a
        process pool, where sharding would only add work."""
        if self.store.persistent:
            return True
        return self._make_scheduler(scheduler, progress) is None and isinstance(
            self.executor, SerialExecutor
        )

    def run_specs(self, specs: Sequence[Any]) -> List[Any]:
        """Evaluate a batch: serve store hits, fan out the misses.

        Results are returned in spec order regardless of executor, so
        downstream reports are byte-identical at any ``--jobs``.
        """
        specs = list(specs)
        results: List[Optional[Any]] = [None] * len(specs)
        misses: List[Tuple[int, Any, str]] = []
        for index, spec in enumerate(specs):
            fingerprint, hit = store_lookup(spec, self.store)
            if hit is not None:
                results[index] = hit
            else:
                misses.append((index, spec, fingerprint))
        if misses:
            if isinstance(self.executor, SerialExecutor):
                # In-process: share this session's store directly, so
                # its memory layer (baselines included) accumulates —
                # and let the batch evaluator route sweep cells into
                # replay groups (one shared context per group; off via
                # REPRO_GRID_REPLAY=0, bit-identical either way).
                fresh = execute_specs([s for _, s, _ in misses], store=self.store)
            else:
                worker = functools.partial(
                    execute_in_worker,
                    store_target=self.store.share_target(),
                )
                fresh = self.executor.map(worker, [s for _, s, _ in misses])
            for (index, spec, fingerprint), result in zip(misses, fresh):
                results[index] = adopt(spec, result)
                if not isinstance(self.executor, SerialExecutor):
                    # Workers already persisted to disk; keep the
                    # parent's in-memory layer warm without a second
                    # disk write.
                    cache_result(spec, self.store, fingerprint, result)
        return [r for r in results if r is not None]

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def sweep_specs(
        self,
        scale,
        policies: Sequence[PolicySpec] = DEFAULT_POLICIES,
        scheme: SchemeLike = None,
        core_kind: str = CoreKind.OOO,
    ) -> List[RunSpec]:
        """The full (mix x policy) spec grid for an experiment scale."""
        scheme_spec = _as_scheme_spec(scheme)
        refs = mix_refs(
            lc_names=scale.lc_names,
            loads=scale.loads,
            combos=scale.combos,
            mixes_per_combo=scale.mixes_per_combo,
            seed=scale.seed,
        )
        return [
            RunSpec(
                mix=ref,
                policy=policy,
                scheme=scheme_spec,
                core_kind=core_kind,
                requests=scale.requests,
                seed=scale.seed,
            )
            for ref in refs
            for policy in policies
        ]

    def sweep(
        self,
        scale,
        policies: Sequence[PolicySpec] = DEFAULT_POLICIES,
        scheme: SchemeLike = None,
        core_kind: str = CoreKind.OOO,
    ) -> SweepResult:
        """Run (or fetch) a mixes x policies sweep as a SweepResult."""
        specs = self.sweep_specs(scale, policies, scheme, core_kind)
        return SweepResult(records=self.run_many(specs))

    # ------------------------------------------------------------------
    # Artifact cache
    # ------------------------------------------------------------------
    def artifact_stats(self) -> dict:
        """Hit/miss/entry counters of the process-wide artifact cache.

        The cache itself (:mod:`repro.runtime.artifacts`) is per
        process, not per session — in-process evaluation warms the one
        this returns, while pool workers each warm their own.  The CLI
        surfaces the same numbers via ``repro cache --stats``.
        """
        from .artifacts import get_artifacts

        return get_artifacts().stats()

    # ------------------------------------------------------------------
    # Baselines
    # ------------------------------------------------------------------
    def baseline(
        self,
        lc_name: str,
        load: float,
        core_kind: str = CoreKind.OOO,
        requests: int = 120,
        seed: int = 2014,
    ) -> BaselineResult:
        """Isolated 2 MB-private baseline for one (app, load) point."""
        from ..sim.config import CMPConfig
        from ..workloads.latency_critical import make_lc_workload

        runner = MixRunner(
            config=CMPConfig(core_kind=core_kind),
            requests=requests,
            seed=seed,
            store=self.store,
        )
        return runner.baseline(make_lc_workload(lc_name), load)


_SESSION: Optional[Session] = None


def get_session() -> Session:
    """The process-wide default session (created on first use)."""
    global _SESSION
    if _SESSION is None:
        _SESSION = Session()
    return _SESSION


def reset_session() -> None:
    """Drop the default session (tests use this to repoint the store)."""
    global _SESSION
    _SESSION = None
