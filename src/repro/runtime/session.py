"""The Session facade: specs in, records out, cache in between.

A :class:`Session` ties the runtime's pieces together:

* it owns a :class:`~repro.runtime.store.ResultStore` (persistent by
  default; see ``REPRO_CACHE_DIR`` / ``REPRO_STORE``),
* it owns an :class:`~repro.runtime.executors.Executor` (serial by
  default; ``jobs``/``REPRO_JOBS`` selects the process-pool fan-out),
* and it evaluates :class:`~repro.runtime.spec.RunSpec` batches by
  serving store hits in-process and dispatching only the misses.

Typical use::

    >>> from repro.runtime import Session, PolicySpec
    >>> from repro.experiments import ExperimentScale
    >>> session = Session(jobs=4)
    >>> sweep = session.sweep(ExperimentScale(requests=60,
    ...     lc_names=("masstree",), loads=(0.2,), combos=("nft",)))
    ...                                            # doctest: +SKIP

Results are bit-identical across executors and across processes: every
simulation is seeded from its spec alone, and the store is keyed by the
spec's content fingerprint.
"""

from __future__ import annotations

import functools
from typing import List, Optional, Sequence, Tuple, Union

from ..sim.config import CoreKind
from ..sim.mix_runner import BaselineResult, MixRunner
from .executors import Executor, SerialExecutor, make_executor
from .spec import (
    PolicySpec,
    RunRecord,
    RunSpec,
    SchemeSpec,
    SweepResult,
    mix_refs,
)
from .store import ResultStore, default_store_root

__all__ = [
    "DEFAULT_POLICIES",
    "Session",
    "execute_spec",
    "record_from_result",
    "get_session",
    "reset_session",
]

#: The five schemes of Figures 9-11, in the paper's order.
DEFAULT_POLICIES: Tuple[PolicySpec, ...] = (
    PolicySpec.of("lru", label="LRU"),
    PolicySpec.of("ucp", label="UCP"),
    PolicySpec.of("onoff", label="OnOff"),
    PolicySpec.of("static_lc", label="StaticLC"),
    PolicySpec.of("ubik", label="Ubik", slack=0.05),
)

SchemeLike = Union[SchemeSpec, str, None]


def _as_scheme_spec(scheme: SchemeLike) -> Optional[SchemeSpec]:
    """Normalize a scheme argument (name, spec, or None)."""
    if scheme is None or isinstance(scheme, SchemeSpec):
        return scheme
    return SchemeSpec.of(scheme)


def record_from_result(result, policy_label: str, lc_name: str, load_label: str) -> RunRecord:
    """One sweep :class:`RunRecord` from a :class:`MixResult`.

    The single place the record's metrics are derived, shared by the
    declarative path (:func:`execute_spec`) and the legacy factory
    path in :mod:`repro.experiments.sweep`, so the two stay
    record-for-record identical as fields are added.
    """
    return RunRecord(
        mix_id=result.mix_id,
        lc_name=lc_name,
        load_label=load_label,
        policy=policy_label,
        tail_degradation=result.tail_degradation(),
        weighted_speedup=result.weighted_speedup(),
        lc_tail_cycles=result.tail95(),
        baseline_tail_cycles=result.baseline_tail_cycles,
        deboosts=sum(i.deboosts for i in result.lc_instances),
        watermarks=sum(i.watermarks for i in result.lc_instances),
    )


def execute_spec(
    spec: RunSpec, store: Optional[ResultStore] = None
) -> RunRecord:
    """Evaluate one run spec (store-aware, deterministic).

    On a store hit the stored record is returned (relabeled to the
    spec's display label); otherwise the mix is rebuilt from the spec,
    simulated, and the fresh record is persisted before returning.
    """
    fingerprint = spec.fingerprint()
    if store is not None:
        hit = store.get_record(fingerprint)
        if hit is not None:
            return hit.relabeled(spec.policy.display)
    config = spec.config()
    runner = MixRunner(
        config=config,
        requests=spec.requests,
        seed=spec.seed,
        umon_noise=spec.umon_noise,
        warmup_fraction=spec.warmup_fraction,
        store=store,
    )
    mix = spec.mix.build()
    scheme = spec.scheme.build(config.llc_lines) if spec.scheme else None
    result = runner.run_mix(mix, spec.policy.build(), scheme=scheme)
    record = record_from_result(
        result,
        policy_label=spec.policy.display,
        lc_name=mix.lc_workload.name,
        load_label=mix.load_label,
    )
    if store is not None:
        store.put_record(fingerprint, record)
    return record


#: Per-process store handles, keyed by root (None = memory-only).
#: Reusing one handle across the specs a worker evaluates lets its
#: in-memory layer share isolated baselines between specs — matching
#: the old shared-MixRunner behaviour even with the disk layer off.
_WORKER_STORES: dict = {}


def _execute_in_worker(spec: RunSpec, store_root: Optional[str]) -> RunRecord:
    """Module-level worker entry point (picklable for process pools)."""
    store = _WORKER_STORES.get(store_root)
    if store is None:
        store = ResultStore(store_root)
        _WORKER_STORES[store_root] = store
    return execute_spec(spec, store)


class Session:
    """Facade running declarative specs through a store and executor."""

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        executor: Optional[Executor] = None,
        jobs: Optional[int] = None,
    ):
        if store is None:
            store = ResultStore(default_store_root())
        self.store = store
        self.executor = executor if executor is not None else make_executor(jobs)

    # ------------------------------------------------------------------
    # Spec evaluation
    # ------------------------------------------------------------------
    def run(self, spec: RunSpec) -> RunRecord:
        """Evaluate one spec in-process (store-aware)."""
        return execute_spec(spec, self.store)

    def run_specs(self, specs: Sequence[RunSpec]) -> List[RunRecord]:
        """Evaluate a batch: serve store hits, fan out the misses.

        Results are returned in spec order regardless of executor, so
        downstream reports are byte-identical at any ``--jobs``.
        """
        specs = list(specs)
        records: List[Optional[RunRecord]] = [None] * len(specs)
        misses: List[Tuple[int, RunSpec, str]] = []
        for index, spec in enumerate(specs):
            fingerprint = spec.fingerprint()
            hit = self.store.get_record(fingerprint)
            if hit is not None:
                records[index] = hit.relabeled(spec.policy.display)
            else:
                misses.append((index, spec, fingerprint))
        if misses:
            if isinstance(self.executor, SerialExecutor):
                # In-process: share this session's store directly, so
                # its memory layer (baselines included) accumulates.
                worker = functools.partial(execute_spec, store=self.store)
            else:
                worker = functools.partial(
                    _execute_in_worker,
                    store_root=(
                        str(self.store.root) if self.store.root else None
                    ),
                )
            fresh = self.executor.map(worker, [s for _, s, _ in misses])
            for (index, __, fingerprint), record in zip(misses, fresh):
                records[index] = record
                # Workers already persisted to disk; keep the parent's
                # in-memory layer warm without a second disk write.
                self.store.cache_record(fingerprint, record)
        return [r for r in records if r is not None]

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def sweep_specs(
        self,
        scale,
        policies: Sequence[PolicySpec] = DEFAULT_POLICIES,
        scheme: SchemeLike = None,
        core_kind: str = CoreKind.OOO,
    ) -> List[RunSpec]:
        """The full (mix x policy) spec grid for an experiment scale."""
        scheme_spec = _as_scheme_spec(scheme)
        refs = mix_refs(
            lc_names=scale.lc_names,
            loads=scale.loads,
            combos=scale.combos,
            mixes_per_combo=scale.mixes_per_combo,
            seed=scale.seed,
        )
        return [
            RunSpec(
                mix=ref,
                policy=policy,
                scheme=scheme_spec,
                core_kind=core_kind,
                requests=scale.requests,
                seed=scale.seed,
            )
            for ref in refs
            for policy in policies
        ]

    def sweep(
        self,
        scale,
        policies: Sequence[PolicySpec] = DEFAULT_POLICIES,
        scheme: SchemeLike = None,
        core_kind: str = CoreKind.OOO,
    ) -> SweepResult:
        """Run (or fetch) a mixes x policies sweep as a SweepResult."""
        specs = self.sweep_specs(scale, policies, scheme, core_kind)
        return SweepResult(records=self.run_specs(specs))

    # ------------------------------------------------------------------
    # Baselines
    # ------------------------------------------------------------------
    def baseline(
        self,
        lc_name: str,
        load: float,
        core_kind: str = CoreKind.OOO,
        requests: int = 120,
        seed: int = 2014,
    ) -> BaselineResult:
        """Isolated 2 MB-private baseline for one (app, load) point."""
        from ..sim.config import CMPConfig
        from ..workloads.latency_critical import make_lc_workload

        runner = MixRunner(
            config=CMPConfig(core_kind=core_kind),
            requests=requests,
            seed=seed,
            store=self.store,
        )
        return runner.baseline(make_lc_workload(lc_name), load)


_SESSION: Optional[Session] = None


def get_session() -> Session:
    """The process-wide default session (created on first use)."""
    global _SESSION
    if _SESSION is None:
        _SESSION = Session()
    return _SESSION


def reset_session() -> None:
    """Drop the default session (tests use this to repoint the store)."""
    global _SESSION
    _SESSION = None
