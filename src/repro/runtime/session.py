"""The Session facade: specs in, records out, cache in between.

A :class:`Session` ties the runtime's pieces together:

* it owns a :class:`~repro.runtime.store.ResultStore` (persistent by
  default; see ``REPRO_CACHE_DIR`` / ``REPRO_STORE``),
* it owns an :class:`~repro.runtime.executors.Executor` (serial by
  default; ``jobs``/``REPRO_JOBS`` selects the process-pool fan-out,
  ``scheduler="async"`` the asyncio engine),
* and it evaluates :class:`~repro.runtime.spec.RunSpec` /
  :class:`~repro.runtime.spec.TaskSpec` batches by serving store hits
  in-process and dispatching only the misses.

Typical use::

    >>> from repro.runtime import Session, PolicySpec
    >>> from repro.experiments import ExperimentScale
    >>> session = Session(jobs=4)
    >>> sweep = session.sweep(ExperimentScale(requests=60,
    ...     lc_names=("masstree",), loads=(0.2,), combos=("nft",)))
    ...                                            # doctest: +SKIP

Large batches can stream through the batched async engine instead of
one blocking ``map``::

    >>> records = session.run_many(specs, scheduler="async")  # doctest: +SKIP

Results are bit-identical across executors and across processes: every
simulation is seeded from its spec alone, and the store is keyed by the
spec's content fingerprint.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from ..sim.config import CoreKind
from ..sim.mix_runner import BaselineResult, MixRunner
from .executors import Executor, SerialExecutor, make_executor
from .scheduler import ProgressEvent, SpecScheduler
from .spec import (
    PolicySpec,
    RunRecord,
    RunSpec,
    SchemeSpec,
    SweepResult,
    mix_refs,
)
from .store import ResultStore, default_store_root
from .work import (
    adopt,
    cache_result,
    execute_in_worker,
    execute_spec,
    record_from_result,
    store_lookup,
)

__all__ = [
    "DEFAULT_POLICIES",
    "Session",
    "execute_spec",
    "record_from_result",
    "get_session",
    "reset_session",
]

#: The five schemes of Figures 9-11, in the paper's order.
DEFAULT_POLICIES: Tuple[PolicySpec, ...] = (
    PolicySpec.of("lru", label="LRU"),
    PolicySpec.of("ucp", label="UCP"),
    PolicySpec.of("onoff", label="OnOff"),
    PolicySpec.of("static_lc", label="StaticLC"),
    PolicySpec.of("ubik", label="Ubik", slack=0.05),
)

SchemeLike = Union[SchemeSpec, str, None]

SchedulerLike = Union[SpecScheduler, str, None]


def _as_scheme_spec(scheme: SchemeLike) -> Optional[SchemeSpec]:
    """Normalize a scheme argument (name, spec, or None)."""
    if scheme is None or isinstance(scheme, SchemeSpec):
        return scheme
    return SchemeSpec.of(scheme)


class Session:
    """Facade running declarative specs through a store and executor.

    ``scheduler`` picks the default batch engine: ``None`` keeps the
    executor's blocking ``map``; ``"async"`` streams batches through a
    :class:`~repro.runtime.scheduler.SpecScheduler` (bounded pool,
    store-hit short-circuiting, progress events to ``progress``).
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        executor: Optional[Executor] = None,
        jobs: Optional[int] = None,
        scheduler: SchedulerLike = None,
        progress: Optional[Callable[[ProgressEvent], None]] = None,
    ):
        if store is None:
            store = ResultStore(default_store_root())
        self.store = store
        self.progress = progress
        self._default_scheduler = scheduler
        if executor is None:
            kind = scheduler if isinstance(scheduler, str) else "auto"
            executor = make_executor(jobs, kind=kind)
        self.executor = executor

    # ------------------------------------------------------------------
    # Spec evaluation
    # ------------------------------------------------------------------
    def run(self, spec) -> Any:
        """Evaluate one spec in-process (store-aware)."""
        return execute_spec(spec, self.store)

    def _make_scheduler(
        self,
        scheduler: SchedulerLike,
        progress: Optional[Callable[[ProgressEvent], None]],
    ) -> Optional[SpecScheduler]:
        """Resolve a scheduler argument against the session defaults."""
        if scheduler is None:
            scheduler = self._default_scheduler
        if scheduler is None:
            return None
        if isinstance(scheduler, SpecScheduler):
            return scheduler
        if scheduler in ("serial", "parallel", "auto"):
            # Explicit non-async names mean: use the executor path.
            return None
        if scheduler != "async":
            raise ValueError(
                f"unknown scheduler {scheduler!r} (known: serial, parallel, async)"
            )
        return SpecScheduler(
            store=self.store,
            jobs=getattr(self.executor, "jobs", 1),
            progress=progress if progress is not None else self.progress,
        )

    def run_many(
        self,
        specs: Sequence[Any],
        scheduler: SchedulerLike = None,
        progress: Optional[Callable[[ProgressEvent], None]] = None,
    ) -> List[Any]:
        """Evaluate a batch of specs (sweep runs and tasks alike).

        With a scheduler (an instance, ``"async"``, or the session
        default) the batch streams through the bounded async engine;
        otherwise store hits are served inline and the misses fan out
        through the executor's ``map``.  Results always come back in
        spec order, byte-identical either way.
        """
        engine = self._make_scheduler(scheduler, progress)
        if engine is not None:
            return engine.run(specs)
        return self.run_specs(specs)

    def run_specs(self, specs: Sequence[Any]) -> List[Any]:
        """Evaluate a batch: serve store hits, fan out the misses.

        Results are returned in spec order regardless of executor, so
        downstream reports are byte-identical at any ``--jobs``.
        """
        specs = list(specs)
        results: List[Optional[Any]] = [None] * len(specs)
        misses: List[Tuple[int, Any, str]] = []
        for index, spec in enumerate(specs):
            fingerprint, hit = store_lookup(spec, self.store)
            if hit is not None:
                results[index] = hit
            else:
                misses.append((index, spec, fingerprint))
        if misses:
            if isinstance(self.executor, SerialExecutor):
                # In-process: share this session's store directly, so
                # its memory layer (baselines included) accumulates.
                worker = functools.partial(execute_spec, store=self.store)
            else:
                worker = functools.partial(
                    execute_in_worker,
                    store_root=(
                        str(self.store.root) if self.store.root else None
                    ),
                )
            fresh = self.executor.map(worker, [s for _, s, _ in misses])
            for (index, spec, fingerprint), result in zip(misses, fresh):
                results[index] = adopt(spec, result)
                if not isinstance(self.executor, SerialExecutor):
                    # Workers already persisted to disk; keep the
                    # parent's in-memory layer warm without a second
                    # disk write.
                    cache_result(spec, self.store, fingerprint, result)
        return [r for r in results if r is not None]

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def sweep_specs(
        self,
        scale,
        policies: Sequence[PolicySpec] = DEFAULT_POLICIES,
        scheme: SchemeLike = None,
        core_kind: str = CoreKind.OOO,
    ) -> List[RunSpec]:
        """The full (mix x policy) spec grid for an experiment scale."""
        scheme_spec = _as_scheme_spec(scheme)
        refs = mix_refs(
            lc_names=scale.lc_names,
            loads=scale.loads,
            combos=scale.combos,
            mixes_per_combo=scale.mixes_per_combo,
            seed=scale.seed,
        )
        return [
            RunSpec(
                mix=ref,
                policy=policy,
                scheme=scheme_spec,
                core_kind=core_kind,
                requests=scale.requests,
                seed=scale.seed,
            )
            for ref in refs
            for policy in policies
        ]

    def sweep(
        self,
        scale,
        policies: Sequence[PolicySpec] = DEFAULT_POLICIES,
        scheme: SchemeLike = None,
        core_kind: str = CoreKind.OOO,
    ) -> SweepResult:
        """Run (or fetch) a mixes x policies sweep as a SweepResult."""
        specs = self.sweep_specs(scale, policies, scheme, core_kind)
        return SweepResult(records=self.run_many(specs))

    # ------------------------------------------------------------------
    # Baselines
    # ------------------------------------------------------------------
    def baseline(
        self,
        lc_name: str,
        load: float,
        core_kind: str = CoreKind.OOO,
        requests: int = 120,
        seed: int = 2014,
    ) -> BaselineResult:
        """Isolated 2 MB-private baseline for one (app, load) point."""
        from ..sim.config import CMPConfig
        from ..workloads.latency_critical import make_lc_workload

        runner = MixRunner(
            config=CMPConfig(core_kind=core_kind),
            requests=requests,
            seed=seed,
            store=self.store,
        )
        return runner.baseline(make_lc_workload(lc_name), load)


_SESSION: Optional[Session] = None


def get_session() -> Session:
    """The process-wide default session (created on first use)."""
    global _SESSION
    if _SESSION is None:
        _SESSION = Session()
    return _SESSION


def reset_session() -> None:
    """Drop the default session (tests use this to repoint the store)."""
    global _SESSION
    _SESSION = None
