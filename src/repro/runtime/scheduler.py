"""Async batched spec scheduling: stream huge grids through a pool.

The serial and process-pool executors evaluate a batch as one blocking
``map`` call.  That is fine for a figure-sized grid, but streaming
thousands of queued specs — the paper-scale 400-mix grid, or several
figures' grids concatenated — wants an engine that keeps a bounded
number of simulations in flight, serves store hits without occupying a
worker, deduplicates identical in-flight work, and reports progress as
it drains.  This module provides both halves:

* :class:`AsyncExecutor` — an asyncio-based drop-in for the two-method
  :class:`~repro.runtime.executors.Executor` protocol.  ``map`` runs an
  event loop that fans items over a process pool behind a bounded
  submission window; results come back in input order, bit-identical
  to :class:`~repro.runtime.executors.SerialExecutor`.
* :class:`SpecScheduler` — the batched engine above it: an arbitrarily
  large queue of :class:`~repro.runtime.spec.RunSpec` /
  :class:`~repro.runtime.spec.TaskSpec` drains through the pool with
  store-hit short-circuiting, in-flight fingerprint deduplication,
  structured :class:`ProgressEvent`\\ s (submitted/cached/completed
  counts plus an ETA), and mid-batch cancellation that never corrupts
  the store (writes stay atomic; finished work stays finished).

Determinism is untouched: every simulation seeds its RNGs from the
spec alone, so serial, parallel, and async execution of the same batch
produce byte-identical store records at any worker count.

The scheduler is agnostic to *what* a spec is — sweep runs, task
specs, and the trace shards of :mod:`repro.runtime.sharding` all queue
the same way.  Workers the scheduler dispatches to warm their
process-wide artifact cache (:mod:`repro.runtime.artifacts`) across
the whole batch: the longer a batch streams, the fewer streams,
baselines, and workload objects each worker re-derives, with no
scheduler-level bookkeeping required.  When the session shards a batch, it interleaves shard
specs from different runs round-robin *before* handing them here
(:func:`repro.runtime.sharding.interleave_shards`), so the bounded
submission window always holds shards of many runs at once: intra-run
parallelism fills idle workers without starving the rest of the grid,
and the in-flight fingerprint dedup collapses identical shards the
moment two specs share a baseline.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from .executors import Executor, default_jobs
from .store import ResultStore
from .work import adopt, cache_result, execute_in_worker, store_lookup

__all__ = [
    "ProgressEvent",
    "SchedulerCancelled",
    "AsyncExecutor",
    "SpecScheduler",
]


@dataclass(frozen=True)
class ProgressEvent:
    """One structured progress update from a draining scheduler.

    ``phase`` is what just happened (``submitted`` / ``cached`` /
    ``completed`` / ``cancelled`` / ``done``); the counters are the
    queue's cumulative state at that moment.  ``eta_s`` extrapolates
    the mean per-completion wall time over the work still outstanding
    (``None`` until the first miss completes).
    """

    phase: str
    total: int
    submitted: int
    cached: int
    completed: int
    in_flight: int
    deduped: int
    elapsed_s: float
    eta_s: Optional[float] = None

    @property
    def done(self) -> int:
        """Specs resolved so far (store hits plus computed)."""
        return self.cached + self.completed

    def __str__(self) -> str:
        line = (
            f"{self.done}/{self.total} done"
            f" ({self.cached} cached, {self.in_flight} in flight)"
        )
        if self.deduped:
            line += f" [{self.deduped} deduped]"
        if self.eta_s is not None:
            line += f" eta {self.eta_s:.0f}s"
        return line


class SchedulerCancelled(RuntimeError):
    """Raised by :meth:`SpecScheduler.run` after a mid-batch cancel.

    Completed work was persisted atomically before the cancel took
    effect, so the store is intact and a re-run resumes from it.
    """

    def __init__(self, completed: int, total: int):
        super().__init__(
            f"scheduler cancelled after {completed}/{total} specs"
        )
        self.completed = completed
        self.total = total


class AsyncExecutor(Executor):
    """Asyncio executor satisfying the two-method ``Executor`` protocol.

    ``map`` spins up an event loop, offloads each call to a process
    pool of ``jobs`` workers, and bounds how many items are submitted
    at once (``window``, default ``2 * jobs``) so arbitrarily long item
    sequences never flood the pool's internal queue.  Order and results
    are identical to the serial executor.
    """

    name = "async"

    def __init__(self, jobs: Optional[int] = None, window: Optional[int] = None):
        self.jobs = jobs if jobs is not None else default_jobs()
        if self.jobs < 1:
            raise ValueError("AsyncExecutor needs at least one worker")
        self.window = window if window is not None else 2 * self.jobs
        if self.window < 1:
            raise ValueError("AsyncExecutor window must be positive")

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> List[Any]:
        """Fan the items over the pool from an event loop (ordered)."""
        items = list(items)
        workers = min(self.jobs, len(items))
        if workers <= 1:
            return [fn(item) for item in items]
        return asyncio.run(self._drain(fn, items, workers))

    async def _drain(
        self, fn: Callable[[Any], Any], items: List[Any], workers: int
    ) -> List[Any]:
        loop = asyncio.get_running_loop()
        gate = asyncio.Semaphore(max(self.window, workers))
        with ProcessPoolExecutor(max_workers=workers) as pool:

            async def one(item: Any) -> Any:
                async with gate:
                    return await loop.run_in_executor(pool, fn, item)

            return list(await asyncio.gather(*(one(item) for item in items)))


class SpecScheduler:
    """Drain a (possibly huge) spec queue through a bounded pool.

    For every spec, in input order:

    * a store hit resolves immediately — no worker is occupied;
    * a miss whose fingerprint is already in flight awaits the existing
      computation (deduplication) and adopts its result;
    * a fresh miss is submitted to the process pool, gated by a bounded
      submission window.

    Progress is reported through ``progress`` (any callable taking a
    :class:`ProgressEvent`); :meth:`cancel` stops new submissions and
    makes :meth:`run` raise :class:`SchedulerCancelled` once in-flight
    work settles.  Results are returned in spec order and are
    bit-identical to serial evaluation.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        jobs: Optional[int] = None,
        window: Optional[int] = None,
        progress: Optional[Callable[[ProgressEvent], None]] = None,
    ):
        self.store = store
        self.jobs = jobs if jobs is not None else default_jobs()
        if self.jobs < 1:
            raise ValueError("SpecScheduler needs at least one worker")
        self.window = window if window is not None else 2 * self.jobs
        if self.window < 1:
            raise ValueError("SpecScheduler window must be positive")
        self.progress = progress
        self._cancelled = False

    def cancel(self) -> None:
        """Stop submitting new work; :meth:`run` raises when drained."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been requested for this batch."""
        return self._cancelled

    def run(self, specs: Sequence[Any]) -> List[Any]:
        """Drain the queue; returns results in spec order."""
        return asyncio.run(self._drain(list(specs)))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _emit(self, phase: str, state: Dict[str, int], started: float) -> None:
        if self.progress is None:
            return
        elapsed = time.monotonic() - started
        eta = None
        remaining = state["total"] - state["cached"] - state["completed"]
        if state["completed"] > 0 and remaining > 0:
            eta = elapsed / state["completed"] * remaining
        self.progress(
            ProgressEvent(
                phase=phase,
                total=state["total"],
                submitted=state["submitted"],
                cached=state["cached"],
                completed=state["completed"],
                in_flight=state["in_flight"],
                deduped=state["deduped"],
                elapsed_s=elapsed,
                eta_s=eta,
            )
        )

    async def _drain(self, specs: List[Any]) -> List[Any]:
        loop = asyncio.get_running_loop()
        started = time.monotonic()
        state = {
            "total": len(specs),
            "submitted": 0,
            "cached": 0,
            "completed": 0,
            "in_flight": 0,
            "deduped": 0,
        }
        results: List[Any] = [None] * len(specs)
        in_flight: Dict[str, asyncio.Future] = {}
        gate = asyncio.Semaphore(max(self.window, self.jobs))
        store_target = (
            self.store.share_target() if self.store is not None else None
        )
        skipped = False

        with ProcessPoolExecutor(max_workers=self.jobs) as pool:

            async def submit(spec: Any, fingerprint: str) -> Any:
                async with gate:
                    if self._cancelled:
                        raise SchedulerCancelled(
                            state["cached"] + state["completed"], state["total"]
                        )
                    state["submitted"] += 1
                    state["in_flight"] += 1
                    self._emit("submitted", state, started)
                    try:
                        result = await loop.run_in_executor(
                            pool, execute_in_worker, spec, store_target
                        )
                    finally:
                        state["in_flight"] -= 1
                    if self.store is not None:
                        cache_result(spec, self.store, fingerprint, result)
                    return result

            async def produce(index: int, spec: Any) -> None:
                nonlocal skipped
                fingerprint, hit = store_lookup(spec, self.store)
                if hit is not None:
                    results[index] = hit
                    state["cached"] += 1
                    self._emit("cached", state, started)
                    return
                future = in_flight.get(fingerprint)
                if future is None:
                    future = asyncio.ensure_future(submit(spec, fingerprint))
                    in_flight[fingerprint] = future
                else:
                    state["deduped"] += 1
                try:
                    results[index] = adopt(spec, await future)
                except SchedulerCancelled:
                    skipped = True
                    return
                # Completion is counted per *spec*, not per computation:
                # every deduplicated awaiter resolves one queue entry,
                # so `done` reaches `total` and the ETA drains to zero.
                state["completed"] += 1
                self._emit("completed", state, started)

            await asyncio.gather(*(produce(i, s) for i, s in enumerate(specs)))

        if skipped or self._cancelled:
            self._emit("cancelled", state, started)
            raise SchedulerCancelled(
                state["cached"] + state["completed"], state["total"]
            )
        self._emit("done", state, started)
        return results
