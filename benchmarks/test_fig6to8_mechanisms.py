"""Figures 6-8: Ubik's mechanisms, regenerated from live runs.

Figure 6: a traced boost transient (target jumps above the 2 MB
target on activation, resident fills toward it, de-boost returns the
space).  Figure 7: the sizing option table with a cost/benefit winner
and an infeasible frontier.  Figure 8: the repartitioning table's
incremental rows.
"""

import numpy as np
from conftest import run_once

from repro.core.boost import evaluate_options
from repro.core.repartition import RepartitionTable
from repro.core.ubik import UbikPolicy
from repro.experiments.common import format_table
from repro.monitor.miss_curve import MissCurve
from repro.sim.config import CMPConfig
from repro.sim.engine import LCInstanceSpec, MixEngine
from repro.units import mb_to_lines
from repro.workloads.batch import make_batch_workload
from repro.workloads.latency_critical import make_lc_workload


def _traced_run():
    workload = make_lc_workload("shore")
    rng = np.random.default_rng(5)
    requests = 80
    works = np.asarray([workload.work.sample(rng) for _ in range(requests)])
    mean_service = workload.mean_service_cycles()
    arrivals = np.cumsum(rng.exponential(mean_service / 0.2, size=requests))
    spec = LCInstanceSpec(
        workload=workload,
        arrivals=arrivals,
        works=works,
        deadline_cycles=8 * mean_service,
        target_tail_cycles=6 * mean_service,
        load=0.2,
    )
    engine = MixEngine(
        lc_specs=[spec],
        batch_workloads=[make_batch_workload("f", seed=1)],
        policy=UbikPolicy(slack=0.05),
        config=CMPConfig(),
        seed=2,
        trace_partitions=True,
    )
    result = engine.run()
    return workload, engine, result


def test_fig6_boost_transient(benchmark, emit):
    workload, engine, result = run_once(benchmark, _traced_run)
    trace = engine.partition_trace[0]
    target_lines = float(workload.target_lines)
    targets = np.asarray([t for __, t, __ in trace])
    residents = np.asarray([r for __, __, r in trace])

    boosted = targets > target_lines * 1.01
    downsized = targets < target_lines * 0.7
    emit(
        "fig6",
        format_table(
            ["Quantity", "Value"],
            [
                ["trace samples", len(trace)],
                ["boosted samples", int(boosted.sum())],
                ["downsized (idle) samples", int(downsized.sum())],
                ["de-boost interrupts", result.lc_instances[0].deboosts],
            ],
            title="Figure 6: boost transient trace summary",
        ),
    )
    # The three phases of Figure 6 all occur...
    assert boosted.any()
    assert downsized.any()
    # ...and during boosts the partition is still filling (resident
    # lags the target, the transient the analysis is about).
    assert (residents[boosted] < targets[boosted] - 1).any()
    # De-boosting returned space before the run's end.
    assert result.lc_instances[0].deboosts > 0


def test_fig7_option_table(benchmark, emit):
    def build():
        curve = MissCurve(
            [0, mb_to_lines(0.5), mb_to_lines(1), mb_to_lines(2), mb_to_lines(4)],
            [0.8, 0.45, 0.25, 0.12, 0.04],
        )
        return evaluate_options(
            curve=curve,
            c=20.0,
            M=100.0,
            active_lines=mb_to_lines(2),
            deadline_cycles=2.5e7,
            boost_max_lines=mb_to_lines(4),
            batch_delta_hit_rate=lambda d: d * 1e-6,
            idle_fraction=0.85,
            activation_rate=2e-8,
            num_options=4,
        )

    options = run_once(benchmark, build)
    rows = [
        [
            f"{o.idle_lines:.0f}",
            "-" if not o.feasible else f"{o.boost_lines:.0f}",
            "INFEASIBLE" if not o.feasible else f"{o.net_gain:.2e}",
        ]
        for o in options
    ]
    emit(
        "fig7",
        format_table(["s_idle", "s_boost", "gain"], rows, title="Figure 7"),
    )
    feasible = [o for o in options if o.feasible]
    # Paper structure: several feasible options, then an infeasible one.
    assert len(feasible) >= 2
    assert not options[-1].feasible
    # Deeper idle sizes need bigger boosts.
    boosts = [o.boost_lines for o in feasible]
    assert boosts == sorted(boosts, reverse=False) or boosts == sorted(
        boosts, reverse=True
    )
    # The winner is a middle option, not the trivial one.
    best = max(feasible, key=lambda o: o.net_gain)
    assert best.downsizes


def test_fig8_repartition_rows(benchmark, emit):
    def build():
        batch1 = make_batch_workload("f", seed=4)
        batch2 = make_batch_workload("t", seed=5)
        llc = mb_to_lines(12)
        return RepartitionTable(
            [batch1.miss_curve, batch2.miss_curve],
            [1.0, 1.0],
            llc,
            avg_batch_lines=llc * 0.55,
            buckets=16,
        )

    table = run_once(benchmark, build)
    rows = [
        [level, int(table.row(level)[0]), int(table.row(level)[1])]
        for level in range(17)
    ]
    emit(
        "fig8",
        format_table(["buckets", "app1", "app2"], rows, title="Figure 8"),
    )
    for level in range(1, 17):
        diff = table.row(level) - table.row(level - 1)
        assert diff.sum() == 1  # one bucket per step
        assert (diff >= 0).all()  # growth is incremental
