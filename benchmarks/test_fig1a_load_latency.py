"""Figure 1a: load-latency diagrams (mean and 95th-pct tail mean).

Expected shape: tail >> mean at every load; both blow up superlinearly
as load grows (paper Observations 1 and 3).
"""

from conftest import run_once

from repro.experiments.common import format_table
from repro.experiments.fig1_load_latency import run_fig1a
from repro.workloads.latency_critical import LC_NAMES

LOADS = (0.1, 0.3, 0.5, 0.7)


def test_fig1a_load_latency(benchmark, emit):
    curves = run_once(
        benchmark, lambda: run_fig1a(LC_NAMES, loads=LOADS, requests=120)
    )
    rows = []
    for name, points in curves.items():
        for p in points:
            rows.append(
                [name, f"{p.load:.0%}", f"{p.mean_ms:.3f}", f"{p.tail95_ms:.3f}"]
            )
    emit(
        "fig1a",
        format_table(
            ["Workload", "Load", "Mean (ms)", "Tail95 (ms)"],
            rows,
            title="Figure 1a: load-latency curves (app alone, 2 MB LLC)",
        ),
    )
    for name, points in curves.items():
        # Observation 1: tail is well above the mean.
        assert all(p.tail95_ms > p.mean_ms for p in points), name
        # Observation 3: latency grows with load, superlinearly at the top.
        tails = [p.tail95_ms for p in points]
        assert tails[-1] > tails[0], name
        low_slope = tails[1] - tails[0]
        high_slope = tails[-1] - tails[-2]
        assert high_slope > low_slope * 0.5, name
