"""Figure 9: distributions of tail degradation and weighted speedup.

Expected shape: LRU/UCP/OnOff suffer significant degradation on a
fraction of mixes (worst cases well above 1.2x); StaticLC and Ubik hold
~1.0x everywhere; Ubik's speedups track UCP/OnOff and beat StaticLC.
"""

import numpy as np
from conftest import run_once

from repro.experiments.common import default_scale, format_table
from repro.experiments.fig9_distributions import run_fig9


def test_fig9_distributions(benchmark, emit):
    data = run_once(benchmark, lambda: run_fig9(default_scale()))
    lines = ["Figure 9: per-scheme distributions over the mix grid"]
    for load_label, load_name in (("lo", "Low load"), ("hi", "High load")):
        rows = []
        for policy in data.policies:
            degr = data.sweep.sorted_degradations(policy, load_label)
            spd = data.sweep.sorted_speedups(policy, load_label)
            rows.append(
                [
                    policy,
                    f"{np.median(degr):.3f}",
                    f"{degr[0]:.3f}",
                    f"{data.violation_fraction(policy, load_label):.0%}",
                    f"{np.mean(spd):.3f}",
                    f"{spd[-1]:.3f}",
                ]
            )
        lines.append(
            format_table(
                ["Scheme", "Med tail", "Worst tail", ">1.1x", "Avg speedup", "Best speedup"],
                rows,
                title=f"\n{load_name}:",
            )
        )
    emit("fig9", "\n".join(lines))

    for load_label in ("lo", "hi"):
        # Safety: StaticLC and Ubik hold tails; Ubik within its 5% slack
        # (plus measurement noise).
        assert data.worst_degradation("StaticLC", load_label) < 1.10
        assert data.worst_degradation("Ubik", load_label) < 1.20
        # Best-effort schemes violate tails on some mixes.
        worst_best_effort = max(
            data.worst_degradation(p, load_label) for p in ("LRU", "UCP", "OnOff")
        )
        assert worst_best_effort > 1.15
        # Throughput: Ubik well above StaticLC, near UCP/OnOff.
        ubik = data.sweep.average_speedup("Ubik", load_label)
        static = data.sweep.average_speedup("StaticLC", load_label)
        ucp = data.sweep.average_speedup("UCP", load_label)
        assert ubik > static
        assert ubik > ucp - 0.05
