"""Table 1: parameters of the latency-critical workloads studied."""

from conftest import run_once

from repro.experiments.common import format_table
from repro.units import cycles_to_ms
from repro.workloads.latency_critical import TABLE1_ROWS, all_lc_workloads


def test_table1_workloads(benchmark, emit):
    def build():
        workloads = all_lc_workloads()
        rows = []
        for name, config, requests in TABLE1_ROWS:
            workload = workloads[name]
            rows.append(
                [
                    name,
                    config,
                    requests,
                    f"{workload.profile.apki:.1f}",
                    f"{cycles_to_ms(workload.mean_service_cycles()):.3f}",
                ]
            )
        return rows

    rows = run_once(benchmark, build)
    emit(
        "table1",
        format_table(
            ["Workload", "Configuration", "Requests", "APKI", "Mean svc (ms)"],
            rows,
            title="Table 1: latency-critical workload parameters",
        ),
    )
    # Paper request counts reproduced exactly.
    assert [r[2] for r in rows] == [6000, 9000, 900, 7500, 37500]
