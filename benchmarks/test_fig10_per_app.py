"""Figure 10: per-app tail degradation and weighted speedup (OOO cores).

Expected per-app stories (paper Section 7.1):

* xapian (low LLC intensity): all schemes hold tails at low load; UCP
  and Ubik reach the highest speedups by shrinking its partition.
* shore / specjbb (strong cross-request reuse): LRU/UCP/OnOff violate
  tails; StaticLC and Ubik protect them.
* Ubik achieves the best overall balance.
"""

from conftest import run_once

from repro.experiments.common import default_scale, format_table
from repro.experiments.fig10_per_app import run_fig10


def entries_by(entries, **kwargs):
    out = entries
    for key, value in kwargs.items():
        out = [e for e in out if getattr(e, key) == value]
    return out


def render(entries, title):
    rows = [
        [
            e.lc_name,
            e.load_label,
            e.policy,
            f"{e.overall_degradation:.3f}",
            f"{e.worst_degradation:.3f}",
            f"{e.average_speedup:.3f}",
        ]
        for e in entries
    ]
    return format_table(
        ["LC app", "Load", "Scheme", "Tail", "Worst tail", "Avg speedup"],
        rows,
        title=title,
    )


def test_fig10_per_app(benchmark, emit):
    entries = run_once(benchmark, lambda: run_fig10(default_scale()))
    emit("fig10", render(entries, "Figure 10: per-app results, OOO cores"))

    # Safety of StaticLC/Ubik for the reuse-heavy apps.
    for lc_name in ("shore", "specjbb"):
        for load in ("lo", "hi"):
            for policy in ("StaticLC", "Ubik"):
                (entry,) = entries_by(
                    entries, lc_name=lc_name, load_label=load, policy=policy
                )
                assert entry.worst_degradation < 1.2, (lc_name, load, policy)

    # Best-effort schemes hurt at least one reuse-heavy configuration.
    violations = [
        e
        for e in entries
        if e.policy in ("LRU", "UCP", "OnOff")
        and e.lc_name in ("shore", "specjbb", "masstree")
        and e.worst_degradation > 1.15
    ]
    assert violations, "expected best-effort tail violations"

    # xapian low load: every scheme is tail-safe; Ubik speedup beats
    # StaticLC's.
    for policy in ("LRU", "UCP", "OnOff", "StaticLC", "Ubik"):
        (entry,) = entries_by(entries, lc_name="xapian", load_label="lo", policy=policy)
        assert entry.overall_degradation < 1.15, policy
    (ubik,) = entries_by(entries, lc_name="xapian", load_label="lo", policy="Ubik")
    (static,) = entries_by(
        entries, lc_name="xapian", load_label="lo", policy="StaticLC"
    )
    assert ubik.average_speedup > static.average_speedup
