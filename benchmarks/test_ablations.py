"""Ablations: what each Ubik mechanism contributes (DESIGN.md).

Expected shape: removing boosting drifts tails upward; removing
accurate de-boosting keeps tails safe but costs batch throughput;
exact bounds downsize at least as aggressively and stay safe here.
"""

from conftest import run_once

from repro.experiments.ablations import run_ablations
from repro.experiments.common import ExperimentScale, default_scale, format_table


def ablation_scale():
    base = default_scale()
    return ExperimentScale(
        requests=base.requests,
        lc_names=("shore", "specjbb", "moses"),
        combos=("nft", "fts"),
        mixes_per_combo=base.mixes_per_combo,
    )


def test_ubik_ablations(benchmark, emit):
    entries = run_once(benchmark, lambda: run_ablations(ablation_scale()))
    rows = [
        [
            e.variant,
            e.load_label,
            f"{e.average_degradation:.3f}",
            f"{e.worst_degradation:.3f}",
            f"{e.average_speedup_pct:.1f}%",
        ]
        for e in entries
    ]
    emit(
        "ablations",
        format_table(
            ["Variant", "Load", "Avg tail", "Worst tail", "Avg speedup"],
            rows,
            title="Ablations: Ubik design choices (5% slack)",
        ),
    )

    def metric(variant, load, field):
        (entry,) = [
            e for e in entries if e.variant == variant and e.load_label == load
        ]
        return getattr(entry, field)

    for load in ("lo", "hi"):
        # No boosting: tails drift beyond full Ubik's.
        assert metric("Ubik-noboost", load, "average_degradation") >= metric(
            "Ubik", load, "average_degradation"
        ) - 0.005
        # No de-boosting: safe tails, but no throughput advantage.
        assert metric("Ubik-nodeboost", load, "worst_degradation") < 1.15
        assert metric("Ubik-nodeboost", load, "average_speedup_pct") <= metric(
            "Ubik", load, "average_speedup_pct"
        ) + 0.5
        # Exact bounds: still safe in this engine.
        assert metric("Ubik-exact", load, "worst_degradation") < 1.2
