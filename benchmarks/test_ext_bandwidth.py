"""Extension: memory-bandwidth contention (paper future work).

Expected shape: cache partitioning alone cannot protect tails once the
memory channel contends — both StaticLC and Ubik degrade together as
bandwidth tightens, motivating the bandwidth partitioning the paper
defers to future work.
"""

from conftest import run_once

from repro.experiments.bandwidth_study import run_bandwidth_study
from repro.experiments.common import format_table


def test_ext_bandwidth_contention(benchmark, emit):
    points = run_once(benchmark, lambda: run_bandwidth_study(requests=100))
    rows = [
        [
            "inf" if p.peak_misses_per_kilocycle > 1e6 else f"{p.peak_misses_per_kilocycle:.0f}",
            p.policy,
            f"{p.tail_degradation:.3f}",
            f"{p.weighted_speedup:.3f}",
        ]
        for p in points
    ]
    emit(
        "ext_bandwidth",
        format_table(
            ["Peak (misses/kcycle)", "Policy", "Tail degradation", "Weighted speedup"],
            rows,
            title="Extension: tails under memory-bandwidth contention",
        ),
    )

    by_policy = {}
    for p in points:
        by_policy.setdefault(p.policy, []).append(p)
    for policy, series in by_policy.items():
        tails = [p.tail_degradation for p in series]  # peaks tighten in order
        # Unlimited bandwidth: the usual guarantee holds.
        assert tails[0] < 1.05, policy
        # Tightening the channel monotonically degrades tails.
        for a, b in zip(tails, tails[1:]):
            assert b >= a - 0.01, policy
        # The tightest point is a clear violation for everyone: cache
        # partitioning does not manage this resource.
        assert tails[-1] > 1.15, policy
    # Neither scheme can fix it: they degrade together.
    static = [p.tail_degradation for p in by_policy["StaticLC"]]
    ubik = [p.tail_degradation for p in by_policy["Ubik-5%"]]
    assert abs(static[-1] - ubik[-1]) < 0.25
