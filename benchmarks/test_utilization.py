"""Section 7.1: the utilization argument.

Expected shape: with LRU the operator cannot colocate (10% utilization,
matching industry reports); StaticLC and Ubik colocate safely on nearly
every mix, reaching ~60% — the paper's 6x claim.
"""

from conftest import run_once

from repro.experiments.common import default_scale, format_table
from repro.experiments.utilization import run_utilization


def test_utilization(benchmark, emit):
    estimates = run_once(benchmark, lambda: run_utilization(default_scale()))
    rows = [
        [
            est.policy,
            f"{est.safe_fraction:.0%}",
            f"{est.utilization:.0%}",
        ]
        for est in estimates.values()
    ]
    emit(
        "utilization",
        format_table(
            ["Scheme", "Safe colocations", "Cluster utilization"],
            rows,
            title="Section 7.1: utilization with LC apps at 20% load",
        ),
    )

    assert estimates["LRU"].utilization == 0.10
    for policy in ("StaticLC", "Ubik"):
        est = estimates[policy]
        assert est.safe_fraction >= 0.95, policy
        assert est.utilization > 0.55, policy
        # The 6x headline.
        assert est.utilization / estimates["LRU"].utilization > 5.5, policy
