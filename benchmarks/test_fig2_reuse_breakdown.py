"""Figure 2: LLC access breakdowns by cross-request reuse distance.

Expected shape: substantial cross-request hit shares (inertia), lower
miss rates plus deeper reuse at 8 MB than 2 MB, and the paper's APKI
ordering.
"""

from conftest import run_once

from repro.experiments.common import format_table
from repro.experiments.fig2_reuse import run_fig2
from repro.workloads.latency_critical import LC_NAMES


def test_fig2_reuse_breakdown(benchmark, emit):
    breakdowns = run_once(benchmark, lambda: run_fig2(LC_NAMES))
    rows = []
    for (name, mb), r in breakdowns.items():
        rows.append(
            [
                name,
                f"{mb:.0f}MB",
                f"{r.apki:.1f}",
                f"{r.miss_fraction:.1%}",
                f"{sum(r.hit_fractions[1:]):.1%}",
                f"{r.cross_request_hit_fraction:.1%}",
            ]
        )
    emit(
        "fig2",
        format_table(
            ["Workload", "LLC", "APKI", "Misses", "Cross-req hits", "Share of hits"],
            rows,
            title="Figure 2: LLC access breakdown by requests-ago reuse",
        ),
    )
    for name in LC_NAMES:
        r2 = breakdowns[(name, 2.0)]
        r8 = breakdowns[(name, 8.0)]
        # Lower miss rates and deeper reuse at 8 MB (paper Fig 2b).
        assert r8.miss_fraction <= r2.miss_fraction + 0.02, name
        assert (
            r8.cross_request_hit_fraction >= r2.cross_request_hit_fraction - 0.05
        ), name
    # Cross-request reuse is substantial for the reuse-heavy apps.
    for name in ("shore", "specjbb", "masstree", "xapian"):
        assert breakdowns[(name, 2.0)].cross_request_hit_fraction > 0.35, name
    # APKI ordering: moses > specjbb > masstree > shore > xapian.
    apkis = [breakdowns[(n, 2.0)].apki for n in ("moses", "specjbb", "masstree", "shore", "xapian")]
    assert apkis == sorted(apkis, reverse=True)
