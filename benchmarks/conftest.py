"""Shared benchmark infrastructure.

Each benchmark regenerates one paper table or figure at a scaled-down
but methodologically identical configuration (see
``repro.experiments.common`` for the scale knobs).  Results are printed
(visible with ``pytest -s``) and written to ``benchmarks/results/`` so
the regenerated tables survive the run.

Heavy sweeps run on the :mod:`repro.runtime` session: records are
memoized in-process *and* persisted to the fingerprint-keyed result
store (``REPRO_CACHE_DIR``, default ``~/.cache/repro-ubik``), so the
benchmarks sharing data (Fig 9 / Fig 10 / Table 3) compute it once —
across processes, not just within one.  Set ``REPRO_JOBS`` to fan
sweep grids over worker processes.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def emit(results_dir):
    """Print a report and persist it under benchmarks/results/."""

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic and expensive; calibration
    rounds would multiply their cost for no statistical benefit.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
