"""Figure 11: per-app results with simple in-order cores.

Expected shape: in-order cores expose full miss latency, so best-effort
schemes degrade tails *more* than with OOO cores, and weighted speedups
grow across all schemes; StaticLC and Ubik stay safe.
"""

import numpy as np
from conftest import run_once

from repro.experiments.common import ExperimentScale, default_scale, format_table
from repro.experiments.fig10_per_app import run_fig10, run_fig11
from test_fig10_per_app import render


def inorder_scale():
    base = default_scale()
    # In-order services are longer; trim the combo grid to keep the
    # benchmark's runtime in line with the OOO one.
    return ExperimentScale(
        requests=base.requests,
        lc_names=base.lc_names,
        combos=("nft", "fts", "sss"),
        mixes_per_combo=base.mixes_per_combo,
    )


def test_fig11_inorder(benchmark, emit):
    scale = inorder_scale()
    entries = run_once(benchmark, lambda: run_fig11(scale))
    emit("fig11", render(entries, "Figure 11: per-app results, in-order cores"))

    # Safety holds even with the higher sensitivity.
    for e in entries:
        if e.policy in ("StaticLC", "Ubik"):
            assert e.worst_degradation < 1.25, (e.lc_name, e.load_label, e.policy)

    # Higher sensitivity -> larger speedups than the OOO runs for the
    # partitioned schemes (paper: 20% -> 28% for Ubik).
    ooo_entries = run_fig10(ExperimentScale(
        requests=scale.requests,
        lc_names=scale.lc_names,
        combos=scale.combos,
        mixes_per_combo=scale.mixes_per_combo,
    ))

    def avg_speedup(entries, policy):
        vals = [e.average_speedup for e in entries if e.policy == policy]
        return float(np.mean(vals))

    for policy in ("Ubik", "StaticLC", "UCP"):
        assert avg_speedup(entries, policy) > avg_speedup(ooo_entries, policy) - 0.01, policy

    # Best-effort schemes degrade worse in-order than OOO.
    worst_inorder = max(
        e.worst_degradation for e in entries if e.policy in ("LRU", "UCP", "OnOff")
    )
    worst_ooo = max(
        e.worst_degradation
        for e in ooo_entries
        if e.policy in ("LRU", "UCP", "OnOff")
    )
    assert worst_inorder > worst_ooo - 0.05
