"""Table 3: average weighted speedups for all schemes.

Expected ordering (paper, OOO cores): UCP ~ OnOff ~ Ubik at the top,
LRU trailing, StaticLC last; every scheme gains over private LLCs.
"""

from conftest import run_once

from repro.experiments.common import default_scale
from repro.experiments.table3_speedups import format_table3, run_table3


def test_table3_weighted_speedups(benchmark, emit):
    measured = run_once(benchmark, lambda: run_table3(default_scale()))
    emit("table3", format_table3(measured))

    for load_label in ("lo", "hi"):
        row = measured[load_label]
        # Everyone gains over private LLCs.
        assert all(v > 0 for v in row.values()), row
        # StaticLC is the weakest batch performer.
        assert row["StaticLC"] <= min(row["UCP"], row["OnOff"], row["Ubik"])
        # Ubik is competitive with the best-effort schemes.  Our sizing
        # is more conservative than the paper's (see EXPERIMENTS.md),
        # so the tolerated gap to UCP is wider than theirs (~1pp).
        assert row["Ubik"] >= row["UCP"] - 6.0
        assert row["Ubik"] >= row["OnOff"] - 3.0
        assert row["Ubik"] > row["StaticLC"]
