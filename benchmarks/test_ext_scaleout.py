"""Extension: Ubik on larger CMPs (paper Section 6's future work).

Expected shape: Ubik's guarantees are scale-free — tails at ~1.0x and a
throughput edge over StaticLC at 6, 12, and 24 cores.
"""

from conftest import run_once

from repro.experiments.common import format_table
from repro.experiments.scaleout import run_scaleout

CORES = (6, 12, 24)


def test_ext_scaleout(benchmark, emit):
    results = run_once(
        benchmark, lambda: run_scaleout(core_counts=CORES, requests=80)
    )
    rows = [
        [
            r.cores,
            r.policy,
            f"{r.tail_degradation:.3f}",
            f"{r.weighted_speedup:.3f}",
        ]
        for r in results
    ]
    emit(
        "ext_scaleout",
        format_table(
            ["Cores", "Policy", "Tail degradation", "Weighted speedup"],
            rows,
            title="Extension: scaling the CMP (half LC, half batch; 2 MB LLC/core)",
        ),
    )

    by_key = {(r.cores, r.policy): r for r in results}
    for cores in CORES:
        static = by_key[(cores, "StaticLC")]
        ubik = by_key[(cores, "Ubik-5%")]
        # Guarantees are scale-free.
        assert static.tail_degradation < 1.05, cores
        assert ubik.tail_degradation < 1.08, cores
        # Ubik keeps its throughput edge at every size.
        assert ubik.weighted_speedup > static.weighted_speedup, cores
