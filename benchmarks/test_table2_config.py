"""Table 2: configuration of the simulated six-core CMP."""

from conftest import run_once

from repro.experiments.common import format_table
from repro.sim.config import TABLE2_ROWS, westmere_config
from repro.units import mb_to_lines


def test_table2_config(benchmark, emit):
    def build():
        config = westmere_config()
        return config, list(TABLE2_ROWS)

    config, rows = run_once(benchmark, build)
    emit(
        "table2",
        format_table(
            ["Component", "Configuration"],
            rows,
            title="Table 2: simulated CMP (Westmere-EP-like)",
        ),
    )
    assert config.num_cores == 6
    assert config.llc_lines == mb_to_lines(12)
    assert config.mem_latency_cycles == 200
