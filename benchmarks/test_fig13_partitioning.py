"""Figure 13: Ubik's sensitivity to the partitioning scheme and array.

Expected shape: way-partitioning breaks Ubik's tails (worst on 16
ways); Vantage on SA16 leaks lines and hurts tails; Vantage on SA64
approaches the default zcache's safety.
"""

from conftest import run_once

from repro.experiments.common import ExperimentScale, default_scale, format_table
from repro.experiments.fig13_schemes import run_fig13


def scheme_scale():
    base = default_scale()
    return ExperimentScale(
        requests=base.requests,
        lc_names=base.lc_names,
        combos=("nft", "fts", "sss"),
        mixes_per_combo=base.mixes_per_combo,
    )


def test_fig13_partitioning_schemes(benchmark, emit):
    entries = run_once(benchmark, lambda: run_fig13(scheme_scale()))
    rows = [
        [
            e.scheme,
            e.load_label,
            f"{e.average_degradation:.3f}",
            f"{e.worst_degradation:.3f}",
            f"{e.average_speedup_pct:.1f}%",
        ]
        for e in entries
    ]
    emit(
        "fig13",
        format_table(
            ["Scheme", "Load", "Avg tail", "Worst tail", "Avg speedup"],
            rows,
            title="Figure 13: Ubik (5% slack) under different partitioning schemes",
        ),
    )

    def worst(scheme_name):
        return max(
            e.worst_degradation for e in entries if e.scheme == scheme_name
        )

    # The zcache is the safest array for Ubik.
    assert worst("Vantage Z4/52") <= worst("WayPart SA16") + 1e-9
    # Way-partitioning's unpredictable transients violate deadlines.
    assert worst("WayPart SA16") > worst("Vantage Z4/52") + 0.02
    # Vantage on SA64 approaches the zcache; SA16 is clearly worse.
    assert worst("Vantage SA64") <= worst("Vantage SA16") + 0.02
    assert worst("Vantage SA64") <= worst("Vantage Z4/52") + 0.12
