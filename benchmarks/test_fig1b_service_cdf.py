"""Figure 1b: CDFs of request service time (no queueing delay).

Expected shapes: near-constant for masstree/moses, long-tailed for
xapian, multi-modal for shore/specjbb.
"""

from conftest import run_once

from repro.experiments.common import format_table
from repro.experiments.fig1b_service_cdf import run_fig1b
from repro.workloads.latency_critical import LC_NAMES


def test_fig1b_service_cdfs(benchmark, emit):
    cdfs = run_once(benchmark, lambda: run_fig1b(LC_NAMES))
    rows = [
        [
            name,
            f"{c.mean_ms:.3f}",
            f"{c.p95_ms:.3f}",
            f"{c.p95_ms / c.mean_ms:.2f}x",
        ]
        for name, c in cdfs.items()
    ]
    emit(
        "fig1b",
        format_table(
            ["Workload", "Mean (ms)", "p95 (ms)", "p95/mean"],
            rows,
            title="Figure 1b: service-time distributions (2 MB baseline)",
        ),
    )
    ratio = {name: c.p95_ms / c.mean_ms for name, c in cdfs.items()}
    # Near-constant services.
    assert ratio["masstree"] < 1.3
    assert ratio["moses"] < 1.3
    # Long-tailed / multi-modal services.
    assert ratio["xapian"] > 2.5
    assert ratio["shore"] > 2.0
    assert ratio["specjbb"] > 2.0
    # Mean ordering matches the paper's x-axis ranges.
    means = {name: c.mean_ms for name, c in cdfs.items()}
    assert means["moses"] > means["xapian"] > means["masstree"]
