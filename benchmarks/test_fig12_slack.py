"""Figure 12: Ubik's slack sensitivity (0%, 1%, 5%, 10%).

Expected shape: weighted speedup grows monotonically with slack; tail
degradation stays within (roughly) 1 + slack at every setting.
"""

from conftest import run_once

from repro.experiments.common import ExperimentScale, default_scale, format_table
from repro.experiments.fig12_slack import run_fig12


def slack_scale():
    base = default_scale()
    return ExperimentScale(
        requests=base.requests,
        lc_names=base.lc_names,
        combos=("nft", "fts", "sss"),
        mixes_per_combo=base.mixes_per_combo,
    )


def test_fig12_slack_sensitivity(benchmark, emit):
    entries = run_once(benchmark, lambda: run_fig12(slack_scale()))
    rows = [
        [
            f"{e.slack:.0%}",
            e.load_label,
            f"{e.average_speedup_pct:.1f}%",
            f"{e.average_degradation:.3f}",
            f"{e.worst_degradation:.3f}",
        ]
        for e in entries
    ]
    emit(
        "fig12",
        format_table(
            ["Slack", "Load", "Avg speedup", "Avg tail", "Worst tail"],
            rows,
            title="Figure 12: Ubik slack sensitivity",
        ),
    )

    for load in ("lo", "hi"):
        per_load = [e for e in entries if e.load_label == load]
        per_load.sort(key=lambda e: e.slack)
        speedups = [e.average_speedup_pct for e in per_load]
        # Monotone-ish speedup growth with slack (small noise allowed).
        assert speedups[-1] > speedups[0]
        for a, b in zip(speedups, speedups[1:]):
            assert b >= a - 1.0
        # Degradation bounded by the slack (with measurement headroom).
        for e in per_load:
            assert e.average_degradation <= 1.0 + 2.5 * e.slack + 0.03, e
    # Strict Ubik: no degradation at all.
    strict = [e for e in entries if e.slack == 0.0]
    assert all(e.worst_degradation < 1.10 for e in strict)
