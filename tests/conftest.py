"""Test-suite isolation for the persistent result store.

The runtime's default ``Session`` persists results under
``~/.cache/repro-ubik`` so real experiment processes share work.  The
test suite must stay hermetic: point the store at a throwaway
directory for the whole session unless the environment explicitly
chose one (the CI workflow does, to exercise cross-process reuse).
"""

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_store(tmp_path_factory):
    if os.environ.get("REPRO_CACHE_DIR") or os.environ.get("REPRO_STORE"):
        yield
        return
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-store"))
    try:
        yield
    finally:
        os.environ.pop("REPRO_CACHE_DIR", None)
