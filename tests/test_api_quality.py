"""Meta-tests: public API completeness and documentation quality."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    "repro",
    "repro.units",
    "repro.cli",
    "repro.monitor",
    "repro.monitor.miss_curve",
    "repro.monitor.umon",
    "repro.monitor.mlp",
    "repro.monitor.counters",
    "repro.cache",
    "repro.cache.set_assoc",
    "repro.cache.zcache",
    "repro.cache.vantage",
    "repro.cache.way_partition",
    "repro.cache.sharing",
    "repro.cache.schemes",
    "repro.cache.reference",
    "repro.bench",
    "repro.cpu",
    "repro.workloads",
    "repro.workloads.service_time",
    "repro.workloads.arrivals",
    "repro.workloads.latency_critical",
    "repro.workloads.batch",
    "repro.workloads.mixes",
    "repro.workloads.trace",
    "repro.workloads.curve_shapes",
    "repro.server",
    "repro.server.request",
    "repro.server.queueing",
    "repro.server.latency",
    "repro.policies",
    "repro.policies.base",
    "repro.policies.lookahead",
    "repro.policies.lru",
    "repro.policies.ucp",
    "repro.policies.static_lc",
    "repro.policies.onoff",
    "repro.policies.fixed",
    "repro.core",
    "repro.core.transient",
    "repro.core.boost",
    "repro.core.repartition",
    "repro.core.deboost",
    "repro.core.slack",
    "repro.core.ubik",
    "repro.runtime",
    "repro.runtime.artifacts",
    "repro.runtime.registry",
    "repro.runtime.spec",
    "repro.runtime.store",
    "repro.runtime.executors",
    "repro.runtime.scheduler",
    "repro.runtime.sharding",
    "repro.runtime.work",
    "repro.runtime.session",
    "repro.sim",
    "repro.sim.config",
    "repro.sim.fill",
    "repro.sim.engine",
    "repro.sim.mix_runner",
    "repro.sim.results",
    "repro.sim.trace_sim",
    "repro.sim.bandwidth",
    "repro.sim.study_runner",
    "repro.experiments",
    "repro.analysis",
    "repro.analysis.stats",
    "repro.analysis.ascii_plot",
    "repro.analysis.queueing_theory",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_importable_and_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"
    assert len(module.__doc__.strip()) > 20, f"{module_name} docstring too thin"


@pytest.mark.parametrize("module_name", [m for m in MODULES if m != "repro"])
def test_public_items_documented(module_name):
    """Every name a module exports must carry a docstring."""
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    for name in exported:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{module_name}.{name} lacks a docstring"


RUNTIME_MODULES = [m for m in MODULES if m.startswith("repro.runtime")]


def _undocumented_members(cls):
    """Public methods/properties of ``cls`` lacking a real docstring."""
    missing = []
    for attr, member in vars(cls).items():
        if attr.startswith("_"):
            continue
        if isinstance(member, (classmethod, staticmethod)):
            target = member.__func__
        elif inspect.isfunction(member):
            target = member
        elif isinstance(member, property):
            target = member.fget
        else:
            continue  # plain class attribute / ClassVar default
        doc = getattr(target, "__doc__", None)
        if not doc or len(doc.strip()) < 10:
            missing.append(attr)
    return missing


@pytest.mark.parametrize("module_name", RUNTIME_MODULES)
def test_runtime_docstring_coverage(module_name):
    """The runtime package holds itself to a stricter bar: every
    exported name *and every public method, classmethod, staticmethod,
    and property on every exported class* must carry a substantive
    docstring.  (The base check above only covers the exported names
    themselves.)"""
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    assert exported, f"{module_name} must declare __all__"
    problems = []
    for name in exported:
        obj = getattr(module, name)
        if inspect.isclass(obj):
            if not obj.__doc__ or len(obj.__doc__.strip()) < 10:
                problems.append(name)
            problems.extend(
                f"{name}.{attr}" for attr in _undocumented_members(obj)
            )
        elif inspect.isfunction(obj):
            if not obj.__doc__ or len(obj.__doc__.strip()) < 10:
                problems.append(name)
    assert not problems, (
        f"{module_name} exports lacking docstrings: {problems}"
    )


def test_top_level_api_exports():
    """The headline API is importable from the package root."""
    for name in (
        "UbikPolicy",
        "UCPPolicy",
        "StaticLCPolicy",
        "OnOffPolicy",
        "LRUPolicy",
        "MixRunner",
        "MixResult",
        "CMPConfig",
        "make_mix_specs",
        "make_lc_workload",
        "LC_NAMES",
    ):
        assert hasattr(repro, name), name
        assert name in repro.__all__


def test_version_is_set():
    assert repro.__version__


def test_all_subpackages_reachable():
    """No orphan modules: everything under repro imports cleanly."""
    failures = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        try:
            importlib.import_module(info.name)
        except Exception as exc:  # pragma: no cover - diagnostic
            failures.append((info.name, exc))
    assert not failures, failures
