"""Tests for repro.workloads.service_time."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.service_time import (
    DeterministicWork,
    LognormalWork,
    MixtureWork,
    TruncatedNormalWork,
)


class TestDeterministic:
    def test_sampling(self):
        rng = np.random.default_rng(0)
        dist = DeterministicWork(100.0)
        assert dist.sample(rng) == 100.0
        assert dist.mean() == 100.0

    def test_cdf_step(self):
        dist = DeterministicWork(100.0)
        assert dist.cdf(99.9) == 0.0
        assert dist.cdf(100.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DeterministicWork(0.0)

    def test_scaled(self):
        assert DeterministicWork(100.0).scaled(2.0).work == 200.0


class TestTruncatedNormal:
    def test_mean_matches(self):
        rng = np.random.default_rng(1)
        dist = TruncatedNormalWork(1000.0, cv=0.1)
        samples = [dist.sample(rng) for _ in range(5000)]
        assert np.mean(samples) == pytest.approx(1000.0, rel=0.02)

    def test_floor_enforced(self):
        rng = np.random.default_rng(2)
        dist = TruncatedNormalWork(1000.0, cv=2.0, floor_frac=0.1)
        samples = [dist.sample(rng) for _ in range(2000)]
        assert min(samples) >= 100.0

    def test_cdf_midpoint(self):
        dist = TruncatedNormalWork(1000.0, cv=0.1)
        assert dist.cdf(1000.0) == pytest.approx(0.5)

    def test_zero_cv_degenerate(self):
        dist = TruncatedNormalWork(1000.0, cv=0.0)
        assert dist.cdf(999.0) == 0.0
        assert dist.cdf(1000.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TruncatedNormalWork(0.0, 0.1)
        with pytest.raises(ValueError):
            TruncatedNormalWork(1.0, -0.1)
        with pytest.raises(ValueError):
            TruncatedNormalWork(1.0, 0.1, floor_frac=1.5)


class TestLognormal:
    def test_mean_matches(self):
        rng = np.random.default_rng(3)
        dist = LognormalWork(1000.0, sigma=1.0)
        samples = [dist.sample(rng) for _ in range(50_000)]
        assert np.mean(samples) == pytest.approx(1000.0, rel=0.05)

    def test_long_tail(self):
        """p95/mean should be well above a normal distribution's."""
        dist = LognormalWork(1000.0, sigma=1.2)
        assert dist.percentile(0.95) / dist.mean() > 2.5

    def test_cdf_monotone(self):
        dist = LognormalWork(1000.0, sigma=0.8)
        values = [dist.cdf(x) for x in (0, 100, 500, 1000, 5000)]
        assert values == sorted(values)
        assert dist.cdf(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LognormalWork(0.0, 1.0)
        with pytest.raises(ValueError):
            LognormalWork(1.0, -1.0)


class TestMixture:
    def make(self):
        return MixtureWork.of(
            [TruncatedNormalWork(100.0, 0.1), TruncatedNormalWork(1000.0, 0.1)],
            [0.8, 0.2],
        )

    def test_mean_is_weighted(self):
        assert self.make().mean() == pytest.approx(0.8 * 100 + 0.2 * 1000)

    def test_bimodal_cdf(self):
        dist = self.make()
        assert dist.cdf(500.0) == pytest.approx(0.8, abs=0.01)

    def test_sampling_respects_weights(self):
        rng = np.random.default_rng(4)
        dist = self.make()
        samples = np.array([dist.sample(rng) for _ in range(2000)])
        heavy_frac = np.mean(samples > 500)
        assert heavy_frac == pytest.approx(0.2, abs=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            MixtureWork.of([DeterministicWork(1.0)], [0.5, 0.5])
        with pytest.raises(ValueError):
            MixtureWork.of([], [])
        with pytest.raises(ValueError):
            MixtureWork.of([DeterministicWork(1.0)], [-1.0])

    def test_scaled_scales_components(self):
        scaled = self.make().scaled(2.0)
        assert scaled.mean() == pytest.approx(2 * self.make().mean())


class TestPercentile:
    def test_inverts_cdf(self):
        dist = LognormalWork(1000.0, sigma=0.7)
        for q in (0.1, 0.5, 0.9, 0.99):
            x = dist.percentile(q)
            assert dist.cdf(x) == pytest.approx(q, abs=1e-6)

    def test_validation(self):
        dist = DeterministicWork(1.0)
        with pytest.raises(ValueError):
            dist.percentile(0.0)
        with pytest.raises(ValueError):
            dist.percentile(1.0)


@settings(max_examples=40, deadline=None)
@given(
    mean=st.floats(min_value=1.0, max_value=1e7),
    sigma=st.floats(min_value=0.01, max_value=2.0),  # >0: continuous CDF
    q=st.floats(min_value=0.01, max_value=0.99),
)
def test_property_lognormal_percentile_cdf_roundtrip(mean, sigma, q):
    dist = LognormalWork(mean, sigma)
    x = dist.percentile(q)
    assert dist.cdf(x) == pytest.approx(q, abs=1e-4)


@settings(max_examples=40, deadline=None)
@given(scale=st.floats(min_value=0.01, max_value=100.0))
def test_property_scaling_scales_mean(scale):
    dist = MixtureWork.of(
        [LognormalWork(50.0, 0.5), TruncatedNormalWork(500.0, 0.2)], [0.5, 0.5]
    )
    assert dist.scaled(scale).mean() == pytest.approx(dist.mean() * scale, rel=1e-9)
