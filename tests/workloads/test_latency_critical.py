"""Tests for repro.workloads.latency_critical (paper Table 1 / Fig 1-2)."""

import numpy as np
import pytest

from repro.cpu import InOrderCore, OutOfOrderCore
from repro.units import cycles_to_ms, mb_to_lines
from repro.workloads.latency_critical import (
    LC_NAMES,
    TABLE1_ROWS,
    all_lc_workloads,
    make_lc_workload,
)


class TestRegistry:
    def test_five_workloads(self):
        assert set(LC_NAMES) == {"xapian", "masstree", "moses", "shore", "specjbb"}

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_lc_workload("memcached")

    def test_table1_rows_match_paper(self):
        by_name = {name: (cfg, reqs) for name, cfg, reqs in TABLE1_ROWS}
        assert by_name["xapian"][1] == 6000
        assert by_name["masstree"][1] == 9000
        assert by_name["moses"][1] == 900
        assert by_name["shore"][1] == 7500
        assert by_name["specjbb"][1] == 37500
        assert "Wikipedia" in by_name["xapian"][0]
        assert "TPC-C" in by_name["shore"][0]


class TestCalibration:
    @pytest.mark.parametrize(
        "name,mean_ms",
        [
            ("xapian", 0.75),
            ("masstree", 0.105),
            ("moses", 4.2),
            ("shore", 0.90),
            ("specjbb", 0.19),
        ],
    )
    def test_mean_service_matches_fig1b(self, name, mean_ms):
        workload = make_lc_workload(name)
        assert cycles_to_ms(workload.mean_service_cycles()) == pytest.approx(
            mean_ms, rel=0.01
        )

    def test_apki_matches_fig2(self):
        apkis = {n: make_lc_workload(n).profile.apki for n in LC_NAMES}
        assert apkis == {
            "xapian": 0.1,
            "masstree": 8.8,
            "moses": 25.8,
            "shore": 5.7,
            "specjbb": 16.3,
        }

    def test_moses_has_no_reuse_at_2mb_but_reuse_at_larger(self):
        """Section 7.1: moses barely hits at 2 MB; reuse appears ~4 MB."""
        moses = make_lc_workload("moses")
        assert moses.miss_curve(mb_to_lines(2)) > 0.85
        assert moses.miss_curve(mb_to_lines(6)) < 0.6

    def test_miss_rates_lower_at_8mb(self):
        """Figure 2b: all workloads miss less at 8 MB than at 2 MB."""
        for name in LC_NAMES:
            curve = make_lc_workload(name).miss_curve
            assert curve(mb_to_lines(8)) < curve(mb_to_lines(2))

    def test_reuse_fractions_above_half(self):
        """Figure 2a: most hits come from earlier requests."""
        for name in LC_NAMES:
            assert make_lc_workload(name).reuse_fraction >= 0.5


class TestDerived:
    def test_arrival_rate_for_load(self):
        workload = make_lc_workload("masstree")
        rate = workload.arrival_rate_for_load(0.2)
        assert rate * workload.mean_service_cycles() == pytest.approx(0.2)

    def test_arrival_rate_validation(self):
        with pytest.raises(ValueError):
            make_lc_workload("masstree").arrival_rate_for_load(0.0)

    def test_inorder_core_changes_service_time(self):
        workload = make_lc_workload("specjbb")
        ooo = workload.mean_service_cycles(OutOfOrderCore(200.0))
        inorder = workload.mean_service_cycles(InOrderCore(200.0))
        assert inorder > ooo  # in-order exposes full miss latency

    def test_all_lc_workloads(self):
        all_wl = all_lc_workloads()
        assert set(all_wl) == set(LC_NAMES)
        assert all(w.target_lines == mb_to_lines(2) for w in all_wl.values())

    def test_custom_target_size(self):
        workload = make_lc_workload("shore", target_mb=4.0)
        assert workload.target_lines == mb_to_lines(4)

    def test_work_distribution_positive(self):
        rng = np.random.default_rng(0)
        for name in LC_NAMES:
            dist = make_lc_workload(name).work
            samples = [dist.sample(rng) for _ in range(200)]
            assert min(samples) > 0

    def test_service_shapes(self):
        """Figure 1b shapes: xapian long-tailed, masstree near-constant."""
        xapian = make_lc_workload("xapian").work
        masstree = make_lc_workload("masstree").work
        assert xapian.percentile(0.95) / xapian.mean() > 2.5
        assert masstree.percentile(0.95) / masstree.mean() < 1.3
