"""Property suite: batched ``sample_many`` == the scalar sampling loop.

The vectorized stream-synthesis contract is *bit identity*, not
statistical equivalence: for every distribution, seed, and batch size,
``sample_many(rng, n)`` must return exactly the values ``n`` scalar
``sample`` calls would, **and** leave the generator at exactly the same
stream position — anything drawn afterwards (arrival gaps, a later
instance's stream) must be unchanged.  The scalar side of every
comparison goes through the kept oracle
:func:`repro.workloads.reference.sample_stream`.
"""

import numpy as np
import pytest

from repro.workloads.reference import sample_stream
from repro.workloads.service_time import (
    DeterministicWork,
    LognormalWork,
    MixtureWork,
    TruncatedNormalWork,
    WorkDistribution,
)

#: Every distribution shape the repo uses, plus the edge cases the
#: shapes can degenerate to (zero spread, deterministic components,
#: nested mixtures).
DISTRIBUTIONS = [
    pytest.param(DeterministicWork(1234.5), id="deterministic"),
    pytest.param(TruncatedNormalWork(mean_work=1e6, cv=0.12), id="truncnormal"),
    pytest.param(TruncatedNormalWork(mean_work=50.0, cv=0.0), id="truncnormal-cv0"),
    pytest.param(
        TruncatedNormalWork(mean_work=10.0, cv=3.0, floor_frac=0.5),
        id="truncnormal-floor-heavy",
    ),
    pytest.param(LognormalWork(mean_work=7.5e5, sigma=1.2), id="lognormal"),
    pytest.param(LognormalWork(mean_work=100.0, sigma=0.0), id="lognormal-sigma0"),
    pytest.param(
        MixtureWork.of(
            [
                TruncatedNormalWork(mean_work=0.45e6, cv=0.25),
                TruncatedNormalWork(mean_work=2.40e6, cv=0.30),
            ],
            [0.72, 0.28],
        ),
        id="mixture-shore",
    ),
    pytest.param(
        MixtureWork.of(
            [
                DeterministicWork(3.0),
                LognormalWork(mean_work=9.0, sigma=0.8),
                TruncatedNormalWork(mean_work=2.0, cv=0.2),
            ],
            [1.0, 2.0, 3.0],  # deliberately unnormalized weights
        ),
        id="mixture-mixed-components",
    ),
    pytest.param(
        MixtureWork.of(
            [
                MixtureWork.of(
                    [DeterministicWork(1.0), LognormalWork(2.0, 0.5)],
                    [0.5, 0.5],
                ),
                TruncatedNormalWork(mean_work=4.0, cv=0.1),
            ],
            [0.4, 0.6],
        ),
        id="mixture-nested",
    ),
]

SEEDS = (0, 1, 7, 123, 99991)
COUNTS = (0, 1, 5, 64, 257)


@pytest.mark.parametrize("count", COUNTS)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("work", DISTRIBUTIONS)
def test_sample_many_matches_scalar_stream(work, seed, count):
    """Same values, same draw count, same final generator state."""
    batched_rng = np.random.default_rng(seed)
    scalar_rng = np.random.default_rng(seed)
    batched = work.sample_many(batched_rng, count)
    scalar = sample_stream(work, scalar_rng, count)
    assert batched.dtype == scalar.dtype == np.dtype(float)
    assert np.array_equal(batched, scalar)
    # Stream-position identity: the next draw from both generators must
    # coincide, else arrivals generated after the works would drift.
    assert batched_rng.random() == scalar_rng.random()


@pytest.mark.parametrize("work", DISTRIBUTIONS)
def test_sample_many_rejects_negative_count(work):
    with pytest.raises(ValueError):
        work.sample_many(np.random.default_rng(0), -1)


def test_base_class_fallback_is_the_scalar_loop():
    """A distribution that does not override ``sample_many`` still
    honours the bit-identity contract via the base-class loop."""

    class CountingWork(WorkDistribution):
        """Consumes one uniform per draw, no override."""

        def sample(self, rng):
            return 1.0 + rng.random()

        def mean(self):
            return 1.5

        def cdf(self, work):
            return min(max(work - 1.0, 0.0), 1.0)

        def scaled(self, factor):  # pragma: no cover - unused
            raise NotImplementedError

    work = CountingWork()
    a, b = np.random.default_rng(5), np.random.default_rng(5)
    assert np.array_equal(work.sample_many(a, 17), sample_stream(work, b, 17))
    assert a.random() == b.random()


def test_mixture_choice_replication_spans_all_components():
    """The mixture's CDF walk must actually exercise every component
    (guards against a bisect off-by-one silently pinning one mode)."""
    work = MixtureWork.of(
        [DeterministicWork(1.0), DeterministicWork(2.0), DeterministicWork(3.0)],
        [0.2, 0.3, 0.5],
    )
    draws = work.sample_many(np.random.default_rng(11), 500)
    assert set(np.unique(draws)) == {1.0, 2.0, 3.0}


def test_empty_batch_leaves_generator_untouched():
    rng = np.random.default_rng(3)
    before = rng.bit_generator.state["state"]["state"]
    out = LognormalWork(10.0, 0.5).sample_many(rng, 0)
    assert out.shape == (0,)
    assert rng.bit_generator.state["state"]["state"] == before
