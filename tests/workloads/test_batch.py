"""Tests for repro.workloads.batch."""

import numpy as np
import pytest

from repro.units import mb_to_lines
from repro.workloads.batch import (
    BATCH_CLASSES,
    BatchWorkload,
    make_batch_workload,
    random_batch_workload,
)


class TestClasses:
    def test_four_classes(self):
        assert BATCH_CLASSES == ("n", "f", "t", "s")

    def test_unknown_class_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_batch_workload("x", rng)

    def test_class_name_lookup(self):
        app = make_batch_workload("s", seed=1)
        assert app.class_name == "streaming"


class TestClassBehaviours:
    def test_streaming_flat_high_miss(self):
        for seed in range(5):
            app = make_batch_workload("s", seed=seed)
            curve = app.miss_curve
            assert curve(0) > 0.8
            assert curve(mb_to_lines(12)) == pytest.approx(float(curve(0)))
            assert app.profile.apki >= 15.0

    def test_insensitive_low_utility(self):
        for seed in range(5):
            app = make_batch_workload("n", seed=seed)
            # Gains beyond 1 MB are negligible: the working set fits
            # in the private levels.
            gain = app.miss_curve(mb_to_lines(1)) - app.miss_curve(mb_to_lines(12))
            assert gain < 0.05
            assert app.profile.apki <= 2.0

    def test_friendly_declines_smoothly(self):
        for seed in range(5):
            curve = make_batch_workload("f", seed=seed).miss_curve
            quarter = curve(mb_to_lines(3))
            full = curve(mb_to_lines(12))
            assert curve(0) > quarter > full

    def test_fitting_has_knee(self):
        for seed in range(5):
            curve = make_batch_workload("t", seed=seed).miss_curve
            # Big drop concentrated somewhere within the LLC range.
            drops = -np.diff(curve(np.linspace(0, mb_to_lines(12), 49)))
            assert drops.max() > 0.05

    def test_profiles_valid(self):
        for cls in BATCH_CLASSES:
            for seed in range(3):
                app = make_batch_workload(cls, seed=seed)
                assert app.profile.apki > 0
                assert app.profile.base_cpi > 0
                assert app.profile.mlp >= 1.0


class TestDeterminism:
    def test_same_seed_same_app(self):
        a = make_batch_workload("f", seed=42)
        b = make_batch_workload("f", seed=42)
        assert a.name == b.name
        assert a.profile == b.profile
        assert a.miss_curve == b.miss_curve

    def test_different_seeds_differ(self):
        a = make_batch_workload("f", seed=1)
        b = make_batch_workload("f", seed=2)
        assert a.profile != b.profile or a.miss_curve != b.miss_curve

    def test_instance_suffix(self):
        app = make_batch_workload("n", seed=3, instance=2)
        assert app.name.endswith(".2")

    def test_invalid_class_in_constructor(self):
        app = make_batch_workload("n", seed=0)
        with pytest.raises(ValueError):
            BatchWorkload("x", "z", app.profile, app.miss_curve)
