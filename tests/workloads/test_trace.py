"""Tests for repro.workloads.trace."""

import numpy as np
import pytest

from repro.units import mb_to_lines
from repro.workloads.latency_critical import make_lc_workload
from repro.workloads.trace import (
    TraceConfig,
    ZipfSampler,
    generate_request_trace,
    lc_trace_config,
)


class TestZipfSampler:
    def test_ranks_in_range(self):
        sampler = ZipfSampler(100, alpha=0.8)
        rng = np.random.default_rng(0)
        ranks = sampler.sample(1000, rng)
        assert ranks.min() >= 0
        assert ranks.max() < 100

    def test_popularity_skew(self):
        sampler = ZipfSampler(1000, alpha=1.0)
        rng = np.random.default_rng(1)
        ranks = sampler.sample(20_000, rng)
        top_frac = np.mean(ranks < 100)
        assert top_frac > 0.4  # top 10% of ranks get >40% of draws

    def test_alpha_zero_uniform(self):
        sampler = ZipfSampler(10, alpha=0.0)
        rng = np.random.default_rng(2)
        ranks = sampler.sample(50_000, rng)
        counts = np.bincount(ranks, minlength=10)
        assert counts.min() > 0.8 * counts.max()

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(10, alpha=-1.0)


class TestTraceConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(0, 1, 10, 0.5)
        with pytest.raises(ValueError):
            TraceConfig(10, -1, 10, 0.5)
        with pytest.raises(ValueError):
            TraceConfig(10, 1, 10, 1.5)

    def test_lc_config_scales(self):
        workload = make_lc_workload("shore")
        full = lc_trace_config(workload, mb_to_lines(2), scale=1.0)
        scaled = lc_trace_config(workload, mb_to_lines(2), scale=0.25)
        assert scaled.hot_lines < full.hot_lines
        assert scaled.accesses_per_request < full.accesses_per_request

    def test_lc_config_shared_fraction_from_reuse(self):
        workload = make_lc_workload("specjbb")
        config = lc_trace_config(workload, mb_to_lines(2))
        assert config.shared_fraction == workload.reuse_fraction


class TestGeneration:
    def test_request_count_and_shapes(self):
        config = TraceConfig(100, 5, 50, 0.6)
        rng = np.random.default_rng(3)
        requests = generate_request_trace(config, 10, rng)
        assert len(requests) == 10
        assert all(len(r) == 50 for r in requests)

    def test_private_addresses_never_repeat_across_requests(self):
        config = TraceConfig(100, 5, 50, 0.6)
        rng = np.random.default_rng(4)
        requests = generate_request_trace(config, 20, rng)
        private_sets = [set(r[r >= 100].tolist()) for r in requests]
        for i in range(len(private_sets)):
            for j in range(i + 1, len(private_sets)):
                assert not (private_sets[i] & private_sets[j])

    def test_shared_addresses_in_hot_range(self):
        config = TraceConfig(100, 5, 50, 1.0)
        rng = np.random.default_rng(5)
        requests = generate_request_trace(config, 5, rng)
        for req in requests:
            assert req.max() < 100

    def test_validation(self):
        config = TraceConfig(100, 5, 50, 0.6)
        rng = np.random.default_rng(6)
        with pytest.raises(ValueError):
            generate_request_trace(config, 0, rng)
