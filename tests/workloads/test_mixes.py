"""Tests for repro.workloads.mixes (the paper's Section 6 methodology)."""

import pytest

from repro.workloads.mixes import (
    HIGH_LOAD,
    LOW_LOAD,
    batch_type_combos,
    make_all_batch_mixes,
    make_batch_mix,
    make_mix_specs,
)


class TestCombos:
    def test_twenty_combinations(self):
        combos = batch_type_combos()
        assert len(combos) == 20
        assert len(set(combos)) == 20
        assert ("n", "n", "n") in combos
        assert ("s", "s", "s") in combos

    def test_combos_sorted_multisets(self):
        for combo in batch_type_combos():
            assert tuple(sorted(combo, key="nfts".index)) == combo


class TestBatchMixes:
    def test_mix_has_three_apps_of_requested_types(self):
        mix = make_batch_mix(("n", "f", "s"), seed=5)
        assert [a.batch_class for a in mix] == ["n", "f", "s"]

    def test_mix_deterministic(self):
        a = make_batch_mix(("n", "f", "s"), seed=5)
        b = make_batch_mix(("n", "f", "s"), seed=5)
        assert [x.name for x in a] == [y.name for y in b]

    def test_wrong_combo_size_rejected(self):
        with pytest.raises(ValueError):
            make_batch_mix(("n", "f"), seed=0)

    def test_forty_mixes_at_paper_scale(self):
        mixes = make_all_batch_mixes(mixes_per_combo=2)
        assert len(mixes) == 40
        labels = [label for label, __ in mixes]
        assert len(set(labels)) == 40

    def test_mixes_per_combo_validation(self):
        with pytest.raises(ValueError):
            make_all_batch_mixes(mixes_per_combo=0)


class TestMixSpecs:
    def test_paper_scale_400(self):
        specs = make_mix_specs(mixes_per_combo=2)
        assert len(specs) == 5 * 2 * 40  # = 400

    def test_scaled_grid(self):
        specs = make_mix_specs(
            lc_names=["shore"], loads=[LOW_LOAD], mixes_per_combo=1
        )
        assert len(specs) == 20
        assert all(s.lc_workload.name == "shore" for s in specs)

    def test_load_labels(self):
        specs = make_mix_specs(lc_names=["shore"], mixes_per_combo=1)
        labels = {s.load_label for s in specs}
        assert labels == {"lo", "hi"}

    def test_unique_mix_ids(self):
        specs = make_mix_specs(mixes_per_combo=1)
        ids = [s.mix_id for s in specs]
        assert len(set(ids)) == len(ids)

    def test_unknown_lc_rejected(self):
        with pytest.raises(ValueError):
            make_mix_specs(lc_names=["redis"])

    def test_deterministic_in_seed(self):
        a = make_mix_specs(lc_names=["moses"], mixes_per_combo=1, seed=9)
        b = make_mix_specs(lc_names=["moses"], mixes_per_combo=1, seed=9)
        assert [s.mix_id for s in a] == [s.mix_id for s in b]
        assert [x.name for s in a for x in s.batch_apps] == [
            x.name for s in b for x in s.batch_apps
        ]

    def test_spec_validation(self):
        specs = make_mix_specs(lc_names=["shore"], mixes_per_combo=1)
        spec = specs[0]
        assert len(spec.batch_apps) == 3
        assert 0 < spec.load < 1
