"""Tests for repro.workloads.curve_shapes."""

import numpy as np
import pytest

from repro.workloads.curve_shapes import (
    exponential_curve,
    flat_curve,
    knee_curve,
    plateau_then_decline_curve,
)


class TestExponential:
    def test_endpoints_and_half_life(self):
        curve = exponential_curve(0.8, 0.2, half_size_lines=100, max_lines=1000)
        assert curve(0) == pytest.approx(0.8)
        # One half-size: halfway between m0 and the floor.
        assert curve(100) == pytest.approx(0.2 + 0.6 / 2, abs=0.02)
        assert curve(1000) == pytest.approx(0.2, abs=0.01)

    def test_monotone(self):
        curve = exponential_curve(0.9, 0.1, 50, 1000)
        values = curve(np.linspace(0, 1000, 100))
        assert np.all(np.diff(values) <= 1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            exponential_curve(0.2, 0.8, 100, 1000)  # floor above m0
        with pytest.raises(ValueError):
            exponential_curve(0.8, 0.2, 0, 1000)
        with pytest.raises(ValueError):
            exponential_curve(0.8, 0.2, 100, 0)


class TestKnee:
    def test_knee_location(self):
        curve = knee_curve(0.9, 0.1, knee_lines=500, max_lines=1000)
        # Well before the knee: still high; well after: low.
        assert curve(100) > 0.8
        assert curve(900) < 0.2
        # At the knee: mid-transition.
        assert 0.3 < curve(500) < 0.7

    def test_exact_start(self):
        curve = knee_curve(0.9, 0.1, 500, 1000)
        assert curve(0) == pytest.approx(0.9, abs=1e-6)

    def test_sharpness(self):
        soft = knee_curve(0.9, 0.1, 500, 1000, sharpness=4.0)
        sharp = knee_curve(0.9, 0.1, 500, 1000, sharpness=16.0)
        # Sharper knee: closer to m0 just before the knee.
        assert sharp(400) > soft(400)

    def test_validation(self):
        with pytest.raises(ValueError):
            knee_curve(0.1, 0.9, 500, 1000)
        with pytest.raises(ValueError):
            knee_curve(0.9, 0.1, 0, 1000)


class TestFlatAndPlateau:
    def test_flat(self):
        curve = flat_curve(0.95, 1000)
        assert curve(0) == curve(500) == curve(1000) == pytest.approx(0.95)

    def test_plateau_then_decline(self):
        curve = plateau_then_decline_curve(
            miss_plateau=0.9,
            miss_floor=0.3,
            plateau_lines=400,
            half_size_lines=100,
            max_lines=1000,
        )
        # Flat on the plateau (the moses shape).
        assert curve(100) == pytest.approx(0.9, abs=0.01)
        assert curve(399) == pytest.approx(0.9, abs=0.01)
        # Declines beyond it: one half-size past the plateau.
        assert curve(500) == pytest.approx(0.3 + 0.6 / 2, abs=0.02)

    def test_plateau_validation(self):
        with pytest.raises(ValueError):
            plateau_then_decline_curve(0.3, 0.9, 400, 100, 1000)
        with pytest.raises(ValueError):
            plateau_then_decline_curve(0.9, 0.3, -1, 100, 1000)
        with pytest.raises(ValueError):
            plateau_then_decline_curve(0.9, 0.3, 400, 0, 1000)
