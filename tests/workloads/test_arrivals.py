"""Tests for repro.workloads.arrivals."""

import numpy as np
import pytest

from repro.workloads.arrivals import (
    InterruptCoalescer,
    PoissonArrivals,
    generate_arrivals,
)


class TestPoisson:
    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)
        with pytest.raises(ValueError):
            PoissonArrivals.for_load(1.5, 100.0)
        with pytest.raises(ValueError):
            PoissonArrivals.for_load(0.5, 0.0)

    def test_for_load_rate(self):
        proc = PoissonArrivals.for_load(0.2, 1000.0)
        assert proc.rate == pytest.approx(2e-4)
        assert proc.mean_interarrival == pytest.approx(5000.0)

    def test_sample_sorted_and_exponential(self):
        rng = np.random.default_rng(0)
        proc = PoissonArrivals(0.001)
        times = proc.sample_times(5000, rng)
        assert np.all(np.diff(times) >= 0)
        gaps = np.diff(np.concatenate([[0.0], times]))
        assert np.mean(gaps) == pytest.approx(1000.0, rel=0.05)
        # Exponential: std ~ mean.
        assert np.std(gaps) == pytest.approx(1000.0, rel=0.1)

    def test_sample_count_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            PoissonArrivals(1.0).sample_times(-1, rng)


class TestCoalescer:
    def test_zero_timeout_passthrough(self):
        times = np.array([1.0, 2.0, 3.0])
        out = InterruptCoalescer(0.0).apply(times)
        assert out == pytest.approx(times)

    def test_batches_within_timeout(self):
        # Arrivals at 0, 10, 40 with timeout 50: all visible at 50.
        out = InterruptCoalescer(50.0).apply(np.array([0.0, 10.0, 40.0]))
        assert out == pytest.approx([50.0, 50.0, 50.0])

    def test_new_batch_after_gap(self):
        out = InterruptCoalescer(50.0).apply(np.array([0.0, 200.0]))
        assert out == pytest.approx([50.0, 250.0])

    def test_visible_times_never_early(self):
        rng = np.random.default_rng(1)
        times = np.sort(rng.uniform(0, 1e5, size=200))
        out = InterruptCoalescer(160.0).apply(times)
        assert np.all(out >= times)
        assert np.all(out - times <= 160.0 + 1e-9)

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            InterruptCoalescer(10.0).apply(np.array([2.0, 1.0]))

    def test_rejects_negative_timeout(self):
        with pytest.raises(ValueError):
            InterruptCoalescer(-1.0)

    def test_empty_input(self):
        out = InterruptCoalescer(10.0).apply(np.array([]))
        assert out.size == 0


class TestGenerateArrivals:
    def test_achieves_requested_load(self):
        rng = np.random.default_rng(2)
        arrivals = generate_arrivals(5000, 0.5, 1000.0, rng)
        # lambda = 0.5/1000: mean gap 2000 cycles.
        mean_gap = arrivals[-1] / arrivals.size
        assert mean_gap == pytest.approx(2000.0, rel=0.05)

    def test_coalescing_applied(self):
        rng = np.random.default_rng(3)
        raw_rng = np.random.default_rng(3)
        arrivals = generate_arrivals(100, 0.5, 1000.0, rng, 500.0)
        raw = generate_arrivals(100, 0.5, 1000.0, raw_rng, 0.0)
        assert np.all(arrivals >= raw - 1e-9)
