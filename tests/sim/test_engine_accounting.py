"""Engine accounting invariants: FIFO order, views, tracing, batch space."""

import numpy as np
import pytest

from repro.core.ubik import UbikPolicy
from repro.policies.base import Policy, Decision
from repro.policies.static_lc import StaticLCPolicy
from repro.sim.config import CMPConfig
from repro.sim.engine import LCInstanceSpec, MixEngine
from repro.workloads.batch import make_batch_workload
from repro.workloads.latency_critical import make_lc_workload


def make_spec(name="shore", load=0.4, requests=80, seed=0):
    workload = make_lc_workload(name)
    rng = np.random.default_rng(seed)
    works = np.asarray([workload.work.sample(rng) for _ in range(requests)])
    mean_service = workload.mean_service_cycles()
    arrivals = np.cumsum(rng.exponential(mean_service / load, size=requests))
    return LCInstanceSpec(
        workload=workload,
        arrivals=arrivals,
        works=works,
        deadline_cycles=6 * mean_service,
        target_tail_cycles=5 * mean_service,
        load=load,
    )


class _SpyPolicy(StaticLCPolicy):
    """StaticLC that records every context it sees."""

    def __init__(self):
        super().__init__()
        self.contexts = []

    def on_interval(self, ctx):
        self.contexts.append(ctx)
        return super().on_interval(ctx)


def run_engine(policy, spec=None, **kwargs):
    engine = MixEngine(
        lc_specs=[spec or make_spec()],
        batch_workloads=[
            make_batch_workload("f", seed=1),
            make_batch_workload("s", seed=2),
        ],
        policy=policy,
        config=CMPConfig(),
        seed=5,
        **kwargs,
    )
    return engine, engine.run()


class TestFIFOOrdering:
    def test_completions_in_arrival_order(self):
        """Single-worker FIFO: request k completes before request k+1."""
        spec = make_spec(load=0.7)  # heavy queueing
        engine, result = run_engine(StaticLCPolicy(), spec=spec)
        latencies = result.lc_instances[0].latencies
        warmup = int(len(spec.arrivals) * 0.05)
        completions = [
            float(spec.arrivals[warmup + i]) + lat
            for i, lat in enumerate(latencies)
        ]
        assert all(b >= a - 1e-6 for a, b in zip(completions, completions[1:]))


class TestViews:
    def test_interval_views_measured_fields(self):
        policy = _SpyPolicy()
        engine, __ = run_engine(policy)
        assert policy.contexts, "expected at least one reconfiguration"
        ctx = policy.contexts[-1]
        lc_view = ctx.lc_apps[0]
        assert 0.0 <= lc_view.idle_fraction <= 1.0
        assert lc_view.access_rate > 0
        assert lc_view.accesses_per_request > 0
        assert lc_view.tail_accesses_per_request >= lc_view.accesses_per_request * 0.5
        batch_view = ctx.batch_apps[0]
        assert batch_view.access_rate > 0
        assert ctx.avg_batch_lines > 0

    def test_umon_noise_perturbs_measured_curves(self):
        policy = _SpyPolicy()
        engine, __ = run_engine(policy, umon_noise=0.05)
        ctx = policy.contexts[-1]
        app = ctx.lc_apps[0]
        true_curve = make_lc_workload("shore").miss_curve
        sizes = true_curve.sizes[1:-1:32]
        diffs = np.abs(np.asarray(app.curve(sizes)) - np.asarray(true_curve(sizes)))
        assert diffs.max() > 0  # noisy
        assert diffs.max() < 0.2  # but small, as the paper assumes


class TestPartitionTrace:
    def test_trace_disabled_by_default(self):
        engine, __ = run_engine(StaticLCPolicy())
        assert engine.partition_trace == {}

    def test_trace_records_monotone_time(self):
        engine, __ = run_engine(UbikPolicy(slack=0.05), trace_partitions=True)
        trace = engine.partition_trace[0]
        assert len(trace) > 10
        times = [t for t, __, __ in trace]
        assert times == sorted(times)

    def test_resident_never_exceeds_target_plus_epsilon(self):
        engine, __ = run_engine(UbikPolicy(slack=0.05), trace_partitions=True)
        for t, target, resident in engine.partition_trace[0]:
            assert resident <= target + 1e-6


class TestBatchSpace:
    def test_lc_plus_batch_targets_within_llc(self):
        policy = _SpyPolicy()
        engine, __ = run_engine(policy)
        for ctx in policy.contexts:
            total = sum(ctx.current_targets.values())
            assert total <= engine.llc_lines + 1e-6

    def test_no_batch_apps_run(self):
        engine = MixEngine(
            lc_specs=[make_spec()],
            batch_workloads=[],
            policy=StaticLCPolicy(),
            config=CMPConfig(),
            seed=5,
        )
        result = engine.run()
        assert result.weighted_speedup() == 1.0
        assert result.lc_instances[0].requests_served == 80
