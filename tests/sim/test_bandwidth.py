"""Tests for repro.sim.bandwidth."""

import numpy as np
import pytest

from repro.sim.bandwidth import BandwidthModel


class TestModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            BandwidthModel(0.0)
        with pytest.raises(ValueError):
            BandwidthModel(10.0, contention_weight=-1.0)
        with pytest.raises(ValueError):
            BandwidthModel(10.0, max_utilization=1.0)
        model = BandwidthModel(10.0)
        with pytest.raises(ValueError):
            model.utilization(-1.0)

    def test_no_traffic_no_inflation(self):
        model = BandwidthModel(10.0)
        assert model.penalty_multiplier(0.0) == pytest.approx(1.0)

    def test_multiplier_grows_with_traffic(self):
        model = BandwidthModel(10.0)
        values = [model.penalty_multiplier(x / 1000.0) for x in (1, 3, 6, 9)]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_half_utilization(self):
        model = BandwidthModel(10.0, contention_weight=1.0)
        # rho = 0.5: multiplier = 1 + 0.5/0.5 = 2.
        assert model.penalty_multiplier(5.0 / 1000.0) == pytest.approx(2.0)

    def test_utilization_clamped(self):
        model = BandwidthModel(10.0, max_utilization=0.9)
        assert model.utilization(1e9) == pytest.approx(0.9)
        # Bounded multiplier even at absurd traffic.
        assert model.penalty_multiplier(1e9) == pytest.approx(1.0 + 0.9 / 0.1)


class TestEngineIntegration:
    def test_contention_slows_latency_critical_apps(self):
        """With tight bandwidth and heavy batch traffic, LC latencies
        must grow; with infinite bandwidth they match the unmodelled
        engine exactly."""
        from repro.policies.static_lc import StaticLCPolicy
        from repro.sim.config import CMPConfig
        from repro.sim.engine import LCInstanceSpec, MixEngine
        from repro.workloads.batch import make_batch_workload
        from repro.workloads.latency_critical import make_lc_workload

        workload = make_lc_workload("specjbb")
        rng = np.random.default_rng(0)
        requests = 60
        works = np.asarray([workload.work.sample(rng) for _ in range(requests)])
        mean_service = workload.mean_service_cycles()
        arrivals = np.cumsum(rng.exponential(mean_service / 0.3, size=requests))

        def run(bandwidth):
            spec = LCInstanceSpec(
                workload=workload,
                arrivals=arrivals.copy(),
                works=works.copy(),
                deadline_cycles=4 * mean_service,
                target_tail_cycles=3 * mean_service,
                load=0.3,
            )
            engine = MixEngine(
                lc_specs=[spec],
                batch_workloads=[
                    make_batch_workload("s", seed=1),
                    make_batch_workload("s", seed=2),
                ],
                policy=StaticLCPolicy(),
                config=CMPConfig(),
                seed=3,
                bandwidth=bandwidth,
            )
            return engine.run()

        unmodelled = run(None)
        loose = run(BandwidthModel(1e9))
        tight = run(BandwidthModel(60.0))
        assert loose.tail95() == pytest.approx(unmodelled.tail95(), rel=1e-6)
        assert tight.tail95() > unmodelled.tail95() * 1.05
