"""Grouped replay vs the scalar per-cell oracle: the bit-identity wall.

:meth:`~repro.sim.mix_runner.MixRunner.run_mix` with ``shared`` unset
is the **oracle** — the per-cell replay every grouped execution is
measured against.  These tests pin the contract the grid-replay layer
(:mod:`repro.sim.grid_replay`) makes: replaying any set of policy and
scheme cells through one shared group context leaves every cell's
latency pool, utilization counter, batch-app progress, and final fill
state **bit-identical** (``==`` on raw floats, no tolerance) to the
cell run alone — at every group size, across policies, loads, seeds,
and heterogeneous-scheme groups.
"""

import pytest

from repro.policies.static_lc import StaticLCPolicy
from repro.policies.ucp import UCPPolicy
from repro.runtime.artifacts import get_artifacts, reset_artifacts
from repro.runtime.spec import PolicySpec, SchemeSpec
from repro.sim.config import CMPConfig
from repro.sim.engine import MixEngine
from repro.sim.grid_replay import GroupShared, plan_groups
from repro.sim.mix_runner import MixRunner
from repro.workloads.mixes import make_mix_specs

#: The cell roster groups draw from, in order: the paper's partitioned
#: policies (ucp is the lookahead-based allocator), the non-partitioned
#: baselines, and repeated entries — a group may replay the same policy
#: twice (two sweep cells differing only in label do exactly that).
CELL_ROSTER = (
    PolicySpec.of("ubik", slack=0.05),
    PolicySpec.of("ucp"),
    PolicySpec.of("static_lc"),
    PolicySpec.of("onoff"),
    PolicySpec.of("lru"),
    PolicySpec.of("ubik", slack=0.1),
    PolicySpec.of("ucp"),
    PolicySpec.of("static_lc"),
)


def mix_spec(load=0.2, lc_name="masstree"):
    return make_mix_specs(
        lc_names=[lc_name], loads=[load], mixes_per_combo=1
    )[0]


def scalar_grid(runner, spec, cells):
    """The oracle: each cell replayed alone, fresh policy per cell."""
    return [
        runner.run_mix(spec, policy.build(), scheme=scheme)
        for policy, scheme in cells
    ]


def grouped_grid(runner, spec, cells):
    """The same cells through one shared replay group.

    Pinned to the grouped per-cell loop (``lockstep=False``): this file
    is the PR-7 wall for the *grouping* layer.  The lockstep SoA engine
    has its own wall in ``test_lockstep_equivalence.py``.
    """
    return runner.run_mix_group(
        spec,
        [(policy.build(), scheme) for policy, scheme in cells],
        lockstep=False,
    )


def assert_cells_identical(grouped, scalar):
    """Bit-identity, field by field, then whole-result equality."""
    assert len(grouped) == len(scalar)
    for got, oracle in zip(grouped, scalar):
        for g_inst, o_inst in zip(got.lc_instances, oracle.lc_instances):
            assert g_inst.latencies == o_inst.latencies  # raw float ==
            assert g_inst.requests_served == o_inst.requests_served
            assert g_inst.activations == o_inst.activations
            assert g_inst.deboosts == o_inst.deboosts
            assert g_inst.watermarks == o_inst.watermarks
        for g_batch, o_batch in zip(got.batch_apps, oracle.batch_apps):
            assert g_batch.instructions == o_batch.instructions
            assert g_batch.cycles == o_batch.cycles
        assert got.duration_cycles == oracle.duration_cycles
        assert got == oracle  # every remaining field, exactly


class TestGroupSizes:
    @pytest.mark.parametrize("size", [1, 2, 4, 8])
    def test_bit_identical_at_every_group_size(self, size):
        """A group of N cells equals N per-cell oracle runs — including
        the degenerate single-cell group and a roster with repeats."""
        runner = MixRunner(requests=40, seed=5)
        spec = mix_spec(load=0.2)
        cells = [(policy, None) for policy in CELL_ROSTER[:size]]
        assert_cells_identical(
            grouped_grid(runner, spec, cells), scalar_grid(runner, spec, cells)
        )


class TestGridAxes:
    @pytest.mark.parametrize("load", [0.2, 0.6])
    @pytest.mark.parametrize("seed", [5, 2014])
    def test_bit_identical_across_loads_and_seeds(self, load, seed):
        runner = MixRunner(requests=40, seed=seed)
        spec = mix_spec(load=load)
        cells = [(policy, None) for policy in CELL_ROSTER[:3]]
        assert_cells_identical(
            grouped_grid(runner, spec, cells), scalar_grid(runner, spec, cells)
        )

    def test_bit_identical_across_lc_workloads(self):
        runner = MixRunner(requests=40, seed=5)
        spec = mix_spec(load=0.2, lc_name="xapian")
        cells = [(policy, None) for policy in CELL_ROSTER[:3]]
        assert_cells_identical(
            grouped_grid(runner, spec, cells), scalar_grid(runner, spec, cells)
        )


class TestHeterogeneousGroups:
    def test_mixed_scheme_cells_match_exactly(self):
        """Scheme models deliberately stay out of the group key: cells
        with different (or no) schemes share one group, scoped per
        (curve, scheme) inside it, and must still match the oracle."""
        llc_lines = CMPConfig().llc_lines
        runner = MixRunner(requests=40, seed=5)
        spec = mix_spec(load=0.2)
        cells = [
            (CELL_ROSTER[0], None),
            (CELL_ROSTER[1], SchemeSpec.of("vantage_sa16").build(llc_lines)),
            (CELL_ROSTER[2], SchemeSpec.of("waypart_sa16").build(llc_lines)),
            (CELL_ROSTER[3], SchemeSpec.of("vantage_sa16").build(llc_lines)),
        ]
        assert_cells_identical(
            grouped_grid(runner, spec, cells), scalar_grid(runner, spec, cells)
        )

    def test_plan_groups_splits_unequal_keys(self):
        """Cells that differ in any group-key field split into distinct
        groups, first-appearance ordered, positions preserved."""
        keys = [("a", 1), ("b", 1), ("a", 1), ("a", 2), ("b", 1)]
        assert plan_groups(keys) == [[0, 2], [1, 4], [3]]

    def test_plan_groups_keeps_equal_keys_together(self):
        assert plan_groups([("a",)] * 4) == [[0, 1, 2, 3]]
        assert plan_groups([]) == []


class TestFinalFillState:
    def _engines(self, shared):
        """Two-cell group over identical streams: ubik-style allocator
        state exercised by ucp, plus the static split."""
        runner = MixRunner(requests=40, seed=5)
        spec = mix_spec(load=0.2)
        baseline = runner.baseline(spec.lc_workload, spec.load)
        from repro.sim.engine import LCInstanceSpec

        lc_specs = []
        for instance in range(3):
            arrivals, works = runner.stream(spec.lc_workload, spec.load, instance)
            lc_specs.append(
                LCInstanceSpec(
                    workload=spec.lc_workload,
                    arrivals=arrivals,
                    works=works,
                    deadline_cycles=baseline.p95_cycles,
                    target_tail_cycles=baseline.tail95_cycles,
                    load=spec.load,
                )
            )
        return [
            MixEngine(
                lc_specs=lc_specs,
                batch_workloads=list(spec.batch_apps),
                policy=policy,
                config=runner.config,
                seed=runner.seed,
                baseline_lines=float(spec.lc_workload.target_lines),
                mix_id=spec.mix_id,
                shared=shared,
            )
            for policy in (UCPPolicy(), StaticLCPolicy())
        ]

    def test_final_fill_and_partition_state_identical(self):
        """Beyond the result documents: the engines' *final* fill
        states — resident lines, targets, effective targets per app —
        must agree exactly after grouped and scalar runs."""
        shared = GroupShared()
        for grouped_engine, scalar_engine in zip(
            self._engines(shared), self._engines(None)
        ):
            grouped_result = grouped_engine.run()
            scalar_result = scalar_engine.run()
            assert grouped_result == scalar_result
            for g_app, o_app in zip(grouped_engine.apps, scalar_engine.apps):
                assert g_app.fill.resident == o_app.fill.resident
                assert g_app.fill.target == o_app.fill.target
                assert g_app.fill.effective_target == o_app.fill.effective_target
                assert g_app.fill.miss_ratio() == o_app.fill.miss_ratio()


class TestReplayGroupCounters:
    def test_group_counts_one_miss_then_hits(self, monkeypatch):
        """The first cell of a group builds the shared context (a
        ``replay_group`` miss); every later cell rides it (a hit) —
        surfaced through the same stats the CLI renders."""
        monkeypatch.delenv("REPRO_ARTIFACTS", raising=False)
        reset_artifacts()
        runner = MixRunner(requests=40, seed=5)
        spec = mix_spec(load=0.2)
        grouped_grid(runner, spec, [(policy, None) for policy in CELL_ROSTER[:4]])
        kinds = get_artifacts().stats()["kinds"]
        assert kinds["replay_group"]["misses"] == 1
        assert kinds["replay_group"]["hits"] == 3
        reset_artifacts()
