"""Tests for repro.sim.trace_sim (the hardware-in-the-loop validator)."""

import numpy as np
import pytest

from repro.sim.trace_sim import (
    PhasedGenerator,
    ScanGenerator,
    TraceApp,
    TraceDrivenSimulator,
    ZipfWorkingSetGenerator,
)


class TestGenerators:
    def test_zipf_generator_range(self):
        gen = ZipfWorkingSetGenerator(100, base=1000)
        rng = np.random.default_rng(0)
        addrs = gen.next_batch(500, rng)
        assert addrs.min() >= 1000
        assert addrs.max() < 1100

    def test_scan_generator_never_repeats(self):
        gen = ScanGenerator()
        rng = np.random.default_rng(0)
        a = gen.next_batch(100, rng)
        b = gen.next_batch(100, rng)
        assert len(set(a.tolist()) & set(b.tolist())) == 0

    def test_phased_generator_switches(self):
        gen = PhasedGenerator(
            ZipfWorkingSetGenerator(10, base=0),
            ZipfWorkingSetGenerator(10, base=100_000),
            switch_after=50,
        )
        rng = np.random.default_rng(0)
        first = gen.next_batch(50, rng)
        second = gen.next_batch(50, rng)
        assert first.max() < 100_000
        assert second.min() >= 100_000

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfWorkingSetGenerator(0)
        with pytest.raises(ValueError):
            PhasedGenerator(ScanGenerator(), ScanGenerator(), 0)
        with pytest.raises(ValueError):
            TraceApp("x", ScanGenerator(), weight=0)


class TestClosedLoop:
    def make_sim(self, managed=True, seed=1):
        apps = [
            TraceApp("friendly", ZipfWorkingSetGenerator(3000, alpha=0.6), 1.0),
            TraceApp("streaming", ScanGenerator(), 1.0),
        ]
        return TraceDrivenSimulator(
            cache_lines=2048,
            apps=apps,
            reconfig_accesses=12_000,
            managed=managed,
            seed=seed,
        )

    def test_managed_starves_streaming_app(self):
        """Lookahead on UMON curves must learn the streaming app gains
        nothing and give the cache to the reusing app."""
        sim = self.make_sim(managed=True)
        result = sim.run(windows=5)
        allocations = sim.cache.target(0), sim.cache.target(1)
        assert allocations[0] > allocations[1] * 2

    def test_managed_beats_static_split(self):
        managed = self.make_sim(managed=True).run(windows=5)
        static = self.make_sim(managed=False).run(windows=5)
        assert managed.total_misses() < static.total_misses()

    def test_friendly_app_miss_ratio_improves(self):
        sim = self.make_sim(managed=True)
        result = sim.run(windows=6)
        friendly = result.for_app("friendly")
        assert friendly[-1].miss_ratio < friendly[0].miss_ratio

    def test_adapts_to_phase_change(self):
        """When an app's working set moves, the loop reallocates."""
        apps = [
            TraceApp(
                "phased",
                PhasedGenerator(
                    ZipfWorkingSetGenerator(200, alpha=0.4),
                    ZipfWorkingSetGenerator(3000, alpha=0.4, base=10_000_000),
                    switch_after=30_000,
                ),
                1.0,
            ),
            TraceApp("zipf", ZipfWorkingSetGenerator(1500, alpha=0.6), 1.0),
        ]
        sim = TraceDrivenSimulator(
            cache_lines=2048, apps=apps, reconfig_accesses=10_000, seed=3
        )
        result = sim.run(windows=10)
        phased = result.for_app("phased")
        early_alloc = phased[1].allocation_lines
        late_alloc = phased[-1].allocation_lines
        # Small working set first, large one later: allocation grows.
        assert late_alloc > early_alloc

    def test_result_accessors(self):
        result = self.make_sim().run(windows=2)
        assert set(result.final_allocations()) == {"friendly", "streaming"}
        assert result.total_misses() > 0
        assert all(w.accesses > 0 for w in result.windows)

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceDrivenSimulator(1024, [], 1000)
        sim = self.make_sim()
        with pytest.raises(ValueError):
            sim.run(windows=0)
