"""Tests for repro.sim.mix_runner."""

import pytest

from repro.policies.static_lc import StaticLCPolicy
from repro.sim.mix_runner import MixRunner
from repro.workloads.latency_critical import make_lc_workload
from repro.workloads.mixes import make_mix_specs


@pytest.fixture(scope="module")
def runner():
    return MixRunner(requests=60, seed=5)


@pytest.fixture(scope="module")
def spec():
    return make_mix_specs(lc_names=["masstree"], loads=[0.2], mixes_per_combo=1)[0]


class TestBaselines:
    def test_baseline_metrics_ordered(self, runner):
        workload = make_lc_workload("masstree")
        baseline = runner.baseline(workload, 0.2)
        assert baseline.tail95_cycles >= baseline.p95_cycles > 0

    def test_baseline_cached(self, runner):
        workload = make_lc_workload("masstree")
        a = runner.baseline(workload, 0.2)
        b = runner.baseline(workload, 0.2)
        assert a is b

    def test_baseline_load_sensitivity(self, runner):
        """Queueing: higher load -> higher baseline tail (Fig 1a)."""
        workload = make_lc_workload("masstree")
        lo = runner.baseline(workload, 0.2)
        hi = runner.baseline(workload, 0.6)
        assert hi.tail95_cycles > lo.tail95_cycles

    def test_requests_validation(self):
        with pytest.raises(ValueError):
            MixRunner(requests=5)


class TestRunMix:
    def test_result_carries_baseline(self, runner, spec):
        result = runner.run_mix(spec, StaticLCPolicy())
        assert result.baseline_tail_cycles > 0
        assert result.tail_degradation() > 0
        assert len(result.lc_instances) == 3
        assert len(result.batch_apps) == 3

    def test_same_streams_across_policies(self, runner, spec):
        """Fixed-work methodology: request streams identical between
        policy runs so comparisons are sample-balanced."""
        a = runner.run_mix(spec, StaticLCPolicy())
        b = runner.run_mix(spec, StaticLCPolicy())
        assert a.lc_instances[0].latencies == b.lc_instances[0].latencies
