"""Tests for repro.sim.results."""

import pytest

from repro.sim.results import BatchAppResult, LCInstanceResult, MixResult


def make_result(latencies=(1.0, 2.0, 3.0, 10.0), baseline=2.0):
    inst = LCInstanceResult(name="lc#0", latencies=list(latencies))
    batch = BatchAppResult(
        name="b0", instructions=1000.0, cycles=500.0, baseline_ipc=1.6
    )
    return MixResult(
        mix_id="m",
        policy="Test",
        lc_instances=[inst],
        batch_apps=[batch],
        duration_cycles=500.0,
        baseline_tail_cycles=baseline,
    )


class TestBatchAppResult:
    def test_ipc_and_speedup(self):
        batch = BatchAppResult("b", instructions=800.0, cycles=400.0, baseline_ipc=1.6)
        assert batch.ipc == pytest.approx(2.0)
        assert batch.speedup == pytest.approx(1.25)

    def test_zero_cycles_safe(self):
        batch = BatchAppResult("b", baseline_ipc=1.0)
        assert batch.ipc == 0.0

    def test_zero_baseline_safe(self):
        batch = BatchAppResult("b", instructions=1.0, cycles=1.0, baseline_ipc=0.0)
        assert batch.speedup == 0.0


class TestMixResult:
    def test_pooled_latencies(self):
        result = make_result()
        a, b = LCInstanceResult("x", [1.0]), LCInstanceResult("y", [2.0])
        result.lc_instances = [a, b]
        pooled = result.all_lc_latencies()
        assert sorted(pooled.tolist()) == [1.0, 2.0]

    def test_tail_degradation(self):
        result = make_result(latencies=[4.0] * 50, baseline=2.0)
        assert result.tail_degradation() == pytest.approx(2.0)

    def test_degradation_requires_baseline(self):
        result = make_result(baseline=0.0)
        with pytest.raises(ValueError):
            result.tail_degradation()

    def test_weighted_speedup_mean(self):
        result = make_result()
        result.batch_apps = [
            BatchAppResult("a", 100.0, 100.0, baseline_ipc=1.0),  # 1.0
            BatchAppResult("b", 300.0, 100.0, baseline_ipc=2.0),  # 1.5
        ]
        assert result.weighted_speedup() == pytest.approx(1.25)

    def test_no_batch_apps(self):
        result = make_result()
        result.batch_apps = []
        assert result.weighted_speedup() == 1.0

    def test_summary_dict(self):
        summary = make_result(latencies=[4.0] * 50, baseline=2.0).summary()
        assert summary["tail_degradation"] == pytest.approx(2.0)
        assert "weighted_speedup" in summary

    def test_lc_instance_metrics(self):
        inst = LCInstanceResult("x", latencies=[1.0, 2.0, 3.0, 100.0])
        assert inst.mean_latency() == pytest.approx(26.5)
        assert inst.tail95() == pytest.approx(100.0)
