"""Tests for repro.sim.config (Table 2)."""

import pytest

from repro.sim.config import CMPConfig, CoreKind, TABLE2_ROWS, westmere_config
from repro.units import mb_to_lines


class TestConfig:
    def test_table2_defaults(self):
        config = westmere_config()
        assert config.num_cores == 6
        assert config.freq_hz == 3.2e9
        assert config.l1.size_kb == 32
        assert config.l2.size_kb == 256
        assert config.l3.size_mb == 12
        assert config.l3.banks == 6
        assert config.mem_latency_cycles == 200

    def test_reconfig_interval_is_50ms(self):
        config = westmere_config()
        assert config.reconfig_interval_cycles == pytest.approx(0.05 * 3.2e9)

    def test_coalescing_is_50us(self):
        config = westmere_config()
        assert config.coalescing_timeout_cycles == pytest.approx(50e-6 * 3.2e9)

    def test_llc_lines(self):
        assert westmere_config().llc_lines == mb_to_lines(12)

    def test_with_llc_mb(self):
        small = westmere_config().with_llc_mb(2.0)
        assert small.llc_lines == mb_to_lines(2)
        assert small.num_cores == 6  # everything else preserved

    def test_with_core_kind(self):
        inorder = westmere_config().with_core_kind(CoreKind.IN_ORDER)
        assert inorder.core_kind == "inorder"
        with pytest.raises(ValueError):
            westmere_config().with_core_kind("vliw")

    def test_validation(self):
        with pytest.raises(ValueError):
            CMPConfig(num_cores=0)

    def test_table2_rows_render(self):
        labels = [row[0] for row in TABLE2_ROWS]
        assert "Cores" in labels
        assert "Memory" in labels
        assert any("zcache" in desc for __, desc in TABLE2_ROWS)
