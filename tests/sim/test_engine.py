"""Tests for repro.sim.engine: the event-driven mix simulator."""

import numpy as np
import pytest

from repro.policies.fixed import FixedPolicy
from repro.policies.lru import LRUPolicy
from repro.policies.onoff import OnOffPolicy
from repro.policies.static_lc import StaticLCPolicy
from repro.sim.config import CMPConfig
from repro.sim.engine import LCInstanceSpec, MixEngine
from repro.workloads.batch import make_batch_workload
from repro.workloads.latency_critical import make_lc_workload


def make_spec(name="masstree", load=0.2, requests=60, seed=0):
    workload = make_lc_workload(name)
    rng = np.random.default_rng(seed)
    works = np.asarray([workload.work.sample(rng) for _ in range(requests)])
    mean_service = workload.mean_service_cycles()
    gaps = rng.exponential(mean_service / load, size=requests)
    arrivals = np.cumsum(gaps)
    return LCInstanceSpec(
        workload=workload,
        arrivals=arrivals,
        works=works,
        deadline_cycles=5 * mean_service,
        target_tail_cycles=4 * mean_service,
        load=load,
    )


def make_engine(policy, lc_specs=None, batch=None, **kwargs):
    lc_specs = lc_specs or [make_spec()]
    if batch is None:
        batch = [make_batch_workload("f", seed=1), make_batch_workload("s", seed=2)]
    return MixEngine(
        lc_specs=lc_specs,
        batch_workloads=batch,
        policy=policy,
        config=CMPConfig(),
        seed=3,
        **kwargs,
    )


class TestBasicRuns:
    def test_all_requests_served(self):
        engine = make_engine(StaticLCPolicy())
        result = engine.run()
        assert result.lc_instances[0].requests_served == 60

    def test_latencies_positive_and_warmup_excluded(self):
        engine = make_engine(StaticLCPolicy(), lc_specs=[make_spec(requests=100)])
        result = engine.run()
        inst = result.lc_instances[0]
        assert len(inst.latencies) == 95  # 5% warmup excluded
        assert all(l > 0 for l in inst.latencies)

    def test_batch_progress_measured(self):
        engine = make_engine(StaticLCPolicy())
        result = engine.run()
        for batch in result.batch_apps:
            assert batch.instructions > 0
            assert batch.cycles == pytest.approx(result.duration_cycles, rel=0.01)

    def test_multiple_lc_instances(self):
        specs = [make_spec(seed=s) for s in range(3)]
        result = make_engine(StaticLCPolicy(), lc_specs=specs).run()
        assert len(result.lc_instances) == 3
        assert all(i.requests_served == 60 for i in result.lc_instances)

    def test_validation(self):
        with pytest.raises(ValueError):
            MixEngine([], [], StaticLCPolicy(), CMPConfig())
        with pytest.raises(ValueError):
            make_engine(StaticLCPolicy(), umon_noise=-1.0)
        with pytest.raises(ValueError):
            make_engine(StaticLCPolicy(), warmup_fraction=1.0)


class TestPolicyInteraction:
    def test_fixed_policy_latencies_match_queueing_model(self):
        """With a constant warm partition, the engine must reproduce
        plain M/G/1-FIFO behaviour exactly."""
        from repro.server.queueing import simulate_fixed_service
        from repro.cpu import OutOfOrderCore

        spec = make_spec(requests=80)
        workload = spec.workload
        engine = MixEngine(
            lc_specs=[spec],
            batch_workloads=[],
            policy=FixedPolicy({0: float(workload.target_lines)}),
            config=CMPConfig(),
            seed=0,
            umon_noise=0.0,
            warmup_fraction=0.0,
        )
        result = engine.run()
        core = OutOfOrderCore(200.0)
        p = float(workload.miss_curve(workload.target_lines))
        services = [w * core.cpi(workload.profile, p) for w in spec.works]
        expected = simulate_fixed_service(spec.arrivals, services)
        got = result.lc_instances[0].latencies
        want = [e.latency for e in expected]
        assert got == pytest.approx(want, rel=1e-6)

    def test_onoff_degrades_vs_static(self):
        """Cold restarts after idle must hurt under OnOff (inertia)."""
        spec_a = make_spec(name="specjbb", requests=120, seed=4)
        spec_b = make_spec(name="specjbb", requests=120, seed=4)
        static = make_engine(StaticLCPolicy(), lc_specs=[spec_a]).run()
        onoff = make_engine(OnOffPolicy(), lc_specs=[spec_b]).run()
        assert onoff.tail95() > static.tail95()

    def test_lru_mode_runs(self):
        result = make_engine(LRUPolicy()).run()
        assert result.lc_instances[0].requests_served == 60
        assert all(b.instructions > 0 for b in result.batch_apps)

    def test_deboost_events_fire_for_ubik(self):
        from repro.core.ubik import UbikPolicy

        specs = [make_spec(name="specjbb", requests=150, seed=s) for s in range(2)]
        result = make_engine(UbikPolicy(slack=0.0), lc_specs=specs).run()
        total_deboosts = sum(i.deboosts for i in result.lc_instances)
        assert total_deboosts > 0

    def test_deterministic_given_seed(self):
        a = make_engine(StaticLCPolicy(), lc_specs=[make_spec(seed=9)]).run()
        b = make_engine(StaticLCPolicy(), lc_specs=[make_spec(seed=9)]).run()
        assert a.lc_instances[0].latencies == b.lc_instances[0].latencies
        assert a.batch_apps[0].instructions == pytest.approx(
            b.batch_apps[0].instructions
        )
