"""Engine edge cases: schemes, in-order cores, watermarks, reconfigs."""

import numpy as np
import pytest

from repro.cache.schemes import vantage_setassoc, vantage_zcache, way_partitioning
from repro.core.ubik import UbikPolicy
from repro.policies.static_lc import StaticLCPolicy
from repro.policies.ucp import UCPPolicy
from repro.sim.config import CMPConfig, CoreKind
from repro.sim.engine import LCInstanceSpec, MixEngine
from repro.workloads.batch import make_batch_workload
from repro.workloads.latency_critical import make_lc_workload


def make_spec(name="specjbb", load=0.3, requests=80, seed=0):
    workload = make_lc_workload(name)
    rng = np.random.default_rng(seed)
    works = np.asarray([workload.work.sample(rng) for _ in range(requests)])
    mean_service = workload.mean_service_cycles()
    arrivals = np.cumsum(rng.exponential(mean_service / load, size=requests))
    return LCInstanceSpec(
        workload=workload,
        arrivals=arrivals,
        works=works,
        deadline_cycles=4 * mean_service,
        target_tail_cycles=3 * mean_service,
        load=load,
    )


def run_with(policy, scheme=None, config=None, specs=None, seed=1):
    config = config or CMPConfig()
    engine = MixEngine(
        lc_specs=specs or [make_spec()],
        batch_workloads=[
            make_batch_workload("f", seed=1),
            make_batch_workload("t", seed=2),
        ],
        policy=policy,
        config=config,
        scheme=scheme,
        seed=seed,
    )
    return engine.run()


class TestSchemesInEngine:
    def test_zcache_scheme_matches_ideal(self):
        ideal = run_with(StaticLCPolicy())
        zcache = run_with(StaticLCPolicy(), scheme=vantage_zcache(196_608))
        assert zcache.tail95() == pytest.approx(ideal.tail95(), rel=1e-6)

    def test_way_partitioning_worse_for_ubik(self):
        good = run_with(UbikPolicy(slack=0.05), scheme=vantage_zcache(196_608))
        bad = run_with(
            UbikPolicy(slack=0.05), scheme=way_partitioning(196_608, 16)
        )
        assert bad.tail95() >= good.tail95() * 0.99

    def test_soft_vantage_runs(self):
        result = run_with(
            UbikPolicy(slack=0.05), scheme=vantage_setassoc(196_608, 16)
        )
        assert result.lc_instances[0].requests_served == 80


class TestInOrderEngine:
    def test_inorder_services_longer(self):
        config_ooo = CMPConfig(core_kind=CoreKind.OOO)
        config_io = CMPConfig(core_kind=CoreKind.IN_ORDER)
        ooo = run_with(StaticLCPolicy(), config=config_ooo, specs=[make_spec(seed=3)])
        inorder = run_with(
            StaticLCPolicy(), config=config_io, specs=[make_spec(seed=3)]
        )
        assert np.mean(inorder.lc_instances[0].latencies) > np.mean(
            ooo.lc_instances[0].latencies
        )


class TestWatermarkPath:
    def test_watermark_can_fire_under_slack(self):
        """Drive enough short requests through a slack Ubik run that
        the low-watermark machinery is exercised (it may or may not
        fire depending on sizing; the run must stay correct either
        way)."""
        specs = [make_spec(name="shore", load=0.5, requests=120, seed=s) for s in (4, 5)]
        result = run_with(UbikPolicy(slack=0.10), specs=specs)
        assert all(i.requests_served == 120 for i in result.lc_instances)
        total_events = sum(i.deboosts + i.watermarks for i in result.lc_instances)
        assert total_events >= 0  # bookkeeping is consistent


class TestReconfigMidRequest:
    def test_ucp_resizes_serving_apps_correctly(self):
        """UCP's 50 ms reconfigs can shrink an app mid-request; the
        engine must re-walk and still complete every request."""
        # moses requests are ~4 ms; several reconfigs land mid-request.
        specs = [make_spec(name="moses", load=0.6, requests=40, seed=6)]
        result = run_with(UCPPolicy(), specs=specs)
        assert result.lc_instances[0].requests_served == 40
        assert all(l > 0 for l in result.lc_instances[0].latencies)

    def test_latency_conservation_under_reconfigs(self):
        """Total measured busy time can't exceed the simulated span."""
        result = run_with(UCPPolicy(), specs=[make_spec(seed=7)])
        total_latency = sum(result.lc_instances[0].latencies)
        assert total_latency < result.duration_cycles * 2  # sanity


class TestZeroAccessRequests:
    def test_compute_only_lc_app(self):
        """An LC app with zero APKI runs on base CPI alone."""
        from repro.cpu import AppProfile
        from repro.monitor.miss_curve import MissCurve
        from repro.workloads.latency_critical import LCWorkload
        from repro.workloads.service_time import DeterministicWork

        profile = AppProfile("compute", apki=0.0, base_cpi=1.0)
        workload = LCWorkload(
            name="compute",
            profile=profile,
            miss_curve=MissCurve.constant(0.0, 196_608),
            work=DeterministicWork(1_000_000.0),
            target_lines=32_768,
            mean_service_ms=0.3125,
            table1_requests=10,
            table1_config="synthetic",
            reuse_fraction=0.5,
        )
        arrivals = np.arange(1, 21) * 5_000_000.0
        spec = LCInstanceSpec(
            workload=workload,
            arrivals=arrivals,
            works=np.full(20, 1_000_000.0),
            deadline_cycles=2_000_000.0,
            target_tail_cycles=1_000_000.0,
            load=0.2,
        )
        result = run_with(StaticLCPolicy(), specs=[spec])
        # Service = work * base_cpi exactly; arrivals never queue.
        assert result.lc_instances[0].latencies == pytest.approx(
            [1_000_000.0] * len(result.lc_instances[0].latencies)
        )
